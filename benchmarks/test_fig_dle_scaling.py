"""Experiment ``fig-dle-scaling`` — Theorem 18: DLE runs in ``O(D_A)`` rounds.

We measure Algorithm DLE's rounds on growing shapes from three families
(solid hexagons, hexagons with holes, thin annuli) and fit the growth of
rounds against the area diameter ``D_A``.  The paper's claim is reproduced
when the fitted exponent is close to 1 — in particular clearly below the
quadratic behaviour of the prior deterministic algorithms in Table 1.
"""

import pytest

from repro.api import (
    compute_metrics,
    format_scaling_series,
    make_shape,
    run_experiment,
    run_scaling_experiment,
    summarize_scaling,
)

from conftest import attach_record, run_once

FAMILIES = ("hexagon", "holey", "annulus")
SIZES = (2, 3, 4, 6, 8)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", SIZES)
def test_dle_rounds_point(benchmark, family, size):
    """One data point of the figure: DLE on one shape."""
    shape = make_shape(family, size, seed=0)
    metrics = compute_metrics(shape)
    record = run_once(benchmark, run_experiment, "dle", shape,
                      family=family, size=size, seed=0, metrics=metrics)
    attach_record(benchmark, record)
    assert record.succeeded
    # Theorem 18 with the explicit constant of Lemma 17.
    assert record.rounds <= 10 * metrics.area_diameter + 6


@pytest.mark.parametrize("family", FAMILIES)
def test_dle_scaling_series(benchmark, family, capsys):
    """The full series for one family, with the linear / power-law fits."""
    records = run_once(benchmark, run_scaling_experiment, "dle", family,
                       SIZES, seed=0)
    summary = summarize_scaling(records, "D_A")
    benchmark.extra_info.update({
        "family": family,
        "exponent": round(summary["exponent"], 3),
        "slope": round(summary["slope"], 3),
        "linear_r2": round(summary["linear_r2"], 4),
    })
    with capsys.disabled():
        print("\n" + format_scaling_series(
            records, "D_A",
            title=f"FIG dle-scaling — DLE rounds vs D_A ({family})"))
    # Linear, not quadratic: the fitted exponent stays well below 2 and the
    # linear fit explains the data.
    assert summary["exponent"] < 1.5
    assert summary["linear_r2"] > 0.9
