"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one experiment of DESIGN.md §3 (one table or
figure).  The quantity the paper talks about is the number of *asynchronous
rounds*, not wall-clock time, so every benchmark

* runs the experiment exactly once through ``benchmark.pedantic`` (wall-clock
  time is still recorded for the pytest-benchmark report),
* stores the measured rounds and the relevant shape parameters in
  ``benchmark.extra_info`` so they appear in the benchmark JSON/terminal
  output, and
* prints the plain-text table for the experiment once per module, which is
  what EXPERIMENTS.md records.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture and return its
    result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def sweep_once(benchmark, spec, **kwargs):
    """Run a :class:`repro.orchestrator.SweepSpec` exactly once through the
    orchestrator under the benchmark fixture and return the records.

    Execution counts (executed / cached / resumed / failed) land in
    ``benchmark.extra_info`` so the benchmark JSON records how the sweep's
    results were obtained.
    """
    from repro.api import run_sweep

    result = benchmark.pedantic(run_sweep, args=(spec,), kwargs=kwargs,
                                rounds=1, iterations=1)
    for key, value in result.counts().items():
        benchmark.extra_info[f"sweep_{key}"] = value
    return result.raise_failures().records


def attach_record(benchmark, record):
    """Attach an ExperimentRecord's key numbers to the benchmark report."""
    row = record.as_row()
    benchmark.extra_info.update({
        "algorithm": row["algorithm"],
        "family": row["family"],
        "size": row["size"],
        "n": row["n"],
        "D": row["D"],
        "D_A": row["D_A"],
        "D_G": row["D_G"],
        "L_out": row["L_out"],
        "rounds": row["rounds"],
        "ok": row["ok"],
    })
