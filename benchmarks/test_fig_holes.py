"""Experiment ``fig-holes-advantage`` — holes: where DLE wins.

Two claims from the paper's introduction and Table 1 are reproduced here:

1. Erosion-only deterministic algorithms ([22]/[27]) require hole-free
   shapes; on shapes with holes they do not elect a unique leader.
2. Algorithm DLE's bound is ``O(D_A)``, the diameter of the *area*, which on
   thin annuli is far smaller than the shape diameter ``D``; its measured
   rounds track ``D_A`` and stay roughly constant while ``D`` grows.
"""

import pytest

from repro.api import annulus, compute_metrics, format_table, run_experiment

from conftest import attach_record, run_once

#: (outer radius, inner radius) pairs of constant thickness 3: D grows with
#: the radius while D_A stays (roughly) the thickness-limited crossing.
ANNULI = [(5, 2), (7, 4), (9, 6), (11, 8), (13, 10)]


@pytest.mark.parametrize("radii", ANNULI, ids=lambda r: f"annulus{r[0]}_{r[1]}")
def test_dle_on_thin_annuli(benchmark, radii):
    outer, inner = radii
    shape = annulus(outer, inner)
    metrics = compute_metrics(shape)
    record = run_once(benchmark, run_experiment, "dle", shape,
                      family="annulus", size=outer, seed=0, metrics=metrics)
    attach_record(benchmark, record)
    assert record.succeeded
    assert metrics.area_diameter < metrics.diameter
    assert record.rounds <= 10 * metrics.area_diameter + 6


@pytest.mark.parametrize("radii", ANNULI[:3], ids=lambda r: f"annulus{r[0]}_{r[1]}")
def test_erosion_fails_on_annuli(benchmark, radii):
    outer, inner = radii
    shape = annulus(outer, inner)
    metrics = compute_metrics(shape)
    record = run_once(benchmark, run_experiment, "erosion", shape,
                      family="annulus", size=outer, seed=0, metrics=metrics)
    attach_record(benchmark, record)
    assert not record.succeeded


def test_holes_advantage_report(benchmark, capsys):
    """The full figure: D vs D_A vs measured DLE rounds on thin annuli."""

    def build():
        rows = []
        for outer, inner in ANNULI:
            shape = annulus(outer, inner)
            metrics = compute_metrics(shape)
            dle = run_experiment("dle", shape, family="annulus", size=outer,
                                 seed=0, metrics=metrics)
            erosion = run_experiment("erosion", shape, family="annulus",
                                     size=outer, seed=0, metrics=metrics)
            rows.append({
                "annulus": f"{inner}<d<={outer}",
                "n": metrics.n,
                "D": metrics.diameter,
                "D_A": metrics.area_diameter,
                "DLE rounds": dle.rounds,
                "DLE ok": dle.succeeded,
                "erosion ok": erosion.succeeded,
            })
        return rows

    rows = run_once(benchmark, build)
    with capsys.disabled():
        print("\n" + format_table(
            rows, title="FIG holes-advantage — thin annuli: D grows, D_A and "
                        "DLE rounds stay small; erosion cannot elect at all"))
    benchmark.extra_info["num_annuli"] = len(rows)
    assert all(not row["erosion ok"] for row in rows)
    assert all(row["DLE ok"] for row in rows)
    # The qualitative shape of the figure: while D more than doubles across
    # the ladder, the DLE rounds grow far slower (they track D_A).
    assert rows[-1]["D"] >= 2 * rows[0]["D"]
    assert rows[-1]["DLE rounds"] <= 2 * rows[0]["DLE rounds"] + 10
