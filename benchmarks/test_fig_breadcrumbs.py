"""Experiment ``fig-breadcrumbs`` — Lemma 19: the breadcrumb structure.

Algorithm DLE may disconnect the particle system, but not arbitrarily: when
it terminates there is a contracted particle at *every* grid distance
``0..eps_G(l)`` from the leader, and none beyond.  This is what makes the
``O(D_G)``-round reconnection possible.  The benchmark measures, over a
suite of shapes, the fraction of distances covered (always 1.0) and how
spread out the system is when DLE finishes.
"""

import pytest

from repro.api import (
    DLEAlgorithm,
    ParticleSystem,
    Scheduler,
    compute_metrics,
    connected_components,
    format_table,
    grid_distance,
    make_shape,
    verify_unique_leader,
)

from conftest import run_once

CASES = [
    ("hexagon", 4),
    ("holey", 3),
    ("holey", 5),
    ("annulus", 4),
    ("holey_blob", 4),
    ("blob", 4),
]


def breadcrumb_stats(family, size, seed=0):
    shape = make_shape(family, size, seed=seed)
    metrics = compute_metrics(shape)
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    algorithm = DLEAlgorithm()
    result = Scheduler(order="random", seed=seed).run(algorithm, system)
    leader = verify_unique_leader(system)
    distances = sorted(
        grid_distance(leader.head, p.head) for p in system.particles()
    )
    eps = max(grid_distance(leader.head, p) for p in shape.points)
    covered = {d for d in distances}
    missing = [d for d in range(eps + 1) if d not in covered]
    return {
        "family": family,
        "size": size,
        "n": metrics.n,
        "eps_G(l)": eps,
        "max particle distance": distances[-1],
        "missing distances": len(missing),
        "components after DLE": len(connected_components(system.occupied_points())),
        "dle_rounds": result.rounds,
    }


@pytest.mark.parametrize("family,size", CASES,
                         ids=[f"{f}{s}" for f, s in CASES])
def test_breadcrumbs_case(benchmark, family, size):
    stats = run_once(benchmark, breadcrumb_stats, family, size)
    benchmark.extra_info.update(stats)
    # Lemma 19: every distance up to eps_G(l) is occupied and none beyond it.
    assert stats["missing distances"] == 0
    assert stats["max particle distance"] == stats["eps_G(l)"]


def test_breadcrumbs_report(benchmark, capsys):
    rows = run_once(benchmark,
                    lambda: [breadcrumb_stats(f, s) for f, s in CASES])
    with capsys.disabled():
        print("\n" + format_table(
            rows,
            title="FIG breadcrumbs — Lemma 19: one particle at every grid "
                  "distance from the leader when DLE terminates"))
    assert all(r["missing distances"] == 0 for r in rows)
