"""Experiment ``fig-obd-scaling`` — Theorem 41: OBD runs in ``O(L_out + D)``
rounds.

The outer-boundary-detection primitive removes the known-boundary assumption
at the cost of ``O(L_out + D)`` rounds.  Spirals (boundary length
proportional to ``n``) and holey hexagons (many competing inner boundaries)
stress the two terms of the bound.
"""

import pytest

from repro.api import (
    ExperimentRecord,
    compute_metrics,
    fit_linear,
    fit_power_law,
    format_table,
    make_shape,
    run_experiment,
    run_scaling_experiment,
)

from conftest import attach_record, run_once

FAMILIES = ("spiral", "holey", "hexagon")
SIZES = (2, 3, 4, 6, 8)


def _combined(records):
    xs = [r.metrics.l_out + r.metrics.diameter for r in records]
    ys = [r.rounds for r in records]
    return xs, ys


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", SIZES)
def test_obd_rounds_point(benchmark, family, size):
    shape = make_shape(family, size, seed=0)
    metrics = compute_metrics(shape)
    record = run_once(benchmark, run_experiment, "obd", shape,
                      family=family, size=size, seed=0, metrics=metrics)
    attach_record(benchmark, record)
    assert record.succeeded
    # Outer ring <= 3 L_out v-nodes at 25 rounds each (Lemma 35 charge),
    # plus the check, the announcement lap and a flood of at most D + 1.
    assert record.rounds <= 90 * (metrics.l_out + metrics.diameter) + 20


@pytest.mark.parametrize("family", FAMILIES)
def test_obd_scaling_series(benchmark, family, capsys):
    records = run_once(benchmark, run_scaling_experiment, "obd", family,
                       SIZES, seed=0)
    xs, ys = _combined(records)
    linear = fit_linear(xs, ys)
    power = fit_power_law(xs, ys)
    benchmark.extra_info.update({
        "family": family,
        "exponent": round(power.exponent, 3),
        "slope": round(linear.slope, 3),
        "linear_r2": round(linear.r_squared, 4),
    })
    rows = [
        {
            "family": r.family,
            "size": r.size,
            "L_out+D": x,
            "rounds": r.rounds,
            "rounds/(L_out+D)": round(r.rounds / x, 2),
        }
        for r, x in zip(records, xs)
    ]
    with capsys.disabled():
        print("\n" + format_table(
            rows, title=f"FIG obd-scaling — OBD rounds vs L_out + D ({family})"))
        print(f"linear fit : rounds ≈ {linear.slope:.2f} * (L_out + D) "
              f"+ {linear.intercept:.1f}  (R² = {linear.r_squared:.3f})")
        print(f"power fit  : exponent {power.exponent:.2f} "
              f"(R² = {power.r_squared:.3f})")
    assert power.exponent < 1.5
    assert linear.r_squared > 0.9
