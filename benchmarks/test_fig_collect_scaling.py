"""Experiment ``fig-collect-scaling`` — Theorem 23: Collect runs in
``O(D_G)`` rounds.

After Algorithm DLE terminates, Algorithm Collect gathers the (possibly
disconnected) particles back into a connected configuration.  We measure its
charged rounds on growing shapes and fit against the grid diameter ``D_G``.
"""

import pytest

from repro.api import (
    OMP_ROUNDS_PER_UNIT,
    PRP_ROUNDS_PER_UNIT,
    ROTATIONS_PER_PHASE,
    SDP_ROUNDS_PER_UNIT,
    compute_metrics,
    format_scaling_series,
    make_shape,
    run_experiment,
    run_scaling_experiment,
    summarize_scaling,
)

from conftest import attach_record, run_once

FAMILIES = ("hexagon", "holey", "blob")
SIZES = (2, 3, 4, 6, 8)
PER_PHASE_UNIT = (OMP_ROUNDS_PER_UNIT
                  + ROTATIONS_PER_PHASE * PRP_ROUNDS_PER_UNIT
                  + SDP_ROUNDS_PER_UNIT)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", SIZES)
def test_collect_rounds_point(benchmark, family, size):
    shape = make_shape(family, size, seed=0)
    metrics = compute_metrics(shape)
    record = run_once(benchmark, run_experiment, "collect", shape,
                      family=family, size=size, seed=0, metrics=metrics)
    attach_record(benchmark, record)
    assert record.succeeded
    # Doubling phases 1, 2, 4, ... <= 2 D_G plus the final empty phase and
    # the reconnection pass.
    assert record.rounds <= 5 * PER_PHASE_UNIT * max(1, metrics.grid_diam) \
        + 2 * PER_PHASE_UNIT


@pytest.mark.parametrize("family", FAMILIES)
def test_collect_scaling_series(benchmark, family, capsys):
    records = run_once(benchmark, run_scaling_experiment, "collect", family,
                       SIZES, seed=0)
    summary = summarize_scaling(records, "D_G")
    benchmark.extra_info.update({
        "family": family,
        "exponent": round(summary["exponent"], 3),
        "slope": round(summary["slope"], 3),
        "linear_r2": round(summary["linear_r2"], 4),
    })
    with capsys.disabled():
        print("\n" + format_scaling_series(
            records, "D_G",
            title=f"FIG collect-scaling — Collect rounds vs D_G ({family})"))
    # The stem doubles, so rounds are a staircase in D_G: the growth exponent
    # stays close to linear and the per-D_G cost is bounded by the doubling
    # geometry (phases 1, 2, ..., <= 2 D_G plus two extra passes), even
    # though a straight-line fit over a handful of points is noisy.
    assert summary["exponent"] < 1.5
    ratios = [r.rounds / max(1, r.metrics.grid_diam) for r in records]
    assert max(ratios) <= 7 * PER_PHASE_UNIT
