"""Ablation ``ablation-scheduler`` — DLE under different strong schedulers.

The paper's Theorem 18 holds for *every* fair strong scheduler: the
adversary chooses the activation order inside each round.  This ablation
runs Algorithm DLE under the oblivious orders (round-robin, random,
reversed) and the state-dependent adversaries of
:mod:`repro.amoebot.adversary`, and checks that

* a unique leader is elected under every order (correctness is
  schedule-independent), and
* the measured rounds always stay within the ``10 · D_A + O(1)`` bound —
  the adversary can shift the constant but not the growth.
"""

import pytest

from repro.api import (
    ADVERSARY_FACTORIES,
    DLEAlgorithm,
    ParticleSystem,
    Scheduler,
    compute_metrics,
    format_table,
    make_shape,
    verify_unique_leader,
)

from conftest import run_once

OBLIVIOUS_ORDERS = ("round_robin", "random", "reversed")
CASES = [("hexagon", 5), ("holey", 4), ("annulus", 5)]


def run_dle_under(shape, order_name, seed=0):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    if order_name in OBLIVIOUS_ORDERS:
        order = order_name
    else:
        order = ADVERSARY_FACTORIES[order_name](system)
    result = Scheduler(order=order, seed=seed).run(DLEAlgorithm(), system)
    verify_unique_leader(system)
    return result.rounds


ALL_ORDERS = OBLIVIOUS_ORDERS + tuple(sorted(ADVERSARY_FACTORIES))


@pytest.mark.parametrize("family,size", CASES, ids=[f"{f}{s}" for f, s in CASES])
@pytest.mark.parametrize("order_name", ALL_ORDERS)
def test_dle_rounds_under_order(benchmark, family, size, order_name):
    shape = make_shape(family, size, seed=0)
    metrics = compute_metrics(shape)
    rounds = run_once(benchmark, run_dle_under, shape, order_name)
    benchmark.extra_info.update({
        "family": family, "size": size, "order": order_name,
        "rounds": rounds, "D_A": metrics.area_diameter,
    })
    assert rounds <= 10 * metrics.area_diameter + 6


def test_scheduler_ablation_report(benchmark, capsys):
    def build():
        rows = []
        for family, size in CASES:
            shape = make_shape(family, size, seed=0)
            metrics = compute_metrics(shape)
            row = {"family": family, "size": size, "D_A": metrics.area_diameter}
            for order_name in ALL_ORDERS:
                row[order_name] = run_dle_under(shape, order_name)
            rows.append(row)
        return rows

    rows = run_once(benchmark, build)
    with capsys.disabled():
        print("\n" + format_table(
            rows, title="ABLATION scheduler — DLE rounds per activation order "
                        "(correct and O(D_A) under every one)"))
    for row in rows:
        rounds = [row[o] for o in ALL_ORDERS]
        assert max(rounds) <= 10 * row["D_A"] + 6
