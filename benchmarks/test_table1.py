"""Experiment ``table1`` — the paper's Table 1, reproduced empirically.

For every algorithm class implemented in the repository (randomized boundary
election, erosion-only deterministic election, this paper's DLE, and this
paper's full OBD+DLE+Collect pipeline) we measure the rounds needed on a
common suite of shapes: solid hexagons, random blobs and hexagons with
holes.  The printed table is the artefact recorded in EXPERIMENTS.md.
"""

import pytest

from repro.api import (
    TABLE1_ALGORITHMS,
    TABLE1_FAMILIES,
    compute_metrics,
    format_table1,
    make_shape,
    run_experiment,
    table1_spec,
)

from conftest import attach_record, run_once, sweep_once

SIZES = (2, 3, 4)

_metrics_cache = {}


def _shape_and_metrics(family, size):
    key = (family, size)
    if key not in _metrics_cache:
        shape = make_shape(family, size, seed=0)
        _metrics_cache[key] = (shape, compute_metrics(shape))
    return _metrics_cache[key]


@pytest.mark.parametrize("family", TABLE1_FAMILIES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", sorted(TABLE1_ALGORITHMS))
def test_table1_cell(benchmark, algorithm, family, size):
    """One cell of the Table 1 reproduction: one algorithm on one shape."""
    shape, metrics = _shape_and_metrics(family, size)
    record = run_once(
        benchmark, run_experiment, algorithm, shape,
        family=family, size=size, seed=0, metrics=metrics,
    )
    attach_record(benchmark, record)
    benchmark.extra_info["paper_row"] = TABLE1_ALGORITHMS[algorithm]
    # The erosion baseline is *expected* to fail exactly when the shape has
    # holes — that is the "No holes" assumption column of Table 1 (random
    # blobs occasionally enclose a hole too).  Everything else must succeed.
    if algorithm == "erosion" and metrics.num_holes > 0:
        assert not record.succeeded
    else:
        assert record.succeeded


def test_table1_full_report(benchmark, capsys):
    """Regenerate and print the whole comparison table in one go, through
    the orchestrator (the same path ``python -m repro sweep`` takes)."""
    records = sweep_once(benchmark, table1_spec(sizes=SIZES, seed=0))
    table = format_table1(records)
    with capsys.disabled():
        print("\n" + "=" * 72)
        print("TABLE 1 REPRODUCTION (measured rounds per algorithm and shape)")
        print("=" * 72)
        print(table)
    benchmark.extra_info["num_records"] = len(records)
    assert len(records) == len(TABLE1_ALGORITHMS) * len(TABLE1_FAMILIES) * len(SIZES)
