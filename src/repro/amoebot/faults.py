"""Seeded fault injection: crash/revive, visibility delay, shape changes.

The paper's adversary is deliberately weak — it only chooses the
activation *order* within each fair round (:mod:`repro.amoebot.adversary`).
This module implements the stronger, still fully deterministic adversary
of ROADMAP item 4: a seeded fault plan the schedulers consult at round
boundaries.  Three independent fault families:

``crash``
    A particle stops being activated for ``rounds`` rounds (or
    permanently when ``rounds=0``), modelling a stalled amoebot.  Its
    points stay occupied; a revive restores it to the engine's active
    set and conservatively re-wakes it (a spurious examination is a
    no-op by the quiescence contract, so traces stay engine-independent).

``delay``
    A particle's :meth:`~repro.amoebot.system.ParticleSystem.neighbors_of`
    reads are served from a stale snapshot refreshed only every ``max``
    rounds — the particle acts on neighbourhood information up to
    ``max - 1`` rounds old.  Writes *through* a stale neighbour proxy
    (``q[key] = value``) still reach the live particle: only visibility
    is delayed, not the write port.  Reads that bypass ``neighbors_of``
    (``occupancy_maps``, ``head_adjacent_particles``, movement
    validation) are **not** delayed; that is the documented model
    boundary — geometry is physical, memory gossip is what lags.

``shape``
    Seeded add/remove of boundary particles mid-run.  Removals are
    validated against the incremental :class:`~repro.grid.shape.Shape`
    connectivity rules (only non-articulation boundary points go), adds
    attach a fresh particle to a random empty point adjacent to the
    shape — both connectivity-preserving by construction.

Determinism and engine-independence: every family draws from its own
``random.Random`` stream seeded from the plan seed, and every draw
depends only on the plan state and the system state at a round boundary
— which both engines agree on (the engine-equivalence contract).  A
disabled plan injects nothing and consumes no randomness, so disabled
runs are bit-identical to runs without the fault layer.

Fault state (the family RNG streams, the crashed/delayed maps, the
captured stale views and the event counters) participates in the
checkpoint state protocol via :meth:`FaultInjector.snapshot_state` /
:meth:`FaultInjector.restore_state`, so checkpointed faulty runs resume
bit-identically (fuzzed by ``tests/test_faults.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..state import decode_rng, encode_rng
from .particle import Particle
from .system import ParticleSystem

__all__ = [
    "DEFAULT_FAULT_CAP",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "charged_fault_overlay",
]

#: Default ``max_rounds`` cap applied to runs with faults enabled: a
#: permanently crashed or disconnected-by-faults run must time out in
#: bounded wall clock instead of burning the drivers' 10^6-round budget.
#: Override per plan with the ``cap=N`` clause (``cap=0`` = uncapped).
DEFAULT_FAULT_CAP = 10_000

_FAMILIES = ("crash", "delay", "shape")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed, immutable fault plan.

    Built from the compact spec-string syntax threaded through
    :class:`~repro.orchestrator.spec.RunConfig` and the CLI::

        crash:rate=0.02,rounds=30;delay:rate=0.5,max=3;shape:rate=0.01;seed=7

    Clauses are ``;``-separated; each is either a family clause
    (``crash:``/``delay:``/``shape:`` followed by ``key=value`` pairs)
    or a global ``seed=N`` / ``cap=N`` setting.  Omitted families are
    disabled.  The empty string parses to the disabled plan.
    """

    #: Per-particle, per-round crash probability (0 disables the family).
    crash_rate: float = 0.0
    #: Rounds until a crashed particle revives; 0 = permanent crash.
    crash_rounds: int = 0
    #: Fraction of particles whose neighbourhood reads are delayed.
    delay_rate: float = 0.0
    #: Staleness bound: a delayed view refreshes every ``delay_max`` rounds.
    delay_max: int = 0
    #: Per-round probability of one add/remove boundary perturbation.
    shape_rate: float = 0.0
    #: Seed of the per-family RNG streams.
    seed: int = 0
    #: ``max_rounds`` cap for faulty runs (0 = no cap).
    cap: int = DEFAULT_FAULT_CAP

    @property
    def enabled(self) -> bool:
        """True when any fault family can fire."""
        return bool(self.crash_rate or self.delay_rate or self.shape_rate)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        for name, rate in (("crash", self.crash_rate),
                           ("delay", self.delay_rate),
                           ("shape", self.shape_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} rate must be in [0, 1], got {rate}")
        if self.crash_rounds < 0:
            raise ValueError("crash rounds must be >= 0 (0 = permanent)")
        if self.delay_rate and self.delay_max < 1:
            raise ValueError("delay needs max >= 1 (the staleness bound)")
        if self.delay_max < 0 or self.cap < 0:
            raise ValueError("delay max and cap must be >= 0")

    @classmethod
    def parse(cls, text: "str | FaultSpec | None") -> "FaultSpec":
        """Parse a spec string (idempotent on specs; None/"" = disabled)."""
        if isinstance(text, FaultSpec):
            return text
        spec = cls()
        if not text:
            return spec
        for clause in str(text).split(";"):
            clause = clause.strip()
            if not clause:
                continue
            family, _, body = clause.partition(":")
            family = family.strip()
            if family in _FAMILIES and _ != "":
                spec = spec._parse_family(family, body)
            elif "=" in clause and ":" not in clause:
                key, _, value = clause.partition("=")
                key = key.strip()
                if key == "seed":
                    spec = replace(spec, seed=int(value))
                elif key == "cap":
                    spec = replace(spec, cap=int(value))
                else:
                    raise ValueError(
                        f"unknown fault setting {key!r} in {text!r}")
            else:
                raise ValueError(
                    f"cannot parse fault clause {clause!r} in {text!r} "
                    f"(families: {', '.join(_FAMILIES)}; "
                    f"globals: seed=N, cap=N)")
        spec.validate()
        return spec

    def _parse_family(self, family: str, body: str) -> "FaultSpec":
        fields: Dict[str, Any] = {}
        for pair in body.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            if not eq:
                raise ValueError(
                    f"fault clause {family}:{body!r} needs key=value pairs")
            fields[key.strip()] = value.strip()
        try:
            if family == "crash":
                return replace(
                    self,
                    crash_rate=float(fields.pop("rate", self.crash_rate)),
                    crash_rounds=int(fields.pop("rounds", self.crash_rounds)),
                    **_reject_leftovers(family, fields))
            if family == "delay":
                return replace(
                    self,
                    delay_rate=float(fields.pop("rate", self.delay_rate)),
                    delay_max=int(fields.pop("max", self.delay_max or 1)),
                    **_reject_leftovers(family, fields))
            return replace(
                self,
                shape_rate=float(fields.pop("rate", self.shape_rate)),
                **_reject_leftovers(family, fields))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"bad value in fault clause {family}:{body!r}: {exc}"
            ) from exc

    def to_string(self) -> str:
        """The canonical spec string (``parse(to_string())`` round-trips)."""
        clauses: List[str] = []
        if self.crash_rate:
            clause = f"crash:rate={self.crash_rate:g}"
            if self.crash_rounds:
                clause += f",rounds={self.crash_rounds}"
            clauses.append(clause)
        if self.delay_rate:
            clauses.append(
                f"delay:rate={self.delay_rate:g},max={self.delay_max}")
        if self.shape_rate:
            clauses.append(f"shape:rate={self.shape_rate:g}")
        if self.seed:
            clauses.append(f"seed={self.seed}")
        if self.cap != DEFAULT_FAULT_CAP:
            clauses.append(f"cap={self.cap}")
        return ";".join(clauses)

    def max_rounds(self, requested: int) -> int:
        """The round budget for a faulty run: ``requested`` capped by the
        plan's ``cap`` clause (uncapped when ``cap=0`` or disabled)."""
        if not self.enabled or not self.cap:
            return requested
        return min(requested, self.cap)


def _reject_leftovers(family: str, fields: Dict[str, Any]) -> Dict[str, Any]:
    if fields:
        raise ValueError(
            f"unknown key(s) {sorted(fields)} in fault family {family!r}")
    return {}


#: Historical alias from the design discussion: a plan *is* a spec.
FaultPlan = FaultSpec


class _StaleParticle(Particle):
    """A frozen snapshot of a neighbour, standing in for the live particle
    in a delayed particle's :meth:`neighbors_of` view.

    Reads (``get`` / ``[]`` / ``in`` / geometry) come from the snapshot;
    item-assignment writes go through to the live particle *and* the
    snapshot (the writer observes its own write within the activation).
    """

    __slots__ = ("_live",)

    def __init__(self, live: Particle) -> None:
        self.particle_id = live.particle_id
        self.head = live.head
        self.tail = live.tail
        self.orientation = live.orientation
        self.memory = dict(live.memory)
        self._live = live

    def __setitem__(self, key: str, value: Any) -> None:
        self._live.memory[key] = value
        self.memory[key] = value

    def _encode(self) -> Dict[str, Any]:
        return {"id": self.particle_id, "head": list(self.head),
                "tail": list(self.tail), "orientation": self.orientation,
                "memory": self.memory}

    @classmethod
    def _decode(cls, entry: Dict[str, Any],
                live: Particle) -> "_StaleParticle":
        proxy = cls(live)
        proxy.head = tuple(entry["head"])  # type: ignore[assignment]
        proxy.tail = tuple(entry["tail"])  # type: ignore[assignment]
        proxy.orientation = int(entry["orientation"])
        proxy.memory = dict(entry["memory"])
        return proxy


class FaultInjector:
    """Per-run mutable state of one :class:`FaultSpec`.

    The owning scheduler calls :meth:`begin_round` at every round
    boundary with an engine-hooks object exposing ``crash(pid)``,
    ``revive(pid)``, ``wake(pids)`` and ``remove(pid)``; the injector
    performs this round's revives, new crashes, shape perturbations and
    stale-view refreshes through those hooks.  All mutation of the
    injector happens here and in :meth:`restore_state`, so the whole
    object is a deterministic function of (spec, round stream, system
    states at boundaries).
    """

    def __init__(self, spec: FaultSpec) -> None:
        spec.validate()
        self.spec = spec
        # Independent, deterministically derived streams per family: the
        # crash draws never shift the shape draws and vice versa, so fault
        # families compose without aliasing each other's schedules.
        self._crash_rng = random.Random(f"{spec.seed}:crash")
        self._delay_rng = random.Random(f"{spec.seed}:delay")
        self._shape_rng = random.Random(f"{spec.seed}:shape")
        #: pid -> revive round (or -1 for a permanent crash).
        self.crashed: Dict[int, int] = {}
        #: pid -> personal refresh period (1..delay_max).
        self.delayed: Dict[int, int] = {}
        #: pid -> captured stale neighbourhood view.
        self._views: Dict[int, Tuple[Particle, ...]] = {}
        self._delay_assigned = False
        #: Event totals, published once per run by the scheduler.
        self.counters: Dict[str, int] = {
            "crashes": 0, "revives": 0, "shape_adds": 0,
            "shape_removes": 0, "view_refreshes": 0,
        }

    # -- the round-boundary hook -------------------------------------------

    def begin_round(self, round_index: int, system: ParticleSystem,
                    hooks: Any) -> None:
        """Inject this round's faults (called before the order is drawn)."""
        spec = self.spec
        if spec.crash_rate:
            self._crash_step(round_index, system, hooks)
        if spec.shape_rate:
            self._shape_step(system, hooks)
        if spec.delay_rate:
            self._delay_step(round_index, system, hooks)

    def finish(self, system: ParticleSystem) -> None:
        """Tear down: the system's reads go live again after the run."""
        system.set_stale_views(None)

    # -- crash/revive -------------------------------------------------------

    def _crash_step(self, round_index: int, system: ParticleSystem,
                    hooks: Any) -> None:
        crashed = self.crashed
        if crashed:
            due = [pid for pid, revive in crashed.items()
                   if 0 <= revive <= round_index]
            for pid in sorted(due):
                del crashed[pid]
                hooks.revive(pid)
                self.counters["revives"] += 1
        rate = self.spec.crash_rate
        rand = self._crash_rng.random
        # One draw per particle id, crashed or not: the stream position
        # depends only on the population size, never on which particles
        # happen to be down, which keeps resumed runs aligned.
        victims = [pid for pid in system._ids_snapshot()
                   if rand() < rate and pid not in crashed]
        if not victims:
            return
        revive_round = (round_index + self.spec.crash_rounds
                        if self.spec.crash_rounds else -1)
        for pid in victims:
            crashed[pid] = revive_round
            hooks.crash(pid)
            self.counters["crashes"] += 1

    # -- dynamic shape perturbation ----------------------------------------

    def _shape_step(self, system: ParticleSystem, hooks: Any) -> None:
        rng = self._shape_rng
        if rng.random() >= self.spec.shape_rate:
            return
        if rng.random() < 0.5 and len(system) > 1:
            self._shape_remove(system, hooks, rng)
        else:
            self._shape_add(system, rng)

    def _shape_add(self, system: ParticleSystem, rng: random.Random) -> None:
        from ..grid.coords import neighbors

        occupied = system.occupied_points()
        candidates = sorted({u for p in occupied for u in neighbors(p)
                             if u not in occupied})
        if not candidates:
            return
        point = candidates[rng.randrange(len(candidates))]
        system.add_particle(point, orientation=rng.randrange(6))
        self.counters["shape_adds"] += 1

    def _shape_remove(self, system: ParticleSystem, hooks: Any,
                      rng: random.Random) -> None:
        shape = system.shape()
        boundary = sorted(shape.boundary_points)
        rng.shuffle(boundary)
        for point in boundary:
            particle = system.particle_at(point)
            if particle is None or particle.is_expanded:
                continue
            # Connectivity-preserving by the incremental Shape rules:
            # removing an articulation point is rejected here, so the
            # perturbed system always stays one component.
            if not shape.without(point).is_connected():
                continue
            pid = particle.particle_id
            system.remove_particle(pid)
            self.crashed.pop(pid, None)
            self.delayed.pop(pid, None)
            self._views.pop(pid, None)
            hooks.remove(pid)
            self.counters["shape_removes"] += 1
            return

    # -- visibility delay ---------------------------------------------------

    def _delay_step(self, round_index: int, system: ParticleSystem,
                    hooks: Any) -> None:
        spec = self.spec
        rand = self._delay_rng.random
        if not self._delay_assigned:
            # The delayed set is drawn once over the initial population;
            # particles added later by shape faults read live.
            for pid in system._ids_snapshot():
                if rand() < spec.delay_rate:
                    self.delayed[pid] = 1 + self._delay_rng.randrange(
                        spec.delay_max)
            self._delay_assigned = True
        if not self.delayed:
            return
        particles = system._particles
        views = self._views
        refreshed: List[int] = []
        for pid in sorted(self.delayed):
            live = particles.get(pid)
            if live is None:
                del self.delayed[pid]
                views.pop(pid, None)
                continue
            if pid in views and round_index % self.delayed[pid] != 0:
                continue
            views[pid] = tuple(_StaleParticle(q)
                               for q in system.live_neighbors_of(live))
            refreshed.append(pid)
            self.counters["view_refreshes"] += 1
        system.set_stale_views(views)
        if refreshed:
            # A refresh changes what the particle will observe, exactly
            # like a neighbourhood event: wake it so the event engine
            # re-examines it when the sweep engine would act on the new
            # view (waking an already active particle is a no-op).
            hooks.wake(refreshed)

    # -- checkpoint state protocol ------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-ready injector state for the scheduler checkpoint."""
        return {
            "spec": self.spec.to_string(),
            "rng": {
                "crash": encode_rng(self._crash_rng),
                "delay": encode_rng(self._delay_rng),
                "shape": encode_rng(self._shape_rng),
            },
            "crashed": sorted(self.crashed.items()),
            "delayed": sorted(self.delayed.items()),
            "views": {str(pid): [q._encode() for q in view]  # type: ignore[attr-defined]
                      for pid, view in sorted(self._views.items())},
            "delay_assigned": self._delay_assigned,
            "counters": dict(self.counters),
        }

    def restore_state(self, state: Dict[str, Any],
                      system: ParticleSystem) -> None:
        """Rebuild injector state from :meth:`snapshot_state` output.

        ``system`` must already be restored to the matching snapshot —
        the stale-view proxies re-bind to the live particles so delayed
        writes keep reaching them after the resume.
        """
        if state.get("spec", "") != self.spec.to_string():
            raise ValueError(
                f"checkpoint fault state was written by plan "
                f"{state.get('spec')!r}; this plan is "
                f"{self.spec.to_string()!r}")
        decode_rng(state["rng"]["crash"], self._crash_rng)
        decode_rng(state["rng"]["delay"], self._delay_rng)
        decode_rng(state["rng"]["shape"], self._shape_rng)
        self.crashed = {int(pid): int(revive)
                        for pid, revive in state["crashed"]}
        self.delayed = {int(pid): int(period)
                        for pid, period in state["delayed"]}
        self._delay_assigned = bool(state["delay_assigned"])
        self.counters = {name: int(value)
                         for name, value in state["counters"].items()}
        particles = system._particles
        views: Dict[int, Tuple[Particle, ...]] = {}
        for pid_text, entries in state["views"].items():
            pid = int(pid_text)
            view = []
            for entry in entries:
                live = particles.get(int(entry["id"]))
                if live is None:
                    continue  # the neighbour was removed by a shape fault
                view.append(_StaleParticle._decode(entry, live))
            views[pid] = tuple(view)
        self._views = views
        if views:
            system.set_stale_views(views)


# ---------------------------------------------------------------------------
# Charged fault overlay for the analytically-charged randomized baseline
# ---------------------------------------------------------------------------

def charged_fault_overlay(spec: FaultSpec,
                          system: ParticleSystem) -> Dict[str, Any]:
    """Fault effects for the randomized baseline, charged analytically.

    :mod:`repro.baselines.randomized` does not schedule activations — its
    round counts are charged from the structure of the computation — so
    the fault plan is charged at the same fidelity level: every outer
    boundary particle crashes with probability ``crash_rate`` (a
    permanent crash stalls the ring traversal outright; a transient one
    charges its outage length), and each delayed boundary particle
    charges its staleness bound once per traversal.  Shape faults do not
    apply (the baseline's charged rings are fixed at start).  Returns
    ``{"extra_rounds", "stalled", "crashed", "delayed"}``.
    """
    spec.validate()
    crash_rng = random.Random(f"{spec.seed}:crash")
    delay_rng = random.Random(f"{spec.seed}:delay")
    ring = sorted(system.shape().outer_boundary)
    crashed = [p for p in ring if crash_rng.random() < spec.crash_rate] \
        if spec.crash_rate else []
    delayed = [p for p in ring if delay_rng.random() < spec.delay_rate] \
        if spec.delay_rate else []
    stalled = bool(crashed) and spec.crash_rounds == 0
    extra = (spec.crash_rounds * len(crashed)
             + spec.delay_max * len(delayed))
    return {"extra_rounds": extra, "stalled": stalled,
            "crashed": len(crashed), "delayed": len(delayed)}
