"""Amoebot-model substrate: particles, system state, schedulers."""

from .adversary import (
    ADVERSARY_FACTORIES,
    alternating_order,
    inside_out_order,
    outside_in_order,
    sticky_order,
)
from .algorithm import (
    STATUS_FOLLOWER,
    STATUS_KEY,
    STATUS_LEADER,
    STATUS_UNDECIDED,
    AmoebotAlgorithm,
    StatusMixin,
)
from .faults import FaultInjector, FaultPlan, FaultSpec
from .particle import Particle
from .scheduler import (
    ENGINES,
    EventDrivenScheduler,
    Scheduler,
    SchedulerResult,
    SequentialScheduler,
    make_scheduler,
    run_algorithm,
)
from .system import IllegalMoveError, ParticleSystem
from .trace import Trace, observe_round

__all__ = [
    "ADVERSARY_FACTORIES",
    "AmoebotAlgorithm",
    "alternating_order",
    "inside_out_order",
    "outside_in_order",
    "sticky_order",
    "ENGINES",
    "EventDrivenScheduler",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IllegalMoveError",
    "Particle",
    "ParticleSystem",
    "STATUS_FOLLOWER",
    "STATUS_KEY",
    "STATUS_LEADER",
    "STATUS_UNDECIDED",
    "Scheduler",
    "SchedulerResult",
    "SequentialScheduler",
    "StatusMixin",
    "Trace",
    "make_scheduler",
    "observe_round",
    "run_algorithm",
]
