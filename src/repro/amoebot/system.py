"""The particle system: occupancy bookkeeping and movement operations.

This is the mutable world state shared by all particles.  It enforces the
movement rules of the amoebot model (Section 2.2):

* a contracted particle may *expand* into an empty adjacent point;
* an expanded particle may *contract* into its head or into its tail;
* a contracted particle and an adjacent expanded particle may perform a
  *handover* in which the contracted one expands into a point vacated by the
  expanded one.

The system does **not** force connectivity: the paper explicitly allows the
particle system to disconnect temporarily (that is the point of Algorithm
DLE).  Callers that want the classical connectivity requirement can assert
:meth:`ParticleSystem.is_connected` themselves.

Packed-coordinate core
----------------------

Internally the occupancy map is keyed by *packed* coordinates
(:mod:`repro.grid.packed`): each grid point is one int, neighbours are
reached by branch-free integer additions, and the six neighbours of a point
come out of an interned ring cache as a single shared tuple.  Every public
API still speaks tuple ``Point``\\ s — the packing is invisible at the
module edge; it only makes the per-activation occupancy probes (the hottest
reads of the whole simulator) hash ints instead of tuples and allocate
nothing.

Change notifications
--------------------

Every operation that alters occupancy (``add_particle``, ``expand``,
``contract_to_head``, ``contract_to_tail``, ``handover``, ``teleport``,
``bulk_relocate``) publishes a *dirty-neighborhood event*: the set of grid
points whose occupancy changed (gained, lost, or switched occupant),
together with the ids of every particle whose visible neighbourhood those
points touch — the occupants of the dirty points and of the points adjacent
to them.  Three consumers are built on the events:

* the **cached neighbor index** behind :meth:`ParticleSystem.neighbors_of`
  — neighbour lists are computed once and reused until an event touches
  them, which turns the hottest read of every activation into a handful of
  dictionary lookups,
* the :class:`~repro.amoebot.scheduler.EventDrivenScheduler`, which parks
  quiescent particles and uses the events to re-wake only the particles
  adjacent to a change (see :meth:`add_change_listener`), and
* the **incremental shape tracker** behind :meth:`ParticleSystem.shape`:
  occupancy gains and losses since the last snapshot are recorded as an
  ordered delta stream, and the next ``shape()`` call patches the previous
  snapshot's memoised connectivity / outer-face / hole state through those
  deltas (:meth:`repro.grid.shape.Shape._apply_deltas`) instead of
  recomputing the geometry from scratch.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..grid.coords import Point, direction_between
from ..grid.packed import (
    OFFSET as _OFFSET,
    SHIFT as _SHIFT,
    pack_point,
    packed_neighbors,
    unpack,
)

_MASK = (1 << _SHIFT) - 1
from ..grid.shape import Shape
from ..telemetry import counter as _metric
from .particle import Particle

__all__ = ["ParticleSystem", "IllegalMoveError", "ChangeListener"]

#: Signature of a dirty-neighborhood event subscriber: called with the grid
#: points whose occupancy changed and the ids of every particle occupying
#: one of those points or a point adjacent to one.  Both arguments are
#: read-only views (a tuple and a set) — listeners must not mutate them.
ChangeListener = Callable[[Sequence[Point], Set[int]], None]


class IllegalMoveError(RuntimeError):
    """Raised when an algorithm requests a movement the model forbids."""


def _draw_orientations(seed: int, count: int) -> List[int]:
    """The orientation stream of :meth:`ParticleSystem.from_shape`:
    ``count`` draws of ``random.Random(seed).randrange(6)``.

    When numpy is importable the stdlib generator's Mersenne Twister state
    is transplanted into a ``numpy.random.MT19937`` bit generator and the
    rejection sampling ``randrange`` performs (top three bits of one raw
    word per attempt, retried while >= 6) is replayed vectorised — the
    resulting sequence is integer-identical to the stdlib draws, just bulk
    (asserted by tests/test_system.py)."""
    rng = random.Random(seed)
    try:
        import numpy
    except ImportError:
        return [rng.randrange(6) for _ in range(count)]
    internal = rng.getstate()[1]
    bits = numpy.random.MT19937()
    bits.state = {
        "bit_generator": "MT19937",
        "state": {"key": numpy.array(internal[:-1], dtype=numpy.uint32),
                  "pos": internal[-1]},
    }
    out: List[int] = []
    while len(out) < count:
        words = bits.random_raw(2 * (count - len(out)) + 8)
        draws = words >> 29
        out.extend(draws[draws < 6][:count - len(out)].tolist())
    return out


class ParticleSystem:
    """A collection of particles occupying points of the triangular grid."""

    def __init__(self) -> None:
        self._particles: Dict[int, Particle] = {}
        #: Occupancy keyed by packed coordinates (see the module docstring).
        self._occupancy: Dict[int, int] = {}
        #: Tuple-point mirror of the occupancy keys, maintained per event —
        #: the source of the public ``occupied_points()`` view and of the
        #: shape tracker's delta stream.
        self._points: Set[Point] = set()
        self._next_id = 0
        #: Total number of expansion / contraction / handover operations
        #: performed so far (movement complexity, used by some experiments).
        self.move_count = 0
        #: Cached neighbor index: particle id -> tuple of neighbouring
        #: Particle objects, invalidated by dirty-neighborhood events.
        self._neighbor_cache: Dict[int, Tuple[Particle, ...]] = {}
        self._listeners: List[ChangeListener] = []
        #: Monotone occupancy version: bumped by every occupancy-changing
        #: operation; keys the cached :meth:`shape` snapshot and the cached
        #: :meth:`occupied_points` view.
        self._version = 0
        self._shape_cache: Optional[Shape] = None
        self._shape_version = -1
        #: Ordered ``(point, added)`` occupancy deltas since the cached
        #: shape snapshot, or None when delta tracking is disarmed (no
        #: snapshot yet, or the stream outgrew the worth of patching).
        self._shape_deltas: Optional[List[Tuple[Point, bool]]] = None
        self._occupied_cache: Optional[FrozenSet[Point]] = None
        self._occupied_version = -1
        self._ids_cache: Optional[List[int]] = None
        #: Fault-layer visibility overlay: particle id -> frozen stale
        #: neighbourhood tuple served by :meth:`neighbors_of` instead of
        #: the live index.  None whenever no delay faults are active, so
        #: the fault-free hot path pays one attribute check only.
        self._stale_views: Optional[Dict[int, Tuple[Particle, ...]]] = None

    # -- change notifications -------------------------------------------------

    def add_change_listener(self, listener: ChangeListener) -> ChangeListener:
        """Subscribe to dirty-neighborhood events (see the module docstring).

        The listener is called after every occupancy-changing operation with
        ``(dirty_points, affected_ids)``; it is returned unchanged so the
        caller can keep the reference for :meth:`remove_change_listener`.
        """
        self._listeners.append(listener)
        return listener

    def remove_change_listener(self, listener: ChangeListener) -> None:
        """Unsubscribe a listener previously added (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def affected_ids(self, points: Iterable[Point]) -> FrozenSet[int]:
        """Ids of every particle occupying one of ``points`` or a point
        adjacent to one — exactly the particles whose neighbour lists (and
        visible neighbourhoods) an occupancy change at ``points`` can touch."""
        return frozenset(
            self._affected_ids_packed([pack_point(p) for p in points]))

    def _affected_ids_packed(self, packed_points: Sequence[int]) -> Set[int]:
        occupancy = self._occupancy
        get = occupancy.get
        ids = set()
        add = ids.add
        for packed in packed_points:
            pid = get(packed)
            if pid is not None:
                add(pid)
            for adjacent in packed_neighbors(packed):
                pid = get(adjacent)
                if pid is not None:
                    add(pid)
        return ids

    def _notify_change(self, packed_points: Sequence[int]) -> None:
        """Record the occupancy deltas at ``packed_points``, invalidate the
        neighbor index around them and publish the event to subscribers.
        Cheap when nothing is cached or subscribed.  Expansions,
        contractions and handovers dirty exactly one point, so that case
        is the tight one."""
        self._version += 1
        occupancy = self._occupancy
        mirror = self._points
        deltas = self._shape_deltas
        dirty: List[Point] = []
        for packed in packed_points:
            point = ((packed >> _SHIFT) - _OFFSET,
                     (packed & _MASK) - _OFFSET)
            dirty.append(point)
            if packed in occupancy:
                if point not in mirror:
                    mirror.add(point)
                    if deltas is not None:
                        deltas.append((point, True))
            elif point in mirror:
                mirror.discard(point)
                if deltas is not None:
                    deltas.append((point, False))
        if deltas is not None and len(deltas) * 3 > len(mirror) + 48:
            # The delta stream outgrew the worth of patching: replaying it
            # would cost more than rebuilding, so the next shape() poll
            # recomputes from scratch and re-arms the tracker.
            self._shape_deltas = None
        cache = self._neighbor_cache
        if not cache and not self._listeners:
            return
        affected = self._affected_ids_packed(packed_points)
        if cache:
            pop = cache.pop
            for pid in affected:
                pop(pid, None)
        if self._listeners:
            dirty_view = tuple(dirty)
            for listener in self._listeners:
                listener(dirty_view, affected)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_shape(cls, shape: Shape | Iterable[Point],
                   orientation_seed: Optional[int] = None) -> "ParticleSystem":
        """Create a contracted particle on every point of ``shape``.

        If ``orientation_seed`` is None all particles share orientation 0
        (handy for debugging); otherwise each particle receives a pseudo
        random orientation offset, modelling the fact that particles agree on
        chirality but not on a global compass.
        """
        system = cls()
        points = shape.points if isinstance(shape, Shape) else frozenset(shape)
        ordered = sorted(points)
        if orientation_seed is not None:
            orientations = _draw_orientations(orientation_seed, len(ordered))
        else:
            orientations = [0] * len(ordered)
        # Bulk construction: nothing is cached and nobody is subscribed yet,
        # so the per-particle event machinery is skipped and the occupancy
        # structures are filled directly (one version bump for the batch).
        particles = system._particles
        occupancy = system._occupancy
        mirror = system._points
        next_id = 0
        new_particle = Particle.__new__
        for point, orientation in zip(ordered, orientations):
            # Direct slot construction: the arguments are valid by
            # construction, so Particle.__init__'s validation is skipped
            # (and the packing is inlined — this loop builds every system).
            particle = new_particle(Particle)
            particle.particle_id = next_id
            particle.head = point
            particle.tail = point
            particle.orientation = orientation
            particle.memory = {}
            particles[next_id] = particle
            q, r = point
            occupancy[((q + _OFFSET) << _SHIFT) | (r + _OFFSET)] = next_id
            mirror.add(point)
            next_id += 1
        system._next_id = next_id
        system._version += 1
        if isinstance(shape, Shape):
            # Seed the shape cache with the caller's instance: its memoised
            # faces / connectivity carry over to algorithm setup, and the
            # delta tracker starts patching from it.
            system._shape_cache = shape
            system._shape_version = system._version
            system._shape_deltas = []
        return system

    def add_particle(self, point: Point, orientation: int = 0) -> Particle:
        """Add a contracted particle at an empty point."""
        packed = pack_point(point)
        if packed in self._occupancy:
            raise IllegalMoveError(f"point {point} is already occupied")
        particle = Particle(self._next_id, point, orientation=orientation)
        self._particles[particle.particle_id] = particle
        self._occupancy[packed] = particle.particle_id
        self._next_id += 1
        self._ids_cache = None
        self._notify_change((packed,))
        return particle

    def remove_particle(self, particle_id: int) -> Particle:
        """Remove a contracted particle from the system.

        Like :meth:`teleport` this is **not** an amoebot operation: it
        exists for the fault layer's dynamic shape perturbations (and for
        tests building configurations).  The vacated point publishes a
        dirty-neighborhood event exactly like a contraction, so caches,
        the event engine and the shape tracker all see the departure.
        Connectivity is *not* checked here — callers wanting a
        connectivity-preserving removal validate via
        ``shape().without(point).is_connected()`` first.
        """
        particle = self._particles[particle_id]
        if particle.is_expanded:
            raise IllegalMoveError("cannot remove an expanded particle")
        packed = pack_point(particle.head)
        del self._particles[particle_id]
        del self._occupancy[packed]
        self._ids_cache = None
        self._neighbor_cache.pop(particle_id, None)
        self._notify_change((packed,))
        return particle

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._particles)

    def __iter__(self) -> Iterator[Particle]:
        return iter(self.particles())

    def particles(self) -> List[Particle]:
        """All particles, in a deterministic (id) order."""
        particles = self._particles
        return [particles[i] for i in self.particle_ids()]

    def particle_ids(self) -> List[int]:
        """All particle ids, ascending.  Ids are allocated monotonically,
        so the sorted list is cached until a particle is added or removed
        (the schedulers ask for it every round)."""
        return list(self._ids_snapshot())

    def _ids_snapshot(self) -> List[int]:
        """The cached ascending id list itself (no defensive copy) — for
        per-round readers that promise not to mutate it.  ``add_particle``
        and ``remove_particle`` drop the cache explicitly; the length
        check only backstops direct ``_particles`` surgery in tests."""
        cached = self._ids_cache
        if cached is None or len(cached) != len(self._particles):
            cached = self._ids_cache = sorted(self._particles)
        return cached

    def get_particle(self, particle_id: int) -> Particle:
        return self._particles[particle_id]

    def particle_at(self, point: Point) -> Optional[Particle]:
        """The particle occupying ``point``, or None."""
        pid = self._occupancy.get(pack_point(point))
        if pid is None:
            return None
        return self._particles[pid]

    def is_occupied(self, point: Point) -> bool:
        return pack_point(point) in self._occupancy

    def occupied_points(self) -> frozenset:
        """All currently occupied points.

        Cached against the occupancy version: erosion, OBD and the
        state-dependent adversaries poll this every round, and repeated
        calls while nothing moves share one frozenset.
        """
        if self._occupied_version != self._version:
            self._occupied_cache = frozenset(self._points)
            self._occupied_version = self._version
        return self._occupied_cache

    def shape(self) -> Shape:
        """The current shape of the particle system.

        The Shape snapshot is cached and invalidated by the same occupancy
        version the dirty-neighborhood events bump, so repeated calls while
        nothing moves (algorithm setup, instrumentation, metrics) share one
        instance — and therefore share its memoised faces / connectivity.

        When the previous snapshot is stale, the new one is **patched**
        from it through the occupancy deltas recorded since (incremental
        connectivity / outer-face / hole maintenance) rather than
        recomputed from scratch; a full rebuild only happens when no
        snapshot exists yet or the delta stream outgrew the worth of
        patching.
        """
        if self._shape_cache is not None and self._shape_version == self._version:
            return self._shape_cache
        base = self._shape_cache
        deltas = self._shape_deltas
        if base is not None and deltas is not None:
            shape = base._apply_deltas(deltas)
        else:
            _metric("shape.rebuilds").inc()
            shape = Shape(self._points)
        self._shape_cache = shape
        self._shape_version = self._version
        self._shape_deltas = []
        return shape

    def is_connected(self) -> bool:
        """Whether the set of occupied points is connected.

        Served by the cached :meth:`shape` snapshot's memoised connectivity:
        while nothing moves, repeated calls cost two attribute reads, and
        after movement the incremental shape state usually still knows the
        answer without a BFS.
        """
        return self.shape().is_connected()

    def all_contracted(self) -> bool:
        return all(p.is_contracted for p in self._particles.values())

    def neighbors_of(self, particle: Particle) -> Tuple[Particle, ...]:
        """The neighbouring particles of ``particle`` (particles occupying a
        point adjacent to one of its occupied points), in a deterministic
        order without duplicates.

        Served from the cached neighbor index: the tuple is computed once
        and reused until a dirty-neighborhood event touches this particle,
        which every occupancy-changing operation publishes automatically.
        The returned tuple is the cache entry itself — treat it as
        immutable.

        When the fault layer installed a stale-view overlay
        (:meth:`set_stale_views`) and it holds an entry for this particle,
        that frozen snapshot is returned instead of the live index — the
        delayed-visibility fault family.  Use :meth:`live_neighbors_of`
        for reads that must never be delayed (the fault layer itself and
        the event engine's wake computation).
        """
        views = self._stale_views
        if views is not None:
            view = views.get(particle.particle_id)
            if view is not None:
                return view
        cached = self._neighbor_cache.get(particle.particle_id)
        if cached is None:
            cached = self._compute_neighbors(particle)
        return cached

    def live_neighbors_of(self, particle: Particle) -> Tuple[Particle, ...]:
        """:meth:`neighbors_of` bypassing any stale-view overlay — always
        the current neighbourhood, identical to ``neighbors_of`` when no
        delay faults are active."""
        cached = self._neighbor_cache.get(particle.particle_id)
        if cached is None:
            cached = self._compute_neighbors(particle)
        return cached

    def set_stale_views(self, views: Optional[Dict[int, Tuple[Particle, ...]]]
                        ) -> None:
        """Install (or with None remove) the fault layer's stale-view
        overlay consulted by :meth:`neighbors_of`.  The mapping is kept by
        reference — the owning :class:`~repro.amoebot.faults.FaultInjector`
        mutates it in place at round boundaries."""
        self._stale_views = views if views else None

    def _compute_neighbors(self, particle: Particle) -> Tuple[Particle, ...]:
        pid = particle.particle_id
        seen = {pid}
        found: List[Particle] = []
        get = self._occupancy.get
        particles = self._particles
        head = particle.head
        for point in packed_neighbors(pack_point(head)):
            other_id = get(point)
            if other_id is not None and other_id not in seen:
                seen.add(other_id)
                found.append(particles[other_id])
        tail = particle.tail
        if tail != head:
            for point in packed_neighbors(pack_point(tail)):
                other_id = get(point)
                if other_id is not None and other_id not in seen:
                    seen.add(other_id)
                    found.append(particles[other_id])
        cached = tuple(found)
        self._neighbor_cache[pid] = cached
        return cached

    def neighborhood_intact(self, particle: Particle) -> bool:
        """True iff the cached neighbourhood of ``particle`` exists and no
        occupancy change has touched it since it was computed — algorithms
        can use this as a validity token for their own derived
        neighbourhood state (every dirty-neighborhood event drops the
        entry)."""
        return particle.particle_id in self._neighbor_cache

    def neighbor_ids(self, particle: Particle) -> Tuple[int, ...]:
        """Ids of the neighbouring particles, deterministic order, no
        duplicates (a derived view of :meth:`neighbors_of`)."""
        return tuple(q.particle_id for q in self.neighbors_of(particle))

    def neighbor_particle(self, origin: Point, direction: int) -> Optional[Particle]:
        """The particle occupying the neighbour of ``origin`` in ``direction``."""
        pid = self._occupancy.get(
            packed_neighbors(pack_point(origin))[direction])
        if pid is None:
            return None
        return self._particles[pid]

    def occupancy_maps(self):
        """The packed occupancy getter and the particle table —
        ``(occupancy.get, particles)`` — for algorithm hot paths that walk
        neighbourhood rings themselves (see :mod:`repro.grid.packed`).
        Read-only by contract: all mutation goes through the movement
        operations so the caches and events stay coherent."""
        return self._occupancy.get, self._particles

    def head_adjacent_particles(self, point: Point
                                ) -> List[Tuple[Particle, int]]:
        """``(particle, direction)`` pairs for the particles whose *head*
        occupies a neighbour of ``point``; ``direction`` is the global
        direction from ``point`` to that head.

        This walks the occupancy ring directly instead of going through
        the cached neighbor index, so it stays cheap for points whose
        occupants just moved (the erosion hot path: every eligibility
        write targets head ports of points adjacent to the eroded one).
        Expanded particles whose only adjacency is their tail are omitted
        — their head ports do not face ``point``.
        """
        get = self._occupancy.get
        particles = self._particles
        found: List[Tuple[Particle, int]] = []
        direction = 0
        for packed in packed_neighbors(pack_point(point)):
            pid = get(packed)
            if pid is not None:
                q = particles[pid]
                # The occupant of this slot contributes iff its head is
                # here: contracted particles always qualify; an expanded
                # one only when the slot is not its tail.
                if q.head == q.tail or pack_point(q.head) == packed:
                    found.append((q, direction))
            direction += 1
        return found

    # -- movement operations ---------------------------------------------------

    def expand(self, particle: Particle, target: Point) -> None:
        """Expand a contracted particle into the empty adjacent point
        ``target``; the old point becomes the particle's tail."""
        if particle.is_expanded:
            raise IllegalMoveError("cannot expand an already expanded particle")
        origin = particle.head
        direction_between(origin, target)  # raises if not adjacent
        packed_target = pack_point(target)
        if packed_target in self._occupancy:
            raise IllegalMoveError(f"cannot expand into occupied point {target}")
        particle.tail = origin
        particle.head = target
        self._occupancy[packed_target] = particle.particle_id
        self.move_count += 1
        # Only the target's occupancy changed (the origin keeps the tail);
        # the expanding particle itself is adjacent to the target, so its
        # own neighbor-cache entry is invalidated with its neighbours'.
        self._notify_change((packed_target,))

    def expand_toward(self, particle: Particle, direction: int) -> Point:
        """Expand a contracted particle along a global direction and return
        the new head point."""
        target = unpack(packed_neighbors(pack_point(particle.head))[direction])
        self.expand(particle, target)
        return target

    def contract_to_head(self, particle: Particle) -> None:
        """Contract an expanded particle into its head (vacating the tail)."""
        if particle.is_contracted:
            raise IllegalMoveError("cannot contract a contracted particle")
        packed_tail = pack_point(particle.tail)
        del self._occupancy[packed_tail]
        particle.tail = particle.head
        self.move_count += 1
        self._notify_change((packed_tail,))

    def contract_to_tail(self, particle: Particle) -> None:
        """Contract an expanded particle into its tail (vacating the head)."""
        if particle.is_contracted:
            raise IllegalMoveError("cannot contract a contracted particle")
        packed_head = pack_point(particle.head)
        del self._occupancy[packed_head]
        particle.head = particle.tail
        self.move_count += 1
        self._notify_change((packed_head,))

    def handover(self, contracted: Particle, expanded: Particle,
                 into: Optional[Point] = None) -> None:
        """Handover between a contracted and an adjacent expanded particle.

        The contracted particle expands into a point currently occupied by
        the expanded particle (``into``; defaults to the expanded particle's
        tail) and the expanded particle simultaneously contracts into its
        other point.
        """
        if not contracted.is_contracted:
            raise IllegalMoveError("first handover argument must be contracted")
        if not expanded.is_expanded:
            raise IllegalMoveError("second handover argument must be expanded")
        if into is None:
            into = expanded.tail
        if not expanded.occupies(into):
            raise IllegalMoveError(f"{into} is not occupied by the expanded particle")
        direction_between(contracted.head, into)  # adjacency check
        # The expanded particle vacates ``into`` and keeps its other point.
        keep = expanded.head if into == expanded.tail else expanded.tail
        expanded.head = keep
        expanded.tail = keep
        # The contracted particle expands into the vacated point.
        origin = contracted.head
        contracted.tail = origin
        contracted.head = into
        packed_into = pack_point(into)
        self._occupancy[packed_into] = contracted.particle_id
        self.move_count += 1
        # ``into`` changed owner; ``keep`` and the contracted particle's
        # origin stay occupied by the same particles, and both movers are
        # adjacent to ``into``, so one dirty point covers every stale entry.
        self._notify_change((packed_into,))

    # -- bulk helpers used by structured simulations --------------------------

    def teleport(self, particle: Particle, target: Point) -> None:
        """Move a contracted particle to an arbitrary empty point.

        This is **not** an amoebot operation; it is only used by structured
        simulations (Algorithm Collect) whose round counts are charged
        analytically, and by tests setting up configurations.
        """
        if particle.is_expanded:
            raise IllegalMoveError("cannot teleport an expanded particle")
        if target == particle.head:
            return
        packed_target = pack_point(target)
        if packed_target in self._occupancy:
            raise IllegalMoveError(f"cannot teleport onto occupied point {target}")
        origin = particle.head
        packed_origin = pack_point(origin)
        del self._occupancy[packed_origin]
        particle.head = target
        particle.tail = target
        self._occupancy[packed_target] = particle.particle_id
        self._notify_change((packed_origin, packed_target))

    def bulk_relocate(self, targets: Dict[int, Point]) -> None:
        """Atomically move several contracted particles to new points.

        Like :meth:`teleport`, this is a bookkeeping operation for structured
        simulations, not an amoebot move.  The final occupancy is validated:
        no two particles may end on the same point and no relocated particle
        may land on a particle that did not move.
        """
        self.bulk_relocate_packed(
            {pid: pack_point(point) for pid, point in targets.items()})

    def bulk_relocate_packed(self, targets: Dict[int, int]) -> None:
        """:meth:`bulk_relocate` with packed-int targets.

        The native entry point: planners that already work in the packed
        domain (Algorithm Collect's stem/parking layout) validate and
        commit without ever materialising tuple points, except for the
        particle ``head``/``tail`` fields the public particle API exposes.
        """
        for pid in targets:
            particle = self._particles[pid]
            if particle.is_expanded:
                raise IllegalMoveError(
                    "bulk_relocate only supports contracted particles"
                )
        new_points = list(targets.values())
        if len(set(new_points)) != len(new_points):
            raise IllegalMoveError("bulk_relocate targets collide with each other")
        moving = set(targets)
        for packed in new_points:
            occupant = self._occupancy.get(packed)
            if occupant is not None and occupant not in moving:
                raise IllegalMoveError(
                    f"bulk_relocate target {unpack(packed)} is occupied by "
                    "a particle that is not being moved"
                )
        dirty: List[int] = []
        for pid in targets:
            particle = self._particles[pid]
            packed_head = pack_point(particle.head)
            dirty.append(packed_head)
            del self._occupancy[packed_head]
        for pid, packed in targets.items():
            particle = self._particles[pid]
            particle.head = particle.tail = unpack(packed)
            self._occupancy[packed] = pid
            dirty.append(packed)
        self._notify_change(dirty)

    def snapshot(self) -> Dict[int, Tuple[Point, Point]]:
        """A copy of the occupancy state: id -> (head, tail)."""
        return {
            pid: (p.head, p.tail) for pid, p in self._particles.items()
        }

    # -- checkpoint state protocol --------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """The full mutable world state as a JSON-ready document.

        Covers everything :meth:`restore_state` needs to continue a run
        bit-identically: every particle's phase (head/tail), orientation
        and memory, the id allocator and the movement counter.  Derived
        caches (neighbor index, shape snapshot, occupancy views) are
        deliberately omitted — they are rebuilt on demand after restore.
        Particle memories must hold JSON-representable values only (the
        same contract :mod:`repro.io` imposes; true for every built-in
        algorithm).
        """
        particles = []
        for pid in sorted(self._particles):
            particle = self._particles[pid]
            particles.append({
                "id": pid,
                "head": list(particle.head),
                "tail": list(particle.tail),
                "orientation": particle.orientation,
                "memory": particle.memory,
            })
        return {"particles": particles, "next_id": self._next_id,
                "move_count": self.move_count}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Replace this system's state with a :meth:`snapshot_state` doc.

        Occupancy (both points of an expanded particle) is re-derived from
        the particle list; every cache is invalidated and rebuilt lazily.
        Registered change listeners stay subscribed but are not notified —
        restore is a wholesale replacement, not a movement.
        """
        particles: Dict[int, Particle] = {}
        occupancy: Dict[int, int] = {}
        mirror: Set[Point] = set()
        new_particle = Particle.__new__
        for entry in state["particles"]:
            particle = new_particle(Particle)
            pid = int(entry["id"])
            particle.particle_id = pid
            particle.head = tuple(entry["head"])
            particle.tail = tuple(entry["tail"])
            particle.orientation = int(entry["orientation"])
            particle.memory = dict(entry["memory"])
            particles[pid] = particle
            occupancy[pack_point(particle.head)] = pid
            mirror.add(particle.head)
            if particle.tail != particle.head:
                occupancy[pack_point(particle.tail)] = pid
                mirror.add(particle.tail)
        self._particles = particles
        self._occupancy = occupancy
        self._points = mirror
        self._next_id = int(state["next_id"])
        self.move_count = int(state["move_count"])
        self._neighbor_cache = {}
        self._version += 1
        self._shape_cache = None
        self._shape_version = -1
        self._shape_deltas = None
        self._occupied_cache = None
        self._occupied_version = -1
        self._ids_cache = None
        # Any stale-view overlay belonged to the replaced state; the fault
        # injector re-installs its own views after its restore.
        self._stale_views = None

    def __repr__(self) -> str:
        expanded = sum(1 for p in self._particles.values() if p.is_expanded)
        return (
            f"ParticleSystem(n={len(self._particles)}, expanded={expanded}, "
            f"moves={self.move_count})"
        )
