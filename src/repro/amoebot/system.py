"""The particle system: occupancy bookkeeping and movement operations.

This is the mutable world state shared by all particles.  It enforces the
movement rules of the amoebot model (Section 2.2):

* a contracted particle may *expand* into an empty adjacent point;
* an expanded particle may *contract* into its head or into its tail;
* a contracted particle and an adjacent expanded particle may perform a
  *handover* in which the contracted one expands into a point vacated by the
  expanded one.

The system does **not** force connectivity: the paper explicitly allows the
particle system to disconnect temporarily (that is the point of Algorithm
DLE).  Callers that want the classical connectivity requirement can assert
:meth:`ParticleSystem.is_connected` themselves.

Change notifications
--------------------

Every operation that alters occupancy (``add_particle``, ``expand``,
``contract_to_head``, ``contract_to_tail``, ``handover``, ``teleport``,
``bulk_relocate``) publishes a *dirty-neighborhood event*: the set of grid
points whose occupancy changed (gained, lost, or switched occupant),
together with the ids of every particle whose visible neighbourhood those
points touch — the occupants of the dirty points and of the points adjacent
to them.  Two consumers are built on
the events:

* the **cached neighbor index** behind :meth:`ParticleSystem.neighbors_of`
  — neighbour lists are computed once and reused until an event touches
  them, which turns the hottest read of every activation into a handful of
  dictionary lookups, and
* the :class:`~repro.amoebot.scheduler.EventDrivenScheduler`, which parks
  quiescent particles and uses the events to re-wake only the particles
  adjacent to a change (see :meth:`add_change_listener`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..grid.coords import Point, direction_between, neighbor, neighbors
from ..grid.shape import Shape, is_connected
from .particle import Particle

__all__ = ["ParticleSystem", "IllegalMoveError", "ChangeListener"]

#: Signature of a dirty-neighborhood event subscriber: called with the grid
#: points whose occupancy changed and the ids of every particle occupying
#: one of those points or a point adjacent to one.
ChangeListener = Callable[[FrozenSet[Point], FrozenSet[int]], None]


class IllegalMoveError(RuntimeError):
    """Raised when an algorithm requests a movement the model forbids."""


class ParticleSystem:
    """A collection of particles occupying points of the triangular grid."""

    def __init__(self) -> None:
        self._particles: Dict[int, Particle] = {}
        self._occupancy: Dict[Point, int] = {}
        self._next_id = 0
        #: Total number of expansion / contraction / handover operations
        #: performed so far (movement complexity, used by some experiments).
        self.move_count = 0
        #: Cached neighbor index: particle id -> tuple of neighbouring
        #: particle ids, invalidated by dirty-neighborhood events.
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}
        self._listeners: List[ChangeListener] = []
        #: Monotone occupancy version: bumped by every occupancy-changing
        #: operation; keys the cached :meth:`shape` snapshot.
        self._version = 0
        self._shape_cache: Optional[Shape] = None
        self._shape_version = -1

    # -- change notifications -------------------------------------------------

    def add_change_listener(self, listener: ChangeListener) -> ChangeListener:
        """Subscribe to dirty-neighborhood events (see the module docstring).

        The listener is called after every occupancy-changing operation with
        ``(dirty_points, affected_ids)``; it is returned unchanged so the
        caller can keep the reference for :meth:`remove_change_listener`.
        """
        self._listeners.append(listener)
        return listener

    def remove_change_listener(self, listener: ChangeListener) -> None:
        """Unsubscribe a listener previously added (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def affected_ids(self, points: Iterable[Point]) -> FrozenSet[int]:
        """Ids of every particle occupying one of ``points`` or a point
        adjacent to one — exactly the particles whose neighbour lists (and
        visible neighbourhoods) an occupancy change at ``points`` can touch."""
        occupancy = self._occupancy
        ids = set()
        for point in points:
            pid = occupancy.get(point)
            if pid is not None:
                ids.add(pid)
            for adjacent in neighbors(point):
                pid = occupancy.get(adjacent)
                if pid is not None:
                    ids.add(pid)
        return frozenset(ids)

    def _notify_change(self, points: Iterable[Point]) -> None:
        """Invalidate the neighbor index around ``points`` and publish the
        event to subscribers.  Cheap when nothing is cached or subscribed."""
        self._version += 1
        cache = self._neighbor_cache
        if not cache and not self._listeners:
            return
        affected = self.affected_ids(points)
        if cache:
            for pid in affected:
                cache.pop(pid, None)
        if self._listeners:
            dirty = frozenset(points)
            for listener in self._listeners:
                listener(dirty, affected)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_shape(cls, shape: Shape | Iterable[Point],
                   orientation_seed: Optional[int] = None) -> "ParticleSystem":
        """Create a contracted particle on every point of ``shape``.

        If ``orientation_seed`` is None all particles share orientation 0
        (handy for debugging); otherwise each particle receives a pseudo
        random orientation offset, modelling the fact that particles agree on
        chirality but not on a global compass.
        """
        system = cls()
        points = shape.points if isinstance(shape, Shape) else frozenset(shape)
        rng = random.Random(orientation_seed) if orientation_seed is not None else None
        for point in sorted(points):
            orientation = rng.randrange(6) if rng is not None else 0
            system.add_particle(point, orientation=orientation)
        if isinstance(shape, Shape):
            # Seed the shape cache with the caller's instance: its memoised
            # faces / connectivity carry over to algorithm setup.
            system._shape_cache = shape
            system._shape_version = system._version
        return system

    def add_particle(self, point: Point, orientation: int = 0) -> Particle:
        """Add a contracted particle at an empty point."""
        if point in self._occupancy:
            raise IllegalMoveError(f"point {point} is already occupied")
        particle = Particle(self._next_id, point, orientation=orientation)
        self._particles[particle.particle_id] = particle
        self._occupancy[point] = particle.particle_id
        self._next_id += 1
        self._notify_change((point,))
        return particle

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._particles)

    def __iter__(self) -> Iterator[Particle]:
        return iter(self.particles())

    def particles(self) -> List[Particle]:
        """All particles, in a deterministic (id) order."""
        return [self._particles[i] for i in sorted(self._particles)]

    def particle_ids(self) -> List[int]:
        return sorted(self._particles)

    def get_particle(self, particle_id: int) -> Particle:
        return self._particles[particle_id]

    def particle_at(self, point: Point) -> Optional[Particle]:
        """The particle occupying ``point``, or None."""
        pid = self._occupancy.get(point)
        if pid is None:
            return None
        return self._particles[pid]

    def is_occupied(self, point: Point) -> bool:
        return point in self._occupancy

    def occupied_points(self) -> frozenset:
        """All currently occupied points."""
        return frozenset(self._occupancy)

    def shape(self) -> Shape:
        """The current shape of the particle system.

        The Shape snapshot is cached and invalidated by the same occupancy
        version the dirty-neighborhood events bump, so repeated calls while
        nothing moves (algorithm setup, instrumentation, metrics) share one
        instance — and therefore share its memoised faces / connectivity.
        """
        if self._shape_cache is None or self._shape_version != self._version:
            self._shape_cache = Shape(self._occupancy)
            self._shape_version = self._version
        return self._shape_cache

    def is_connected(self) -> bool:
        """Whether the set of occupied points is connected."""
        return is_connected(frozenset(self._occupancy))

    def all_contracted(self) -> bool:
        return all(p.is_contracted for p in self._particles.values())

    def neighbors_of(self, particle: Particle) -> List[Particle]:
        """The neighbouring particles of ``particle`` (particles occupying a
        point adjacent to one of its occupied points), in a deterministic
        order without duplicates.

        Served from the cached neighbor index: the id list is computed once
        and reused until a dirty-neighborhood event touches this particle,
        which every occupancy-changing operation publishes automatically.
        """
        particles = self._particles
        return [particles[i] for i in self.neighbor_ids(particle)]

    def neighbor_ids(self, particle: Particle) -> Tuple[int, ...]:
        """The cached tuple behind :meth:`neighbors_of` — ids of the
        neighbouring particles, deterministic order, no duplicates."""
        pid = particle.particle_id
        cached = self._neighbor_cache.get(pid)
        if cached is None:
            seen = {pid}
            ids: List[int] = []
            occupancy = self._occupancy
            get = occupancy.get
            head = particle.head
            for point in neighbors(head):
                other_id = get(point)
                if other_id is not None and other_id not in seen:
                    seen.add(other_id)
                    ids.append(other_id)
            tail = particle.tail
            if tail != head:
                for point in neighbors(tail):
                    other_id = get(point)
                    if other_id is not None and other_id not in seen:
                        seen.add(other_id)
                        ids.append(other_id)
            cached = tuple(ids)
            self._neighbor_cache[pid] = cached
        return cached

    def neighbor_particle(self, origin: Point, direction: int) -> Optional[Particle]:
        """The particle occupying the neighbour of ``origin`` in ``direction``."""
        return self.particle_at(neighbor(origin, direction))

    # -- movement operations ---------------------------------------------------

    def expand(self, particle: Particle, target: Point) -> None:
        """Expand a contracted particle into the empty adjacent point
        ``target``; the old point becomes the particle's tail."""
        if particle.is_expanded:
            raise IllegalMoveError("cannot expand an already expanded particle")
        origin = particle.head
        direction_between(origin, target)  # raises if not adjacent
        if target in self._occupancy:
            raise IllegalMoveError(f"cannot expand into occupied point {target}")
        particle.tail = origin
        particle.head = target
        self._occupancy[target] = particle.particle_id
        self.move_count += 1
        # Only the target's occupancy changed (the origin keeps the tail);
        # the expanding particle itself is adjacent to the target, so its
        # own neighbor-cache entry is invalidated with its neighbours'.
        self._notify_change((target,))

    def expand_toward(self, particle: Particle, direction: int) -> Point:
        """Expand a contracted particle along a global direction and return
        the new head point."""
        target = neighbor(particle.head, direction)
        self.expand(particle, target)
        return target

    def contract_to_head(self, particle: Particle) -> None:
        """Contract an expanded particle into its head (vacating the tail)."""
        if particle.is_contracted:
            raise IllegalMoveError("cannot contract a contracted particle")
        tail = particle.tail
        del self._occupancy[tail]
        particle.tail = particle.head
        self.move_count += 1
        self._notify_change((tail,))

    def contract_to_tail(self, particle: Particle) -> None:
        """Contract an expanded particle into its tail (vacating the head)."""
        if particle.is_contracted:
            raise IllegalMoveError("cannot contract a contracted particle")
        head = particle.head
        del self._occupancy[head]
        particle.head = particle.tail
        self.move_count += 1
        self._notify_change((head,))

    def handover(self, contracted: Particle, expanded: Particle,
                 into: Optional[Point] = None) -> None:
        """Handover between a contracted and an adjacent expanded particle.

        The contracted particle expands into a point currently occupied by
        the expanded particle (``into``; defaults to the expanded particle's
        tail) and the expanded particle simultaneously contracts into its
        other point.
        """
        if not contracted.is_contracted:
            raise IllegalMoveError("first handover argument must be contracted")
        if not expanded.is_expanded:
            raise IllegalMoveError("second handover argument must be expanded")
        if into is None:
            into = expanded.tail
        if not expanded.occupies(into):
            raise IllegalMoveError(f"{into} is not occupied by the expanded particle")
        direction_between(contracted.head, into)  # adjacency check
        # The expanded particle vacates ``into`` and keeps its other point.
        keep = expanded.head if into == expanded.tail else expanded.tail
        expanded.head = keep
        expanded.tail = keep
        # The contracted particle expands into the vacated point.
        origin = contracted.head
        contracted.tail = origin
        contracted.head = into
        self._occupancy[into] = contracted.particle_id
        self.move_count += 1
        # ``into`` changed owner; ``keep`` and the contracted particle's
        # origin stay occupied by the same particles, and both movers are
        # adjacent to ``into``, so one dirty point covers every stale entry.
        self._notify_change((into,))

    # -- bulk helpers used by structured simulations --------------------------

    def teleport(self, particle: Particle, target: Point) -> None:
        """Move a contracted particle to an arbitrary empty point.

        This is **not** an amoebot operation; it is only used by structured
        simulations (Algorithm Collect) whose round counts are charged
        analytically, and by tests setting up configurations.
        """
        if particle.is_expanded:
            raise IllegalMoveError("cannot teleport an expanded particle")
        if target == particle.head:
            return
        if target in self._occupancy:
            raise IllegalMoveError(f"cannot teleport onto occupied point {target}")
        origin = particle.head
        del self._occupancy[origin]
        particle.head = target
        particle.tail = target
        self._occupancy[target] = particle.particle_id
        self._notify_change((origin, target))

    def bulk_relocate(self, targets: Dict[int, Point]) -> None:
        """Atomically move several contracted particles to new points.

        Like :meth:`teleport`, this is a bookkeeping operation for structured
        simulations, not an amoebot move.  The final occupancy is validated:
        no two particles may end on the same point and no relocated particle
        may land on a particle that did not move.
        """
        for pid in targets:
            particle = self._particles[pid]
            if particle.is_expanded:
                raise IllegalMoveError(
                    "bulk_relocate only supports contracted particles"
                )
        new_points = list(targets.values())
        if len(set(new_points)) != len(new_points):
            raise IllegalMoveError("bulk_relocate targets collide with each other")
        moving = set(targets)
        for point in new_points:
            occupant = self._occupancy.get(point)
            if occupant is not None and occupant not in moving:
                raise IllegalMoveError(
                    f"bulk_relocate target {point} is occupied by a particle "
                    "that is not being moved"
                )
        dirty: List[Point] = []
        for pid in targets:
            particle = self._particles[pid]
            dirty.append(particle.head)
            del self._occupancy[particle.head]
        for pid, point in targets.items():
            particle = self._particles[pid]
            particle.head = point
            particle.tail = point
            self._occupancy[point] = pid
            dirty.append(point)
        self._notify_change(dirty)

    def snapshot(self) -> Dict[int, Tuple[Point, Point]]:
        """A copy of the occupancy state: id -> (head, tail)."""
        return {
            pid: (p.head, p.tail) for pid, p in self._particles.items()
        }

    def __repr__(self) -> str:
        expanded = sum(1 for p in self._particles.values() if p.is_expanded)
        return (
            f"ParticleSystem(n={len(self._particles)}, expanded={expanded}, "
            f"moves={self.move_count})"
        )
