"""Particles of the amoebot model (Section 2.2 of the paper).

A particle occupies one grid point when *contracted* and two adjacent points
(head and tail) when *expanded*.  Particles have no identifiers visible to
the algorithms; the integer ``particle_id`` exists purely for bookkeeping by
the simulator and must never be read by algorithm code.

Each particle labels the six incident edges of an occupied point with port
numbers ``0..5``.  All particles share clockwise chirality (the common
assumption adopted by the paper), but each has its own rotation offset, so
port ``0`` of two different particles generally points in different global
directions.  Following Section 2.2 we also assume that a particle knows, for
each neighbouring particle, the port number the neighbour assigns to the
shared edge; the simulator exposes this through
:meth:`Particle.port_from_neighbor`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..grid.coords import (
    NUM_DIRECTIONS,
    Point,
    direction_between,
    neighbor,
)

__all__ = ["Particle"]


class Particle:
    """A single amoebot particle.

    Algorithm state lives in :attr:`memory`, a dictionary that models the
    particle's constant-size local memory.  Algorithms read the memory of
    neighbouring particles and may write to it, exactly as permitted by the
    amoebot model.
    """

    __slots__ = ("particle_id", "head", "tail", "orientation", "memory")

    def __init__(self, particle_id: int, point: Point, orientation: int = 0):
        if not 0 <= orientation < NUM_DIRECTIONS:
            raise ValueError("orientation must be in 0..5")
        self.particle_id = particle_id
        self.head: Point = point
        self.tail: Point = point
        self.orientation = orientation
        self.memory: Dict[str, Any] = {}

    # -- occupancy ----------------------------------------------------------

    @property
    def is_contracted(self) -> bool:
        """True iff the particle occupies a single point."""
        return self.head == self.tail

    @property
    def is_expanded(self) -> bool:
        """True iff the particle occupies two adjacent points."""
        return self.head != self.tail

    @property
    def occupied_points(self) -> Tuple[Point, ...]:
        """The point(s) currently occupied (head first)."""
        if self.is_contracted:
            return (self.head,)
        return (self.head, self.tail)

    def occupies(self, point: Point) -> bool:
        """True iff the particle occupies ``point``."""
        return point == self.head or point == self.tail

    # -- ports --------------------------------------------------------------

    def port_to_direction(self, port: int) -> int:
        """Global direction of the given local port number."""
        if not 0 <= port < NUM_DIRECTIONS:
            raise ValueError("port must be in 0..5")
        return (port + self.orientation) % NUM_DIRECTIONS

    def direction_to_port(self, direction: int) -> int:
        """Local port number of the given global direction."""
        return (direction - self.orientation) % NUM_DIRECTIONS

    def port_between(self, origin: Point, target: Point) -> int:
        """The port this particle assigns to neighbour point ``target`` as
        seen from its occupied point ``origin`` (``port(p, u, v)`` in the
        paper's notation)."""
        if not self.occupies(origin):
            raise ValueError(f"particle does not occupy {origin}")
        return self.direction_to_port(direction_between(origin, target))

    def neighbor_point(self, origin: Point, port: int) -> Point:
        """The grid point reached from ``origin`` through local port ``port``."""
        if not self.occupies(origin):
            raise ValueError(f"particle does not occupy {origin}")
        return neighbor(origin, self.port_to_direction(port))

    def head_neighbor(self, port: int) -> Point:
        """The grid point reached from the particle's head via ``port``."""
        return neighbor(self.head, self.port_to_direction(port))

    # -- memory helpers ------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Read a memory variable (with a default)."""
        return self.memory.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.memory[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.memory[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.memory

    # -- debugging -----------------------------------------------------------

    def __repr__(self) -> str:
        state = "contracted" if self.is_contracted else f"expanded->{self.tail}"
        return f"Particle(id={self.particle_id}, head={self.head}, {state})"
