"""Strong schedulers for the amoebot model.

The paper assumes a *strong* scheduler: particles are activated one at a
time, each activation is atomic, and every fair execution activates every
particle infinitely often.  The adversary chooses the activation order.

An *asynchronous round* is a minimal execution fragment in which every
particle is activated at least once; the round complexity of an algorithm is
the number of rounds until all particles reach a final state (Section 2.2).

This module provides several activation-order policies:

* ``round_robin`` — a fixed cyclic order (the canonical fair schedule);
* ``random`` — an independent uniformly random permutation per round
  (seeded, reproducible);
* ``reversed`` — round-robin in reverse id order (useful to catch
  order-dependent bugs);
* a user-supplied callable producing the order for each round, which lets
  tests construct adversarial schedules.

All policies activate each particle exactly once per round, which makes the
reported round count a faithful upper-bound witness of the definition above
(any schedule activating particles more often can only be grouped into at
least as many rounds).

Execution engines
-----------------

Two engines share the round accounting above and produce *identical traces
and round counts* — they differ only in how much Python work a round costs:

* :class:`SequentialScheduler` (``engine="sweep"``) — the legacy engine:
  every non-terminated particle is activated every round, O(n) activations
  per round no matter how many particles still have work to do.
* :class:`EventDrivenScheduler` (``engine="event"``) — particles whose
  algorithm declares them *quiescent* (see
  :meth:`~repro.amoebot.algorithm.AmoebotAlgorithm.is_quiescent`) are
  parked and skipped; a parked particle is re-woken when an adjacent
  particle acts or when a :class:`~repro.amoebot.system.ParticleSystem`
  movement operation publishes a dirty-neighborhood event touching it.
  Because a parked particle's activation would have been a no-op by
  contract, skipping it leaves the execution — and therefore the round
  count — unchanged, while the per-round cost drops from O(n) activations
  to O(active front).

Both engines draw the activation order for the *full* particle id list from
the same policy and the same seeded RNG stream, so a given
``(order, seed)`` pair yields the same per-round permutations regardless of
the engine — the event engine merely skips the parked suffix of the work.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from itertools import islice
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..state import decode_rng, encode_rng
from ..telemetry import get_registry as _get_registry
from .algorithm import QUIESCENT, TERMINATED, AmoebotAlgorithm
from .faults import FaultInjector, FaultSpec
from .system import ParticleSystem

__all__ = [
    "ENGINES",
    "SCHEDULER_ORDERS",
    "SchedulerResult",
    "Scheduler",
    "SequentialScheduler",
    "EventDrivenScheduler",
    "canonical_run_kwargs",
    "make_scheduler",
    "run_algorithm",
]

OrderPolicy = Callable[[int, List[int], random.Random], List[int]]


def _round_robin_order(round_index: int, ids: List[int],
                       rng: random.Random) -> List[int]:
    return list(ids)


def _reversed_order(round_index: int, ids: List[int],
                    rng: random.Random) -> List[int]:
    return list(reversed(ids))


def _key_function(ids: List[int], keys: List[float]):
    """Map a drawn key list onto a pid -> key function."""
    if ids and ids[0] == 0 and ids[-1] == len(ids) - 1:
        # ids is sorted and unique, so first==0 and last==n-1 means it is
        # exactly range(n): each id indexes its own key.
        return keys.__getitem__
    positions = {pid: index for index, pid in enumerate(ids)}
    return lambda pid: keys[positions[pid]]


def _draw_random_keys(ids: List[int], rng: random.Random):
    """Draw one uniform key per particle and return a pid -> key function.

    This is the single source of the ``random`` policy's RNG stream: both
    the sweep's full-permutation sort and the event engine's awake-only
    heap call it, which is what guarantees the two engines consume the RNG
    identically and therefore order particles identically.
    """
    rand = rng.random
    # ``iter(rand, None)`` never hits its sentinel, so this draws exactly
    # len(ids) keys with no per-key bytecode — ~2x faster than a list
    # comprehension for the one O(n)-per-round cost round-fairness forces
    # on both engines.
    return _key_function(ids, list(islice(iter(rand, None), len(ids))))


class _UniformKeyStream:
    """Bulk source of the ``random`` policy's per-round keys.

    Produces floats **bit-identical** to calling ``rng.random()`` once per
    particle: when numpy is importable, the stdlib generator's Mersenne
    Twister state is transplanted into a ``numpy.random.RandomState`` —
    both implement the same MT19937 and the same 53-bit double derivation
    — and the keys are drawn in one C call per round; without numpy the
    stdlib generator itself is used.  Either way the engines consume the
    exact same key sequence, so traces and round counts are engine- and
    numpy-independent (asserted by tests/test_scheduler.py).

    ``getstate()``/``setstate()`` expose the stream position in one
    canonical JSON-ready form — ``{"key": [624 words], "pos": int}`` —
    regardless of which backend produced it, so a checkpoint written on a
    numpy build restores bit-identically on a pure-Python build and vice
    versa (the two backends share the MT19937 state layout).
    """

    __slots__ = ("draw", "draw_raw", "getstate", "setstate")

    def __init__(self, rng: random.Random) -> None:
        try:
            import numpy
        except ImportError:
            rand = rng.random
            self.draw = lambda n: list(islice(iter(rand, None), n))
            self.draw_raw = self.draw

            def getstate() -> Dict[str, Any]:
                internal = rng.getstate()[1]
                return {"key": [int(word) for word in internal[:-1]],
                        "pos": int(internal[-1])}

            def setstate(data: Dict[str, Any]) -> None:
                rng.setstate((3, tuple(int(word) for word in data["key"])
                              + (int(data["pos"]),), None))

            self.getstate = getstate
            self.setstate = setstate
        else:
            internal = rng.getstate()[1]
            state = numpy.random.RandomState()
            state.set_state(("MT19937",
                             numpy.array(internal[:-1], dtype=numpy.uint32),
                             internal[-1]))
            sample = state.random_sample
            self.draw = lambda n: sample(n).tolist()
            # The raw ndarray: float64 entries compare identically to the
            # converted floats, and the event engine only ever *reads* a
            # handful of keys per round, so skipping the bulk conversion
            # is a net win there (the sweep sorts 10k+ keys and keeps the
            # converted list).
            self.draw_raw = sample

            def getstate() -> Dict[str, Any]:
                _kind, key, pos = state.get_state()[:3]
                return {"key": [int(word) for word in key], "pos": int(pos)}

            def setstate(data: Dict[str, Any]) -> None:
                state.set_state(("MT19937",
                                 numpy.array(data["key"],
                                             dtype=numpy.uint32),
                                 int(data["pos"])))

            self.getstate = getstate
            self.setstate = setstate


def _random_order(round_index: int, ids: List[int],
                  rng: random.Random) -> List[int]:
    # Sorting by independent uniform keys yields a uniformly random
    # permutation (key collisions have probability zero, and the stable
    # sort breaks any tie by ascending id, deterministically).  This is
    # several times faster per round than ``rng.shuffle`` because both the
    # key draw and the sort run in C, and the per-round order generation is
    # the one O(n) cost the event-driven engine cannot park away.
    return sorted(ids, key=_draw_random_keys(ids, rng))


_POLICIES: Dict[str, OrderPolicy] = {
    "round_robin": _round_robin_order,
    "reversed": _reversed_order,
    "random": _random_order,
}

#: The built-in activation-order policy names (the ``order=`` choices).
SCHEDULER_ORDERS: tuple = tuple(sorted(_POLICIES))


@dataclass
class SchedulerResult:
    """Outcome of running an algorithm to termination."""

    rounds: int
    activations: int
    terminated: bool
    moves: int
    #: Optional per-round statistics recorded by the algorithm's trace hook.
    history: List[dict] = field(default_factory=list)
    #: Activations the event-driven engine skipped because the particle was
    #: parked as quiescent or already terminated (always 0 for the sweep
    #: engine).
    skipped: int = 0
    #: Which engine produced this result (``"sweep"`` or ``"event"``).
    engine: str = "sweep"

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "TIMED OUT"
        return (
            f"SchedulerResult({status}, rounds={self.rounds}, "
            f"activations={self.activations}, moves={self.moves})"
        )


class _SweepFaultHooks:
    """The sweep engine's side of the fault injector's hook protocol.

    The sweep holds no park/wake state — a crashed particle is simply
    excluded from the round order via ``injector.crashed`` — so only the
    removal of a particle needs bookkeeping (its id must leave the
    engine's ``done`` set or a later shape-add reusing nothing would
    still skip it... ids are never reused, but the set must not grow
    stale entries across checkpoints either).
    """

    __slots__ = ("_done",)

    def __init__(self, done: Set[int]) -> None:
        self._done = done

    def crash(self, pid: int) -> None:
        """No-op: the sweep order excludes ``injector.crashed`` directly."""

    def revive(self, pid: int) -> None:
        """No-op: leaving ``injector.crashed`` re-admits the particle."""

    def wake(self, pids: Sequence[int]) -> None:
        """No-op: the sweep examines every live particle every round."""

    def remove(self, pid: int) -> None:
        self._done.discard(pid)


class _EventFaultHooks:
    """The event engine's side of the fault injector's hook protocol:
    crash/revive/wake translate to the active/parked partition."""

    __slots__ = ("_state",)

    def __init__(self, state: "_EventState") -> None:
        self._state = state

    def crash(self, pid: int) -> None:
        state = self._state
        state.active.discard(pid)
        state.parked.discard(pid)

    def revive(self, pid: int) -> None:
        # Conservatively revive into the active set (we do not know
        # whether the particle was parked when it crashed): if it is
        # quiescent the next examination re-parks it without acting —
        # exactly what the sweep's unconditional activation would do.
        state = self._state
        if pid not in state.done:
            state.parked.discard(pid)
            state.active.add(pid)
            state.wakes += 1

    def wake(self, pids: Sequence[int]) -> None:
        state = self._state
        for pid in pids:
            if pid in state.parked:
                state.parked.discard(pid)
                state.active.add(pid)
                state.wakes += 1

    def remove(self, pid: int) -> None:
        state = self._state
        state.active.discard(pid)
        state.parked.discard(pid)
        state.done.discard(pid)


class SequentialScheduler:
    """Runs an :class:`AmoebotAlgorithm` on a :class:`ParticleSystem` by
    activating every non-terminated particle once per round (the legacy
    full-sweep engine)."""

    engine = "sweep"

    def __init__(self, order: str | OrderPolicy = "random",
                 seed: int = 0,
                 faults: "str | FaultSpec | None" = None) -> None:
        #: The run's fault plan (``FaultSpec.parse("")`` when disabled).
        #: A disabled plan injects nothing, consumes no randomness and
        #: adds one ``is None`` check per round — disabled runs are
        #: bit-identical to runs predating the fault layer.
        self.faults = FaultSpec.parse(faults)
        #: The live injector of the current run (None when disabled).
        self._injector: Optional[FaultInjector] = None
        if callable(order):
            self._policy: OrderPolicy = order
            self.order_name = getattr(order, "__name__", "custom")
            # Only user-supplied policies need the every-particle-once check;
            # the built-in policies are permutations by construction and the
            # per-round O(n log n) validation would dominate small rounds.
            self._validate_order = True
        else:
            try:
                self._policy = _POLICIES[order]
            except KeyError:
                raise ValueError(
                    f"unknown scheduler order {order!r}; "
                    f"known: {sorted(_POLICIES)}"
                ) from None
            self.order_name = order
            self._validate_order = False
        self.seed = seed

    def run(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
            max_rounds: int = 1_000_000,
            round_hook: Optional[Callable[[int, ParticleSystem], None]] = None,
            checkpoint_every: Optional[int] = None,
            checkpoint_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
            resume_state: Optional[Dict[str, Any]] = None,
            ) -> SchedulerResult:
        """Run ``algorithm`` until all particles terminate.

        ``max_rounds`` bounds the execution; if it is reached the result is
        returned with ``terminated=False`` rather than raising, so callers
        (e.g. negative tests about algorithms that cannot terminate) can
        inspect the partial execution.

        ``checkpoint_sink`` (with a ``checkpoint_every`` round period)
        receives a JSON-ready scheduler-state document at each period
        boundary: RNG stream, round/activation/move counters and the
        engine's private sets.  Passing such a document back as
        ``resume_state`` — with ``system`` and the algorithm already
        restored to the matching snapshot — continues the run exactly
        where it stopped; the continued execution is bit-identical to the
        uninterrupted one (``algorithm.setup`` is *not* re-run).
        """
        if (checkpoint_sink is not None or resume_state is not None) \
                and self._validate_order:
            raise ValueError(
                "checkpointing requires a built-in activation order; "
                "user-supplied order policies carry unserializable state")
        rng = random.Random(self.seed)
        if resume_state is not None:
            self._check_resume(resume_state)
            decode_rng(resume_state["rng"], rng)
        # Faulty runs are capped (a permanently crashed particle can make
        # termination impossible; see faults.DEFAULT_FAULT_CAP).  The cap
        # derives from the plan alone, so resumed runs agree on it.
        max_rounds = self.faults.max_rounds(max_rounds)
        injector = self._injector = (FaultInjector(self.faults)
                                     if self.faults.enabled else None)
        if injector is not None and resume_state is not None:
            # ``system`` is already restored (run_checkpointed_stage order),
            # so the stale-view proxies re-bind to the live particles here.
            injector.restore_state(resume_state["fault_state"], system)
        # For the built-in ``random`` policy the scheduler rng feeds the
        # per-round key draws and nothing else, so the draws can come from
        # the bulk stream (same floats, one C call per round).  Custom
        # policies receive ``rng`` directly and keep the plain path.
        if not self._validate_order and self.order_name == "random":
            self._key_stream = _UniformKeyStream(rng)
        else:
            self._key_stream = None
        activations = 0
        skipped = 0
        rounds = 0
        moves_already = 0
        resume_engine = None
        if resume_state is None:
            algorithm.setup(system)
        else:
            key_stream_state = resume_state.get("key_stream")
            if self._key_stream is not None and key_stream_state is not None:
                self._key_stream.setstate(key_stream_state)
            rounds = int(resume_state["rounds"])
            activations = int(resume_state["activations"])
            skipped = int(resume_state["skipped"])
            moves_already = int(resume_state["moves"])
            resume_engine = resume_state.get("engine_state")
        state = self._start(algorithm, system, resume=resume_engine)
        fault_hooks = self._fault_hooks(state) if injector is not None \
            else None
        # Credit the moves the checkpointed prefix already performed, so
        # the resumed result reports the same whole-run total.
        moves_before = system.move_count - moves_already
        history: List[dict] = []
        try:
            while rounds < max_rounds:
                if algorithm.has_terminated(system):
                    break
                if injector is not None:
                    injector.begin_round(rounds, system, fault_hooks)
                done, skip = self._run_round(algorithm, system, rounds, rng,
                                             state)
                activations += done
                skipped += skip
                rounds += 1
                algorithm.on_round_end(rounds, system)
                if round_hook is not None:
                    round_hook(rounds, system)
                if (checkpoint_sink is not None and checkpoint_every
                        and rounds % checkpoint_every == 0
                        and not algorithm.has_terminated(system)):
                    checkpoint_sink(self._checkpoint_state(
                        rng, rounds, activations, skipped,
                        system.move_count - moves_before, state))
        finally:
            self._finish(system, state)
            if injector is not None:
                injector.finish(system)
        terminated = algorithm.has_terminated(system)
        moves = system.move_count - moves_before
        self._record_metrics(rounds, activations, skipped, moves, state)
        return SchedulerResult(
            rounds=rounds,
            activations=activations,
            terminated=terminated,
            moves=moves,
            history=history,
            skipped=skipped,
            engine=self.engine,
        )

    def _record_metrics(self, rounds: int, activations: int, skipped: int,
                        moves: int, state: Optional[object]) -> None:
        """Publish run totals to the telemetry registry.

        Called once per run, never per round or activation, so the hot
        loops carry no instrumentation; with the default no-op registry
        the whole call is one early return.
        """
        registry = _get_registry()
        if not registry.enabled:
            return
        prefix = f"engine.{self.engine}."
        registry.counter(prefix + "runs").inc()
        registry.counter(prefix + "rounds").inc(rounds)
        registry.counter(prefix + "activations").inc(activations)
        registry.counter(prefix + "skipped").inc(skipped)
        registry.counter(prefix + "moves").inc(moves)
        if self._injector is not None:
            for name, value in self._injector.counters.items():
                registry.counter("fault." + name).inc(value)

    # -- checkpoint plumbing --------------------------------------------------

    def _check_resume(self, resume_state: Dict[str, Any]) -> None:
        """Refuse to resume a checkpoint another scheduler wrote: the RNG
        stream and engine sets only make sense under the same
        (engine, order, seed) triple."""
        expected = {"engine": self.engine, "order": self.order_name,
                    "seed": self.seed}
        saved = {key: resume_state.get(key) for key in expected}
        if saved != expected:
            raise ValueError(
                f"checkpoint was written by scheduler {saved}; "
                f"this scheduler is {expected}")
        # Checkpoints predating the fault layer carry no "faults" key;
        # they resume only under a disabled plan (the empty string).
        saved_faults = resume_state.get("faults") or ""
        if saved_faults != self.faults.to_string():
            raise ValueError(
                f"checkpoint was written under fault plan {saved_faults!r}; "
                f"this scheduler runs {self.faults.to_string()!r}")

    def _checkpoint_state(self, rng: random.Random, rounds: int,
                          activations: int, skipped: int, moves: int,
                          state: Optional[object]) -> Dict[str, Any]:
        """The JSON-ready scheduler-state document handed to the sink."""
        document: Dict[str, Any] = {
            "engine": self.engine,
            "order": self.order_name,
            "seed": self.seed,
            "rounds": rounds,
            "activations": activations,
            "skipped": skipped,
            "moves": moves,
            "rng": encode_rng(rng),
            "engine_state": self._snapshot_engine_state(state),
        }
        if self._key_stream is not None:
            document["key_stream"] = self._key_stream.getstate()
        if self._injector is not None:
            document["faults"] = self.faults.to_string()
            document["fault_state"] = self._injector.snapshot_state()
        return document

    # -- engine-specific hooks ------------------------------------------------

    def _start(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
               resume: Optional[Dict[str, Any]] = None) -> Optional[object]:
        """Per-run engine state, created after ``algorithm.setup`` (or
        restored from a checkpoint's ``engine_state`` when resuming).

        The sweep keeps one set: the particles it has observed terminated.
        Final states are absorbing (the model's contract, already relied on
        by the event engine's ``done`` set), so a terminated particle is
        dropped from future rounds without re-asking the algorithm — the
        sweep's per-round cost becomes O(live particles), not O(n).
        """
        if resume is not None:
            return set(resume.get("done", ()))
        return set()

    def _fault_hooks(self, state: Optional[object]) -> object:
        """The engine's receiver of the fault injector's hook calls."""
        return _SweepFaultHooks(state)

    def _snapshot_engine_state(self,
                               state: Optional[object]) -> Dict[str, Any]:
        """The engine's private per-run sets, JSON-ready."""
        return {"done": sorted(state or ())}

    def _finish(self, system: ParticleSystem, state: Optional[object]) -> None:
        """Tear down per-run engine state (always called, even on error)."""

    def _round_order(self, system: ParticleSystem, round_index: int,
                     rng: random.Random) -> List[int]:
        """The full activation order for one round, policy-validated."""
        ids = system.particle_ids()
        order = self._policy(round_index, ids, rng)
        if self._validate_order and sorted(order) != sorted(ids):
            raise ValueError(
                "scheduler order policy must activate every particle "
                "exactly once per round"
            )
        return order

    def _run_round(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
                   round_index: int, rng: random.Random,
                   state: Set[int]):
        """Activate one round; returns (activations, skipped)."""
        done = state
        injector = self._injector
        excluded = done
        if injector is not None and injector.crashed:
            # Crashed particles are skipped exactly like terminated ones,
            # but stay in the full id list so the key draws (the RNG
            # stream both engines share) are unaffected by who is down.
            # ``excluded`` is a throwaway union — terminations observed
            # this round still land in ``done`` (the engine state) below.
            excluded = done | injector.crashed.keys()
        name = None if self._validate_order else self.order_name
        if name == "random":
            # Draw keys for the *full* id list (the RNG stream the event
            # engine reproduces), then order only the live particles: the
            # sub-order of a stable key sort is the same whether or not the
            # terminated particles are sorted along.
            ids = system._ids_snapshot()
            keyfn = _key_function(ids, self._key_stream.draw(len(ids)))
            live = [pid for pid in ids if pid not in excluded] \
                if excluded else ids
            order = sorted(live, key=keyfn)
        elif name == "round_robin":
            ids = system._ids_snapshot()
            order = [pid for pid in ids if pid not in excluded] \
                if excluded else ids
        elif name == "reversed":
            ids = system._ids_snapshot()
            order = [pid for pid in reversed(ids) if pid not in excluded] \
                if excluded else list(reversed(ids))
        else:
            order = self._round_order(system, round_index, rng)
            if excluded:
                order = [pid for pid in order if pid not in excluded]
        particles = system._particles
        is_terminated = algorithm.is_terminated
        activate = algorithm.activate
        activations = 0
        if algorithm.reports_termination:
            # Terminating activations hand back the TERMINATED sentinel, so
            # the per-particle is_terminated poll is unnecessary.
            done_add = done.add
            for particle_id in order:
                if activate(particles[particle_id], system) is TERMINATED:
                    done_add(particle_id)
                activations += 1
            return activations, 0
        for particle_id in order:
            particle = particles[particle_id]
            if is_terminated(particle, system):
                done.add(particle_id)
                continue
            activate(particle, system)
            activations += 1
        return activations, 0


#: Backwards-compatible name: the scheduler everybody imported before the
#: event-driven engine existed is the sequential sweep.
Scheduler = SequentialScheduler


class _EventState:
    """Per-run bookkeeping of the event-driven engine."""

    __slots__ = ("active", "parked", "done", "listener", "heap", "keyfn",
                 "round_limit", "parks", "wakes")

    def __init__(self) -> None:
        #: Particles that are awake: neither parked nor observed terminated.
        self.active: Set[int] = set()
        #: Particles currently parked as quiescent (skipped until woken).
        self.parked: Set[int] = set()
        #: Particles observed terminated (final states are absorbing, so
        #: they are skipped without re-asking the algorithm every round).
        self.done: Set[int] = set()
        self.listener = None
        #: The (key, pid) schedule of the round currently executing, and the
        #: key function that positions a particle in the round's order;
        #: ``keyfn`` is None outside keyed rounds, which tells the wake path
        #: that no heap insertion is needed.
        self.heap: Optional[List] = None
        self.keyfn = None
        #: Exclusive upper bound on the particle ids the executing round's
        #: order covers (ids are allocated monotonically); particles created
        #: mid-round compare >= and are deferred to the next round.
        self.round_limit = 0
        #: Quiescence transitions this run: times a particle was parked as
        #: quiescent, and times a parked particle was re-woken.  Counted at
        #: the (rare) transition sites and published once per run.
        self.parks = 0
        self.wakes = 0


class EventDrivenScheduler(SequentialScheduler):
    """Event-driven activation engine.

    Per round the engine examines only the particles that are awake, in
    exactly the sub-order the sweep's full permutation would have activated
    them in: for the built-in policies the awake particles are scheduled on
    a heap keyed by the same per-round random keys (or by id) the sweep's
    order uses, so the full permutation is never materialised; a
    user-supplied policy falls back to generating the full order and
    filtering it.  A particle whose algorithm reports
    :meth:`~repro.amoebot.algorithm.AmoebotAlgorithm.is_quiescent` is parked
    without being activated (its activation would be a no-op by contract).
    Parked particles are re-woken by exactly the changes that can affect
    their next activation:

    * an adjacent particle was activated and acted (covers memory writes —
      the amoebot model only lets a particle write its own and its
      neighbours' memories), or
    * a movement operation published a dirty-neighborhood event touching
      them (covers occupancy changes, including a particle expanding *into*
      their neighbourhood from two hops away).

    With the conservative default ``is_quiescent`` (always ``False``) no
    particle is ever parked and the engine is activation-for-activation
    identical to the sweep; with precise quiescence declarations the trace
    and round counts are still identical while quiescent regions cost
    nothing.
    """

    engine = "event"

    def _fault_hooks(self, state: "_EventState") -> object:
        return _EventFaultHooks(state)

    def _start(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
               resume: Optional[Dict[str, Any]] = None) -> _EventState:
        state = _EventState()
        if resume is not None:
            # A checkpointed run's park/done partition is part of its
            # semantics (a parked particle stays skipped until an event
            # wakes it), so it is restored verbatim rather than re-derived.
            state.active = set(resume["active"])
            state.parked = set(resume["parked"])
            state.done = set(resume["done"])
            state.parks = int(resume.get("parks", 0))
            state.wakes = int(resume.get("wakes", 0))
        else:
            initial = algorithm.initially_active_ids(system)
            all_ids = system.particle_ids()
            if initial is None:
                state.active = set(all_ids)
            else:
                # The algorithm enumerated the particles whose first
                # activation may act; everyone else starts parked instead
                # of being examined (and re-parked) during round one.
                state.active = set(initial)
                state.parked = set(all_ids) - state.active
                state.parks = len(state.parked)
        active = state.active
        parked = state.parked
        done = state.done
        # Algorithms that keep the conservative default (every movement
        # wakes) skip the per-particle filter call entirely.
        movement_filter = None
        if (type(algorithm).wakes_on_movement
                is not AmoebotAlgorithm.wakes_on_movement):
            movement_filter = algorithm.wakes_on_movement
        gain_insensitive = not algorithm.occupancy_gain_wakes
        particles = system._particles
        mirror = system._points
        # The injector's crashed map, captured by reference: crashed
        # particles are in neither active nor done, and a dirty event must
        # not resurrect them — their revive (not the event) re-admits
        # them.  None/empty whenever crash faults are off.
        crashed = (self._injector.crashed
                   if self._injector is not None else None)

        def wake(dirty_points, affected_ids):
            # Everything affected that is not terminated must be awake:
            # parked particles are woken (unless the algorithm declares
            # them movement-insensitive), brand-new particles (added while
            # the run executes) become active.
            woken = affected_ids - active - done
            if crashed:
                woken = woken - crashed.keys()
            if not woken:
                return
            if gain_insensitive:
                for point in dirty_points:
                    if point not in mirror:
                        break
                else:
                    # Every dirty point is occupied afterwards: a pure
                    # occupancy gain, which this algorithm declares unable
                    # to end anyone's quiescence — only brand-new
                    # particles (not yet tracked) still need scheduling.
                    woken = woken - parked
                    if not woken:
                        return
            keyfn = state.keyfn
            heap = state.heap
            limit = state.round_limit
            candidates = woken & parked
            for w in woken - candidates if len(candidates) != len(woken) \
                    else ():
                # Brand-new particles (added while the run executes): they
                # have no slot in the current round's order — the sweep
                # would not reach them either — so they join via ``active``.
                active.add(w)
            for w in candidates:
                if (movement_filter is not None
                        and not movement_filter(particles[w], system)):
                    continue
                parked.discard(w)
                active.add(w)
                state.wakes += 1
                if keyfn is not None and w < limit:
                    heappush(heap, (keyfn(w), w))

        state.listener = system.add_change_listener(wake)
        return state

    def _finish(self, system: ParticleSystem, state: _EventState) -> None:
        if state.listener is not None:
            system.remove_change_listener(state.listener)

    def _snapshot_engine_state(self, state: _EventState) -> Dict[str, Any]:
        return {
            "active": sorted(state.active),
            "parked": sorted(state.parked),
            "done": sorted(state.done),
            "parks": state.parks,
            "wakes": state.wakes,
        }

    def _record_metrics(self, rounds: int, activations: int, skipped: int,
                        moves: int, state: _EventState) -> None:
        super()._record_metrics(rounds, activations, skipped, moves, state)
        registry = _get_registry()
        if registry.enabled:
            registry.counter("engine.event.parks").inc(state.parks)
            registry.counter("engine.event.wakes").inc(state.wakes)

    def _round_keyfn(self, system: ParticleSystem, round_index: int,
                     rng: random.Random):
        """The key function positioning each particle in this round's order
        for the built-in policies, or None for user-supplied policies.

        For the ``random`` policy the keys are drawn exactly as
        :func:`_random_order` draws them (same RNG stream, same
        key-then-ascending-id tie order), so the event engine schedules the
        awake particles in precisely the sub-order the sweep would have
        activated them in — without materialising, sorting, or walking the
        full permutation.
        """
        name = self.order_name
        if name == "random" and self._key_stream is not None:
            # The stream is only built for the *built-in* random policy; a
            # user-supplied callable that happens to be named "random" must
            # fall through to the materialise-full-order path below.
            ids = system._ids_snapshot()
            return _key_function(ids, self._key_stream.draw_raw(len(ids)))
        if name == "round_robin":
            return lambda pid: pid
        if name == "reversed":
            return lambda pid: -pid
        return None

    def _run_round(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
                   round_index: int, rng: random.Random, state: _EventState):
        active = state.active
        parked = state.parked
        done = state.done
        particles = system._particles
        is_terminated = algorithm.is_terminated
        is_quiescent = algorithm.is_quiescent
        activate = algorithm.activate
        # Wakes are an engine computation, not a particle observation:
        # they read the *live* neighbourhood even when the activated
        # particle's own reads are served stale by a delay fault
        # (identical to ``neighbors_of`` whenever no overlay is active).
        neighbors_of = system.live_neighbors_of
        # A precise wake list returned by a delayed particle was computed
        # from stale data and may under-wake, so with delay faults active
        # the conservative live-neighbourhood wake is forced instead.
        force_conservative = (self._injector is not None
                              and self._injector.spec.delay_rate > 0)
        # With reports_termination, terminating activations return the
        # TERMINATED sentinel, so the per-examination poll is skipped;
        # with reports_quiescence, quiescent activations return the
        # QUIESCENT sentinel and replace the is_quiescent pre-check (the
        # activation itself is the quiescence test).
        poll_terminated = not algorithm.reports_termination
        poll_quiescent = not algorithm.reports_quiescence
        activations = 0
        examined = 0

        keyfn = self._round_keyfn(system, round_index, rng)
        if keyfn is None:
            # User-supplied policy: materialise the full order and walk it.
            # ``filter`` re-tests membership lazily as the iteration
            # advances, so particles parked or woken mid-round are handled
            # exactly like the sweep's walk would — but the test runs in C.
            population = len(particles)
            schedule = filter(
                active.__contains__,
                self._round_order(system, round_index, rng))
            for particle_id in schedule:
                examined += 1
                particle = particles[particle_id]
                if poll_terminated and is_terminated(particle, system):
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if poll_quiescent and is_quiescent(particle, system):
                    parked.add(particle_id)
                    active.discard(particle_id)
                    state.parks += 1
                    continue
                acted = activate(particle, system)
                activations += 1
                if acted is False:
                    continue
                if acted is QUIESCENT:
                    parked.add(particle_id)
                    active.discard(particle_id)
                    state.parks += 1
                    continue
                if acted is TERMINATED:
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if force_conservative or (type(acted) is not list
                                          and type(acted) is not tuple):
                    # Anything but a precise wake list (True, None, or any
                    # legacy truthy flag) keeps the conservative wake: the
                    # post-activation neighbourhood plus the movement
                    # events fired during the activation cover every
                    # pre-activation neighbour (a vacated point's event
                    # wakes whoever only touched it).
                    acted = neighbors_of(particle)
                for q in acted:
                    qid = q.particle_id
                    if qid in parked:
                        parked.discard(qid)
                        active.add(qid)
                        state.wakes += 1
            return activations, population - examined

        # Built-in policy: schedule only the awake particles, in the exact
        # sub-order the full permutation would give them.  Mid-round wakes
        # are pushed into the heap; a pushed entry whose position is already
        # behind the cursor pops out of order and is dropped — matching the
        # sweep, where a particle woken after its slot passed is not
        # reached again until the next round.  Dropped-duplicate entries
        # (same particle woken twice) compare equal to the cursor and are
        # dropped the same way.
        population = len(particles)
        heap = [(keyfn(pid), pid) for pid in active]
        heapify(heap)
        state.heap = heap
        state.round_limit = system._next_id
        state.keyfn = keyfn
        last = (float("-inf"), -1)
        try:
            while heap:
                entry = heappop(heap)
                if entry <= last:
                    continue
                last = entry
                particle_id = entry[1]
                examined += 1
                particle = particles[particle_id]
                if poll_terminated and is_terminated(particle, system):
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if poll_quiescent and is_quiescent(particle, system):
                    parked.add(particle_id)
                    active.discard(particle_id)
                    state.parks += 1
                    continue
                # The particle acts: anything it writes lives in its own or
                # a neighbour's memory, so waking its neighbourhood (plus
                # the movement events fired during the activation, which
                # wake the neighbourhood of every vacated or occupied
                # point) covers every particle whose quiescence this
                # activation can end.  An activation returning exactly
                # ``False`` declares it changed nothing a neighbour
                # observes (or that its only observable change was a
                # movement, whose event already woke the right particles),
                # so the wake is skipped entirely; QUIESCENT additionally
                # parks the particle, TERMINATED retires it, and a
                # particle list narrows the wake to exactly those.
                acted = activate(particle, system)
                activations += 1
                if acted is False:
                    continue
                if acted is QUIESCENT:
                    parked.add(particle_id)
                    active.discard(particle_id)
                    state.parks += 1
                    continue
                if acted is TERMINATED:
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if force_conservative or (type(acted) is not list
                                          and type(acted) is not tuple):
                    # Any non-list hint keeps the conservative wake:
                    # post-activation neighbourhood + movement events
                    # cover every pre-activation neighbour.
                    acted = neighbors_of(particle)
                for q in acted:
                    qid = q.particle_id
                    if qid in parked:
                        parked.discard(qid)
                        active.add(qid)
                        state.wakes += 1
                        heappush(heap, (keyfn(qid), qid))
        finally:
            state.heap = None
            state.keyfn = None
        # Every particle was either examined (activated, parked, or newly
        # observed terminated) or skipped as parked/terminated.
        return activations, population - examined


#: Registry of activation engines, keyed by the ``--engine`` CLI value.
ENGINES: Dict[str, type] = {
    "sweep": SequentialScheduler,
    "event": EventDrivenScheduler,
}


def canonical_run_kwargs(order: "str | OrderPolicy", seed: int,
                         scheduler_order: "Optional[str | OrderPolicy]" = None,
                         rng: Optional[int] = None,
                         stacklevel: int = 3):
    """Resolve the canonical ``(order, seed)`` pair from current and
    deprecated keyword spellings.

    The keyword surface drifted while the harness grew — ``scheduler.py``
    said ``order=``/``seed=``, the pipeline drivers said
    ``scheduler_order=`` and some call sites said ``rng=`` for the seed.
    ``order=`` and ``seed=`` are now canonical everywhere; the old
    spellings keep working through this shim but raise a
    :class:`DeprecationWarning` naming the replacement.
    """
    if scheduler_order is not None:
        warnings.warn("scheduler_order= is deprecated; use order=",
                      DeprecationWarning, stacklevel=stacklevel)
        order = scheduler_order
    if rng is not None:
        warnings.warn("rng= is deprecated; use seed=",
                      DeprecationWarning, stacklevel=stacklevel)
        seed = rng
    return order, seed


def make_scheduler(engine: str = "sweep", order: str | OrderPolicy = "random",
                   seed: int = 0,
                   faults: "str | FaultSpec | None" = None, *,
                   scheduler_order: "Optional[str | OrderPolicy]" = None,
                   rng: Optional[int] = None) -> SequentialScheduler:
    """Build the scheduler for ``engine`` (``"sweep"`` or ``"event"``).

    ``faults`` is a :class:`~repro.amoebot.faults.FaultSpec` or its spec
    string (None/"" = no fault injection).  ``scheduler_order=`` and
    ``rng=`` are deprecated aliases of ``order=`` and ``seed=``.
    """
    order, seed = canonical_run_kwargs(order, seed, scheduler_order, rng)
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown activation engine {engine!r}; known: {sorted(ENGINES)}"
        ) from None
    return cls(order=order, seed=seed, faults=faults)


def run_algorithm(algorithm: AmoebotAlgorithm, system: ParticleSystem,
                  order: str | OrderPolicy = "random", seed: int = 0,
                  max_rounds: int = 1_000_000,
                  engine: str = "sweep",
                  faults: "str | FaultSpec | None" = None, *,
                  scheduler_order: "Optional[str | OrderPolicy]" = None,
                  rng: Optional[int] = None) -> SchedulerResult:
    """Convenience wrapper: build a scheduler and run the algorithm.

    ``scheduler_order=`` and ``rng=`` are deprecated aliases of ``order=``
    and ``seed=``.
    """
    order, seed = canonical_run_kwargs(order, seed, scheduler_order, rng)
    return make_scheduler(engine, order=order, seed=seed, faults=faults).run(
        algorithm, system, max_rounds=max_rounds)
