"""Strong schedulers for the amoebot model.

The paper assumes a *strong* scheduler: particles are activated one at a
time, each activation is atomic, and every fair execution activates every
particle infinitely often.  The adversary chooses the activation order.

An *asynchronous round* is a minimal execution fragment in which every
particle is activated at least once; the round complexity of an algorithm is
the number of rounds until all particles reach a final state (Section 2.2).

This module provides several activation-order policies:

* ``round_robin`` — a fixed cyclic order (the canonical fair schedule);
* ``random`` — an independent uniformly random permutation per round
  (seeded, reproducible);
* ``reversed`` — round-robin in reverse id order (useful to catch
  order-dependent bugs);
* a user-supplied callable producing the order for each round, which lets
  tests construct adversarial schedules.

All policies activate each particle exactly once per round, which makes the
reported round count a faithful upper-bound witness of the definition above
(any schedule activating particles more often can only be grouped into at
least as many rounds).

Execution engines
-----------------

Two engines share the round accounting above and produce *identical traces
and round counts* — they differ only in how much Python work a round costs:

* :class:`SequentialScheduler` (``engine="sweep"``) — the legacy engine:
  every non-terminated particle is activated every round, O(n) activations
  per round no matter how many particles still have work to do.
* :class:`EventDrivenScheduler` (``engine="event"``) — particles whose
  algorithm declares them *quiescent* (see
  :meth:`~repro.amoebot.algorithm.AmoebotAlgorithm.is_quiescent`) are
  parked and skipped; a parked particle is re-woken when an adjacent
  particle acts or when a :class:`~repro.amoebot.system.ParticleSystem`
  movement operation publishes a dirty-neighborhood event touching it.
  Because a parked particle's activation would have been a no-op by
  contract, skipping it leaves the execution — and therefore the round
  count — unchanged, while the per-round cost drops from O(n) activations
  to O(active front).

Both engines draw the activation order for the *full* particle id list from
the same policy and the same seeded RNG stream, so a given
``(order, seed)`` pair yields the same per-round permutations regardless of
the engine — the event engine merely skips the parked suffix of the work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Set

from .algorithm import AmoebotAlgorithm
from .system import ParticleSystem

__all__ = [
    "ENGINES",
    "SCHEDULER_ORDERS",
    "SchedulerResult",
    "Scheduler",
    "SequentialScheduler",
    "EventDrivenScheduler",
    "make_scheduler",
    "run_algorithm",
]

OrderPolicy = Callable[[int, List[int], random.Random], List[int]]


def _round_robin_order(round_index: int, ids: List[int],
                       rng: random.Random) -> List[int]:
    return list(ids)


def _reversed_order(round_index: int, ids: List[int],
                    rng: random.Random) -> List[int]:
    return list(reversed(ids))


def _draw_random_keys(ids: List[int], rng: random.Random):
    """Draw one uniform key per particle and return a pid -> key function.

    This is the single source of the ``random`` policy's RNG stream: both
    the sweep's full-permutation sort and the event engine's awake-only
    heap call it, which is what guarantees the two engines consume the RNG
    identically and therefore order particles identically.
    """
    rand = rng.random
    keys = [rand() for _ in ids]
    if ids and ids[0] == 0 and ids[-1] == len(ids) - 1:
        # ids is sorted and unique, so first==0 and last==n-1 means it is
        # exactly range(n): each id indexes its own key.
        return keys.__getitem__
    positions = {pid: index for index, pid in enumerate(ids)}
    return lambda pid: keys[positions[pid]]


def _random_order(round_index: int, ids: List[int],
                  rng: random.Random) -> List[int]:
    # Sorting by independent uniform keys yields a uniformly random
    # permutation (key collisions have probability zero, and the stable
    # sort breaks any tie by ascending id, deterministically).  This is
    # several times faster per round than ``rng.shuffle`` because both the
    # key draw and the sort run in C, and the per-round order generation is
    # the one O(n) cost the event-driven engine cannot park away.
    return sorted(ids, key=_draw_random_keys(ids, rng))


_POLICIES: Dict[str, OrderPolicy] = {
    "round_robin": _round_robin_order,
    "reversed": _reversed_order,
    "random": _random_order,
}

#: The built-in activation-order policy names (the ``order=`` choices).
SCHEDULER_ORDERS: tuple = tuple(sorted(_POLICIES))


@dataclass
class SchedulerResult:
    """Outcome of running an algorithm to termination."""

    rounds: int
    activations: int
    terminated: bool
    moves: int
    #: Optional per-round statistics recorded by the algorithm's trace hook.
    history: List[dict] = field(default_factory=list)
    #: Activations the event-driven engine skipped because the particle was
    #: parked as quiescent or already terminated (always 0 for the sweep
    #: engine).
    skipped: int = 0
    #: Which engine produced this result (``"sweep"`` or ``"event"``).
    engine: str = "sweep"

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "TIMED OUT"
        return (
            f"SchedulerResult({status}, rounds={self.rounds}, "
            f"activations={self.activations}, moves={self.moves})"
        )


class SequentialScheduler:
    """Runs an :class:`AmoebotAlgorithm` on a :class:`ParticleSystem` by
    activating every non-terminated particle once per round (the legacy
    full-sweep engine)."""

    engine = "sweep"

    def __init__(self, order: str | OrderPolicy = "random",
                 seed: int = 0) -> None:
        if callable(order):
            self._policy: OrderPolicy = order
            self.order_name = getattr(order, "__name__", "custom")
            # Only user-supplied policies need the every-particle-once check;
            # the built-in policies are permutations by construction and the
            # per-round O(n log n) validation would dominate small rounds.
            self._validate_order = True
        else:
            try:
                self._policy = _POLICIES[order]
            except KeyError:
                raise ValueError(
                    f"unknown scheduler order {order!r}; "
                    f"known: {sorted(_POLICIES)}"
                ) from None
            self.order_name = order
            self._validate_order = False
        self.seed = seed

    def run(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
            max_rounds: int = 1_000_000,
            round_hook: Optional[Callable[[int, ParticleSystem], None]] = None,
            ) -> SchedulerResult:
        """Run ``algorithm`` until all particles terminate.

        ``max_rounds`` bounds the execution; if it is reached the result is
        returned with ``terminated=False`` rather than raising, so callers
        (e.g. negative tests about algorithms that cannot terminate) can
        inspect the partial execution.
        """
        rng = random.Random(self.seed)
        algorithm.setup(system)
        state = self._start(algorithm, system)
        moves_before = system.move_count
        activations = 0
        skipped = 0
        rounds = 0
        history: List[dict] = []
        try:
            while rounds < max_rounds:
                if algorithm.has_terminated(system):
                    break
                done, skip = self._run_round(algorithm, system, rounds, rng,
                                             state)
                activations += done
                skipped += skip
                rounds += 1
                algorithm.on_round_end(rounds, system)
                if round_hook is not None:
                    round_hook(rounds, system)
        finally:
            self._finish(system, state)
        terminated = algorithm.has_terminated(system)
        return SchedulerResult(
            rounds=rounds,
            activations=activations,
            terminated=terminated,
            moves=system.move_count - moves_before,
            history=history,
            skipped=skipped,
            engine=self.engine,
        )

    # -- engine-specific hooks ------------------------------------------------

    def _start(self, algorithm: AmoebotAlgorithm,
               system: ParticleSystem) -> Optional[object]:
        """Per-run engine state, created after ``algorithm.setup``."""
        return None

    def _finish(self, system: ParticleSystem, state: Optional[object]) -> None:
        """Tear down per-run engine state (always called, even on error)."""

    def _round_order(self, system: ParticleSystem, round_index: int,
                     rng: random.Random) -> List[int]:
        """The full activation order for one round, policy-validated."""
        ids = system.particle_ids()
        order = self._policy(round_index, ids, rng)
        if self._validate_order and sorted(order) != sorted(ids):
            raise ValueError(
                "scheduler order policy must activate every particle "
                "exactly once per round"
            )
        return order

    def _run_round(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
                   round_index: int, rng: random.Random,
                   state: Optional[object]):
        """Activate one round; returns (activations, skipped)."""
        activations = 0
        for particle_id in self._round_order(system, round_index, rng):
            particle = system.get_particle(particle_id)
            if algorithm.is_terminated(particle, system):
                continue
            algorithm.activate(particle, system)
            activations += 1
        return activations, 0


#: Backwards-compatible name: the scheduler everybody imported before the
#: event-driven engine existed is the sequential sweep.
Scheduler = SequentialScheduler


class _EventState:
    """Per-run bookkeeping of the event-driven engine."""

    __slots__ = ("active", "parked", "done", "listener", "heap", "keyfn",
                 "round_limit")

    def __init__(self) -> None:
        #: Particles that are awake: neither parked nor observed terminated.
        self.active: Set[int] = set()
        #: Particles currently parked as quiescent (skipped until woken).
        self.parked: Set[int] = set()
        #: Particles observed terminated (final states are absorbing, so
        #: they are skipped without re-asking the algorithm every round).
        self.done: Set[int] = set()
        self.listener = None
        #: The (key, pid) schedule of the round currently executing, and the
        #: key function that positions a particle in the round's order;
        #: ``keyfn`` is None outside keyed rounds, which tells the wake path
        #: that no heap insertion is needed.
        self.heap: Optional[List] = None
        self.keyfn = None
        #: Exclusive upper bound on the particle ids the executing round's
        #: order covers (ids are allocated monotonically); particles created
        #: mid-round compare >= and are deferred to the next round.
        self.round_limit = 0


class EventDrivenScheduler(SequentialScheduler):
    """Event-driven activation engine.

    Per round the engine examines only the particles that are awake, in
    exactly the sub-order the sweep's full permutation would have activated
    them in: for the built-in policies the awake particles are scheduled on
    a heap keyed by the same per-round random keys (or by id) the sweep's
    order uses, so the full permutation is never materialised; a
    user-supplied policy falls back to generating the full order and
    filtering it.  A particle whose algorithm reports
    :meth:`~repro.amoebot.algorithm.AmoebotAlgorithm.is_quiescent` is parked
    without being activated (its activation would be a no-op by contract).
    Parked particles are re-woken by exactly the changes that can affect
    their next activation:

    * an adjacent particle was activated and acted (covers memory writes —
      the amoebot model only lets a particle write its own and its
      neighbours' memories), or
    * a movement operation published a dirty-neighborhood event touching
      them (covers occupancy changes, including a particle expanding *into*
      their neighbourhood from two hops away).

    With the conservative default ``is_quiescent`` (always ``False``) no
    particle is ever parked and the engine is activation-for-activation
    identical to the sweep; with precise quiescence declarations the trace
    and round counts are still identical while quiescent regions cost
    nothing.
    """

    engine = "event"

    def _start(self, algorithm: AmoebotAlgorithm,
               system: ParticleSystem) -> _EventState:
        state = _EventState()
        state.active = set(system.particle_ids())
        active = state.active
        parked = state.parked
        done = state.done

        def wake(dirty_points, affected_ids):
            # Everything affected that is not terminated must be awake:
            # parked particles are woken, brand-new particles (added while
            # the run executes) become active.
            woken = affected_ids - active - done
            if woken:
                parked.difference_update(woken)
                active.update(woken)
                keyfn = state.keyfn
                if keyfn is not None:
                    heap = state.heap
                    limit = state.round_limit
                    for w in woken:
                        # A particle created after the round's order was
                        # drawn has no slot in it — the sweep would not
                        # reach it either; it joins the next round's
                        # schedule via ``active``.
                        if w < limit:
                            heappush(heap, (keyfn(w), w))

        state.listener = system.add_change_listener(wake)
        return state

    def _finish(self, system: ParticleSystem, state: _EventState) -> None:
        if state.listener is not None:
            system.remove_change_listener(state.listener)

    def _round_keyfn(self, system: ParticleSystem, round_index: int,
                     rng: random.Random):
        """The key function positioning each particle in this round's order
        for the built-in policies, or None for user-supplied policies.

        For the ``random`` policy the keys are drawn exactly as
        :func:`_random_order` draws them (same RNG stream, same
        key-then-ascending-id tie order), so the event engine schedules the
        awake particles in precisely the sub-order the sweep would have
        activated them in — without materialising, sorting, or walking the
        full permutation.
        """
        name = self.order_name
        if name == "random":
            return _draw_random_keys(system.particle_ids(), rng)
        if name == "round_robin":
            return lambda pid: pid
        if name == "reversed":
            return lambda pid: -pid
        return None

    def _run_round(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
                   round_index: int, rng: random.Random, state: _EventState):
        active = state.active
        parked = state.parked
        done = state.done
        particles = system._particles
        is_terminated = algorithm.is_terminated
        is_quiescent = algorithm.is_quiescent
        activate = algorithm.activate
        neighbor_ids = system.neighbor_ids
        activations = 0
        examined = 0

        keyfn = self._round_keyfn(system, round_index, rng)
        if keyfn is None:
            # User-supplied policy: materialise the full order and walk it.
            # ``filter`` re-tests membership lazily as the iteration
            # advances, so particles parked or woken mid-round are handled
            # exactly like the sweep's walk would — but the test runs in C.
            population = len(particles)
            schedule = filter(
                active.__contains__,
                self._round_order(system, round_index, rng))
            for particle_id in schedule:
                examined += 1
                particle = particles[particle_id]
                if is_terminated(particle, system):
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if is_quiescent(particle, system):
                    parked.add(particle_id)
                    active.discard(particle_id)
                    continue
                nbr_ids = neighbor_ids(particle)
                acted = activate(particle, system)
                activations += 1
                if acted is not False:
                    for q in nbr_ids:
                        if q in parked:
                            parked.discard(q)
                            active.add(q)
            return activations, population - examined

        # Built-in policy: schedule only the awake particles, in the exact
        # sub-order the full permutation would give them.  Mid-round wakes
        # are pushed into the heap; a pushed entry whose position is already
        # behind the cursor pops out of order and is dropped — matching the
        # sweep, where a particle woken after its slot passed is not
        # reached again until the next round.  Dropped-duplicate entries
        # (same particle woken twice) compare equal to the cursor and are
        # dropped the same way.
        population = len(particles)
        heap = [(keyfn(pid), pid) for pid in active]
        heapify(heap)
        state.heap = heap
        state.round_limit = system._next_id
        state.keyfn = keyfn
        last = (float("-inf"), -1)
        try:
            while heap:
                entry = heappop(heap)
                if entry <= last:
                    continue
                last = entry
                particle_id = entry[1]
                examined += 1
                particle = particles[particle_id]
                if is_terminated(particle, system):
                    done.add(particle_id)
                    active.discard(particle_id)
                    continue
                if is_quiescent(particle, system):
                    parked.add(particle_id)
                    active.discard(particle_id)
                    continue
                # The particle acts: anything it writes lives in its own or
                # a neighbour's memory, so waking the pre-activation
                # neighbourhood (plus the movement events fired during the
                # activation, which wake the post-movement neighbourhood)
                # covers every particle whose quiescence this activation can
                # end.  An activation returning exactly ``False`` declares
                # it changed nothing a neighbour observes (or that its only
                # observable change was a movement, whose event already woke
                # the right particles), so the explicit wake is skipped.
                nbr_ids = neighbor_ids(particle)
                acted = activate(particle, system)
                activations += 1
                if acted is not False:
                    for q in nbr_ids:
                        if q in parked:
                            parked.discard(q)
                            active.add(q)
                            heappush(heap, (keyfn(q), q))
        finally:
            state.heap = None
            state.keyfn = None
        # Every particle was either examined (activated, parked, or newly
        # observed terminated) or skipped as parked/terminated.
        return activations, population - examined


#: Registry of activation engines, keyed by the ``--engine`` CLI value.
ENGINES: Dict[str, type] = {
    "sweep": SequentialScheduler,
    "event": EventDrivenScheduler,
}


def make_scheduler(engine: str = "sweep", order: str | OrderPolicy = "random",
                   seed: int = 0) -> SequentialScheduler:
    """Build the scheduler for ``engine`` (``"sweep"`` or ``"event"``)."""
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown activation engine {engine!r}; known: {sorted(ENGINES)}"
        ) from None
    return cls(order=order, seed=seed)


def run_algorithm(algorithm: AmoebotAlgorithm, system: ParticleSystem,
                  order: str | OrderPolicy = "random", seed: int = 0,
                  max_rounds: int = 1_000_000,
                  engine: str = "sweep") -> SchedulerResult:
    """Convenience wrapper: build a scheduler and run the algorithm."""
    return make_scheduler(engine, order=order, seed=seed).run(
        algorithm, system, max_rounds=max_rounds)
