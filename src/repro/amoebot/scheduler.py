"""Strong schedulers for the amoebot model.

The paper assumes a *strong* scheduler: particles are activated one at a
time, each activation is atomic, and every fair execution activates every
particle infinitely often.  The adversary chooses the activation order.

An *asynchronous round* is a minimal execution fragment in which every
particle is activated at least once; the round complexity of an algorithm is
the number of rounds until all particles reach a final state (Section 2.2).

This module provides several activation-order policies:

* ``round_robin`` — a fixed cyclic order (the canonical fair schedule);
* ``random`` — an independent uniformly random permutation per round
  (seeded, reproducible);
* ``reversed`` — round-robin in reverse id order (useful to catch
  order-dependent bugs);
* a user-supplied callable producing the order for each round, which lets
  tests construct adversarial schedules.

All policies activate each particle exactly once per round, which makes the
reported round count a faithful upper-bound witness of the definition above
(any schedule activating particles more often can only be grouped into at
least as many rounds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .algorithm import AmoebotAlgorithm
from .system import ParticleSystem

__all__ = ["SchedulerResult", "Scheduler", "run_algorithm"]

OrderPolicy = Callable[[int, List[int], random.Random], List[int]]


def _round_robin_order(round_index: int, ids: List[int],
                       rng: random.Random) -> List[int]:
    return list(ids)


def _reversed_order(round_index: int, ids: List[int],
                    rng: random.Random) -> List[int]:
    return list(reversed(ids))


def _random_order(round_index: int, ids: List[int],
                  rng: random.Random) -> List[int]:
    order = list(ids)
    rng.shuffle(order)
    return order


_POLICIES: Dict[str, OrderPolicy] = {
    "round_robin": _round_robin_order,
    "reversed": _reversed_order,
    "random": _random_order,
}


@dataclass
class SchedulerResult:
    """Outcome of running an algorithm to termination."""

    rounds: int
    activations: int
    terminated: bool
    moves: int
    #: Optional per-round statistics recorded by the algorithm's trace hook.
    history: List[dict] = field(default_factory=list)

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "TIMED OUT"
        return (
            f"SchedulerResult({status}, rounds={self.rounds}, "
            f"activations={self.activations}, moves={self.moves})"
        )


class Scheduler:
    """Runs an :class:`AmoebotAlgorithm` on a :class:`ParticleSystem`."""

    def __init__(self, order: str | OrderPolicy = "random",
                 seed: int = 0) -> None:
        if callable(order):
            self._policy: OrderPolicy = order
            self.order_name = getattr(order, "__name__", "custom")
        else:
            try:
                self._policy = _POLICIES[order]
            except KeyError:
                raise ValueError(
                    f"unknown scheduler order {order!r}; "
                    f"known: {sorted(_POLICIES)}"
                ) from None
            self.order_name = order
        self.seed = seed

    def run(self, algorithm: AmoebotAlgorithm, system: ParticleSystem,
            max_rounds: int = 1_000_000,
            round_hook: Optional[Callable[[int, ParticleSystem], None]] = None,
            ) -> SchedulerResult:
        """Run ``algorithm`` until all particles terminate.

        ``max_rounds`` bounds the execution; if it is reached the result is
        returned with ``terminated=False`` rather than raising, so callers
        (e.g. negative tests about algorithms that cannot terminate) can
        inspect the partial execution.
        """
        rng = random.Random(self.seed)
        algorithm.setup(system)
        moves_before = system.move_count
        activations = 0
        rounds = 0
        history: List[dict] = []
        while rounds < max_rounds:
            if algorithm.has_terminated(system):
                break
            ids = system.particle_ids()
            order = self._policy(rounds, ids, rng)
            if sorted(order) != sorted(ids):
                raise ValueError(
                    "scheduler order policy must activate every particle "
                    "exactly once per round"
                )
            for particle_id in order:
                particle = system.get_particle(particle_id)
                if algorithm.is_terminated(particle, system):
                    continue
                algorithm.activate(particle, system)
                activations += 1
            rounds += 1
            algorithm.on_round_end(rounds, system)
            if round_hook is not None:
                round_hook(rounds, system)
        terminated = algorithm.has_terminated(system)
        return SchedulerResult(
            rounds=rounds,
            activations=activations,
            terminated=terminated,
            moves=system.move_count - moves_before,
            history=history,
        )


def run_algorithm(algorithm: AmoebotAlgorithm, system: ParticleSystem,
                  order: str | OrderPolicy = "random", seed: int = 0,
                  max_rounds: int = 1_000_000) -> SchedulerResult:
    """Convenience wrapper: build a scheduler and run the algorithm."""
    return Scheduler(order=order, seed=seed).run(algorithm, system,
                                                 max_rounds=max_rounds)
