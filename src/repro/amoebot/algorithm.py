"""The algorithm interface executed by the scheduler.

An amoebot algorithm is defined by three hooks:

* :meth:`AmoebotAlgorithm.setup` — initialise the memory of every particle
  from the initial configuration (the paper's "Initialization" blocks);
* :meth:`AmoebotAlgorithm.activate` — one atomic activation of one particle:
  read neighbour memories, compute, write memories, optionally perform a
  single movement operation;
* :meth:`AmoebotAlgorithm.is_terminated` — whether the particle has reached a
  final state (a state in which an activation does nothing).

Only information available to the particle may be used inside
``activate``: its own memory, the memories of neighbouring particles, which
adjacent points are occupied, and port translations.  Global information
(the full shape, particle ids, grid coordinates) must not influence
decisions; it may only be used for instrumentation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from .particle import Particle
from .system import ParticleSystem

__all__ = ["AmoebotAlgorithm", "StatusMixin", "STATUS_KEY",
           "STATUS_UNDECIDED", "STATUS_LEADER", "STATUS_FOLLOWER",
           "is_sce_flag_arc"]

#: Memory key conventionally used for the leader-election output variable.
STATUS_KEY = "status"
STATUS_UNDECIDED = "undecided"
STATUS_LEADER = "leader"
STATUS_FOLLOWER = "follower"


def is_sce_flag_arc(flags) -> bool:
    """Strictly-convex-and-erodable (SCE) test on a cyclic 6-flag array.

    The flagged entries must form a single contiguous cyclic arc of size
    1-3.  The test is rotation invariant, so it gives the same answer on
    port-indexed and direction-indexed eligibility arrays — Algorithm DLE
    and the erosion baseline both use it (their quiescence fast paths apply
    it directly to the port-indexed flags, skipping the port translation
    the activation itself needs).
    """
    k = sum(flags)
    if k == 0 or k > 3:
        return False
    starts = 0
    for i in range(6):
        if flags[i] and not flags[i - 1]:
            starts += 1
    return starts == 1


class AmoebotAlgorithm(ABC):
    """Base class for algorithms executed on a :class:`ParticleSystem`."""

    #: Human readable algorithm name (used in experiment reports).
    name: str = "amoebot-algorithm"

    @abstractmethod
    def setup(self, system: ParticleSystem) -> None:
        """Initialise particle memories from the initial configuration."""

    @abstractmethod
    def activate(self, particle: Particle, system: ParticleSystem) -> object:
        """Perform one atomic activation of ``particle``.

        The return value is an optional *visibility hint* for the
        event-driven engine: returning exactly ``False`` declares that the
        activation changed nothing a neighbour can observe — no movement
        performed beyond what the system's dirty-neighborhood events already
        report, and no write to any memory a neighbour reads.  The engine
        then skips the conservative "wake all neighbours" step.  Any other
        return value (including the implicit ``None``) keeps the
        conservative wake, so existing algorithms are unaffected.
        """

    @abstractmethod
    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        """Whether ``particle`` has reached a final state."""

    # -- optional hooks -----------------------------------------------------

    def on_round_end(self, round_index: int, system: ParticleSystem) -> None:
        """Called by the scheduler after each asynchronous round (optional)."""

    def has_terminated(self, system: ParticleSystem) -> bool:
        """Whether every particle has reached a final state."""
        return all(self.is_terminated(p, system) for p in system.particles())

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Whether activating ``particle`` right now would provably change
        nothing — the opt-in contract behind the event-driven engine.

        The :class:`~repro.amoebot.scheduler.EventDrivenScheduler` *parks* a
        particle that reports quiescence instead of activating it, and only
        re-wakes it when its visible neighbourhood changes: when an adjacent
        particle is activated and acts, or when a movement operation
        publishes a dirty-neighborhood event touching it.  An algorithm that
        overrides this method therefore promises, for every particle it
        declares quiescent, that

        1. activating the particle now would perform no movement and no
           observable memory write, and
        2. that remains true until a neighbouring particle acts or the
           occupancy of an adjacent point changes (locality: a parked
           particle's next activation may depend only on its own state and
           its visible neighbourhood).

        The conservative default returns ``False`` for every particle, which
        makes the event-driven engine behave exactly like the legacy sweep —
        unmodified algorithms stay correct and merely forgo the speedup.
        """
        return False


class StatusMixin:
    """Helpers shared by the leader-election algorithms in this package."""

    @staticmethod
    def status_of(particle: Particle) -> str:
        return particle.get(STATUS_KEY, STATUS_UNDECIDED)

    @staticmethod
    def set_status(particle: Particle, status: str) -> None:
        particle[STATUS_KEY] = status

    @staticmethod
    def leaders(system: ParticleSystem) -> list:
        """All particles currently holding leader status."""
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_LEADER]

    @staticmethod
    def followers(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_FOLLOWER]

    @staticmethod
    def undecided(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY, STATUS_UNDECIDED) == STATUS_UNDECIDED]
