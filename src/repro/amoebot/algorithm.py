"""The algorithm interface executed by the scheduler.

An amoebot algorithm is defined by three hooks:

* :meth:`AmoebotAlgorithm.setup` — initialise the memory of every particle
  from the initial configuration (the paper's "Initialization" blocks);
* :meth:`AmoebotAlgorithm.activate` — one atomic activation of one particle:
  read neighbour memories, compute, write memories, optionally perform a
  single movement operation;
* :meth:`AmoebotAlgorithm.is_terminated` — whether the particle has reached a
  final state (a state in which an activation does nothing).

Only information available to the particle may be used inside
``activate``: its own memory, the memories of neighbouring particles, which
adjacent points are occupied, and port translations.  Global information
(the full shape, particle ids, grid coordinates) must not influence
decisions; it may only be used for instrumentation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from .particle import Particle
from .system import ParticleSystem

__all__ = ["AmoebotAlgorithm", "StatusMixin", "STATUS_KEY",
           "STATUS_UNDECIDED", "STATUS_LEADER", "STATUS_FOLLOWER",
           "TERMINATED", "QUIESCENT", "is_sce_flag_arc"]

#: Sentinel an activation may return to declare, in one step, that it
#: changed nothing a neighbour observes **and** that the activated particle
#: has just reached a final state.  Algorithms that return it from every
#: terminating activation can set :attr:`AmoebotAlgorithm.
#: reports_termination` and spare the engines one ``is_terminated`` poll
#: per examination.
TERMINATED = object()

#: Sentinel an activation may return to declare that it was a no-op *and*
#: will remain one until the particle is woken (the same promise as
#: :meth:`AmoebotAlgorithm.is_quiescent`, evaluated during the activation
#: itself).  Algorithms that return it from every quiescent activation can
#: set :attr:`AmoebotAlgorithm.reports_quiescence`; the event engine then
#: parks on the sentinel instead of running the separate ``is_quiescent``
#: pre-check per examination.  The sweep engine treats it as a plain no-op.
QUIESCENT = object()

#: Memory key conventionally used for the leader-election output variable.
STATUS_KEY = "status"
STATUS_UNDECIDED = "undecided"
STATUS_LEADER = "leader"
STATUS_FOLLOWER = "follower"


def is_sce_flag_arc(flags) -> bool:
    """Strictly-convex-and-erodable (SCE) test on a cyclic 6-flag array.

    The flagged entries must form a single contiguous cyclic arc of size
    1-3.  The test is rotation invariant, so it gives the same answer on
    port-indexed and direction-indexed eligibility arrays — Algorithm DLE
    and the erosion baseline both use it (their quiescence fast paths apply
    it directly to the port-indexed flags, skipping the port translation
    the activation itself needs).
    """
    if not 1 <= flags.count(True) <= 3:
        return False
    starts = 0
    prev = flags[5]
    for flag in flags:
        if flag and not prev:
            starts += 1
        prev = flag
    return starts == 1


class AmoebotAlgorithm(ABC):
    """Base class for algorithms executed on a :class:`ParticleSystem`."""

    #: Human readable algorithm name (used in experiment reports).
    name: str = "amoebot-algorithm"

    #: Opt-in fast path for both engines: when True, the algorithm promises
    #: that a particle only ever reaches a final state during its own
    #: activation, and that the activation returns :data:`TERMINATED` when
    #: it does.  The engines then stop polling :meth:`is_terminated` before
    #: every activation and retire particles exactly when the sentinel is
    #: returned.  (Global termination — :meth:`has_terminated` — is still
    #: polled once per round, so stall-style endings keep working.)
    reports_termination: bool = False

    #: Companion opt-in to :data:`QUIESCENT`: when True, the algorithm
    #: promises that every activation that is (and will remain) a no-op
    #: returns the :data:`QUIESCENT` sentinel.  The event engine then
    #: skips the :meth:`is_quiescent` pre-check entirely — the activation
    #: itself is the quiescence test — and parks on the sentinel.  The
    #: extra activations this implies are no-ops by definition, so traces
    #: are unchanged (the sweep performs them anyway).
    reports_quiescence: bool = False

    #: Opt-out for the event engine's movement wakes: set to False when a
    #: movement event whose dirty points are all *occupied afterwards* (an
    #: expansion, or a particle added next to a parked one) can never end a
    #: parked particle's quiescence.  Algorithm DLE qualifies — a parked
    #: undecided particle waits on its own flags, and a parked decided one
    #: waits for an undecided neighbour to decide or leave; gaining a
    #: neighbour changes neither.  Unsound for algorithms that use
    #: handovers (the dirty point stays occupied but changes owner) or
    #: whose quiescence reads adjacent occupancy directly.
    occupancy_gain_wakes: bool = True

    @abstractmethod
    def setup(self, system: ParticleSystem) -> None:
        """Initialise particle memories from the initial configuration."""

    @abstractmethod
    def activate(self, particle: Particle, system: ParticleSystem) -> object:
        """Perform one atomic activation of ``particle``.

        The return value is an optional *visibility hint* for the
        event-driven engine:

        * exactly ``False`` declares that the activation changed nothing a
          neighbour can observe — no movement performed beyond what the
          system's dirty-neighborhood events already report, and no write
          to any memory a neighbour reads.  The engine then skips the
          conservative "wake all neighbours" step.
        * a list or tuple of :class:`Particle` objects declares
          *precisely* which particles observed a change (beyond what the
          movement events already report): the engine wakes exactly
          those.  An algorithm returning a wake list promises it covers
          every particle whose quiescence this activation can end.
        * the :data:`TERMINATED` sentinel declares "nothing visible
          changed and this particle just reached a final state" — the
          engines retire it on the spot (see
          :attr:`reports_termination`).
        * any other return value (including the implicit ``None``) keeps
          the conservative wake of the full pre-activation neighbourhood,
          so existing algorithms are unaffected.
        """

    @abstractmethod
    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        """Whether ``particle`` has reached a final state."""

    # -- optional hooks -----------------------------------------------------

    def on_round_end(self, round_index: int, system: ParticleSystem) -> None:
        """Called by the scheduler after each asynchronous round (optional)."""

    def has_terminated(self, system: ParticleSystem) -> bool:
        """Whether every particle has reached a final state."""
        return all(self.is_terminated(p, system) for p in system.particles())

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Whether activating ``particle`` right now would provably change
        nothing — the opt-in contract behind the event-driven engine.

        The :class:`~repro.amoebot.scheduler.EventDrivenScheduler` *parks* a
        particle that reports quiescence instead of activating it, and only
        re-wakes it when its visible neighbourhood changes: when an adjacent
        particle is activated and acts, or when a movement operation
        publishes a dirty-neighborhood event touching it.  An algorithm that
        overrides this method therefore promises, for every particle it
        declares quiescent, that

        1. activating the particle now would perform no movement and no
           observable memory write, and
        2. that remains true until a neighbouring particle acts or the
           occupancy of an adjacent point changes (locality: a parked
           particle's next activation may depend only on its own state and
           its visible neighbourhood).

        The conservative default returns ``False`` for every particle, which
        makes the event-driven engine behave exactly like the legacy sweep —
        unmodified algorithms stay correct and merely forgo the speedup.
        """
        return False

    def wakes_on_movement(self, particle: Particle,
                          system: ParticleSystem) -> bool:
        """Whether an occupancy change adjacent to a *parked* particle can
        end its quiescence (the second opt-in of the event-driven engine).

        The engine consults this only when a movement event touches a
        parked particle and no explicit wake (a neighbour's action) names
        it.  An algorithm may return ``False`` for particles whose
        quiescence provably depends on their own memory and their
        neighbours' memories alone — e.g. Algorithm DLE's undecided
        particles, which stay no-ops until their eligibility flags are
        written, regardless of who moves next to them.  Returning ``False``
        for a particle whose next activation could be enabled by an
        occupancy change alone breaks the engine contract.

        The conservative default returns ``True`` (every movement wakes).
        """
        return True

    def initially_active_ids(self, system: ParticleSystem):
        """Ids of the particles whose *first* activation may act, or None.

        Consulted once by the event-driven engine right after
        :meth:`setup`: an algorithm that can enumerate, from setup-time
        knowledge, every particle that is not quiescent at the start can
        return their ids here and the engine parks the rest immediately
        instead of examining the whole population in round one.  The
        returned set must contain every particle for which
        :meth:`is_quiescent` would return False before any activation.
        The default ``None`` starts everyone awake.
        """
        return None

    # -- checkpoint state protocol ------------------------------------------

    def snapshot_state(self, system: ParticleSystem) -> Dict[str, Any]:
        """Algorithm-private state as a JSON-ready document (optional).

        Everything an algorithm instance keeps *outside* particle
        memories — actionable sets, wait counts, round accumulators,
        private RNGs — must be returned here for the run to be
        checkpointable; particle memories themselves are captured by
        :meth:`ParticleSystem.snapshot_state`.  The default covers
        algorithms whose whole state lives in the particles.
        """
        return {}

    def restore_state(self, state: Dict[str, Any],
                      system: ParticleSystem) -> None:
        """Restore a :meth:`snapshot_state` document (optional).

        Called *instead of* :meth:`setup` when a run resumes: ``system``
        already holds the restored particle memories, and the scheduler
        continues from the checkpointed round.  Derived per-particle
        caches may be rebuilt here; they must reproduce exactly the
        values the uninterrupted run would hold at the same round.
        """


class StatusMixin:
    """Helpers shared by the leader-election algorithms in this package."""

    @staticmethod
    def status_of(particle: Particle) -> str:
        return particle.get(STATUS_KEY, STATUS_UNDECIDED)

    @staticmethod
    def set_status(particle: Particle, status: str) -> None:
        particle[STATUS_KEY] = status

    @staticmethod
    def leaders(system: ParticleSystem) -> list:
        """All particles currently holding leader status."""
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_LEADER]

    @staticmethod
    def followers(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_FOLLOWER]

    @staticmethod
    def undecided(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY, STATUS_UNDECIDED) == STATUS_UNDECIDED]
