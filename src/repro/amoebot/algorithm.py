"""The algorithm interface executed by the scheduler.

An amoebot algorithm is defined by three hooks:

* :meth:`AmoebotAlgorithm.setup` — initialise the memory of every particle
  from the initial configuration (the paper's "Initialization" blocks);
* :meth:`AmoebotAlgorithm.activate` — one atomic activation of one particle:
  read neighbour memories, compute, write memories, optionally perform a
  single movement operation;
* :meth:`AmoebotAlgorithm.is_terminated` — whether the particle has reached a
  final state (a state in which an activation does nothing).

Only information available to the particle may be used inside
``activate``: its own memory, the memories of neighbouring particles, which
adjacent points are occupied, and port translations.  Global information
(the full shape, particle ids, grid coordinates) must not influence
decisions; it may only be used for instrumentation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from .particle import Particle
from .system import ParticleSystem

__all__ = ["AmoebotAlgorithm", "StatusMixin", "STATUS_KEY",
           "STATUS_UNDECIDED", "STATUS_LEADER", "STATUS_FOLLOWER"]

#: Memory key conventionally used for the leader-election output variable.
STATUS_KEY = "status"
STATUS_UNDECIDED = "undecided"
STATUS_LEADER = "leader"
STATUS_FOLLOWER = "follower"


class AmoebotAlgorithm(ABC):
    """Base class for algorithms executed on a :class:`ParticleSystem`."""

    #: Human readable algorithm name (used in experiment reports).
    name: str = "amoebot-algorithm"

    @abstractmethod
    def setup(self, system: ParticleSystem) -> None:
        """Initialise particle memories from the initial configuration."""

    @abstractmethod
    def activate(self, particle: Particle, system: ParticleSystem) -> None:
        """Perform one atomic activation of ``particle``."""

    @abstractmethod
    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        """Whether ``particle`` has reached a final state."""

    # -- optional hooks -----------------------------------------------------

    def on_round_end(self, round_index: int, system: ParticleSystem) -> None:
        """Called by the scheduler after each asynchronous round (optional)."""

    def has_terminated(self, system: ParticleSystem) -> bool:
        """Whether every particle has reached a final state."""
        return all(self.is_terminated(p, system) for p in system.particles())


class StatusMixin:
    """Helpers shared by the leader-election algorithms in this package."""

    @staticmethod
    def status_of(particle: Particle) -> str:
        return particle.get(STATUS_KEY, STATUS_UNDECIDED)

    @staticmethod
    def set_status(particle: Particle, status: str) -> None:
        particle[STATUS_KEY] = status

    @staticmethod
    def leaders(system: ParticleSystem) -> list:
        """All particles currently holding leader status."""
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_LEADER]

    @staticmethod
    def followers(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY) == STATUS_FOLLOWER]

    @staticmethod
    def undecided(system: ParticleSystem) -> list:
        return [p for p in system.particles()
                if p.get(STATUS_KEY, STATUS_UNDECIDED) == STATUS_UNDECIDED]
