"""Adversarial activation-order policies for the strong scheduler.

The paper's scheduler is adversarial-but-fair: within every asynchronous
round the adversary chooses the order in which particles are activated.  The
basic policies (`round_robin`, `random`, `reversed`) are order-oblivious;
the factories below build *state-dependent* adversaries that inspect the
current configuration before every round and try to slow the election down:

* :func:`outside_in_order` — activates the particles closest to the leader
  point / centroid first, so the particles whose points are about to become
  erodable (those far out on the boundary) are reached as late as possible;
* :func:`inside_out_order` — the opposite, a friendly schedule;
* :func:`sticky_order` — keeps one fixed victim particle last in every
  round, the classical "one slow particle" adversary;
* :func:`alternating_order` — flips between forward and reversed id order,
  which breaks algorithms that accidentally rely on a fixed sweep direction.

All factories return a policy with the scheduler's expected signature
``(round_index, ids, rng) -> ids`` and always return a permutation of the
input ids, so fairness (every particle once per round) is preserved — these
are adversaries over ordering, not over enabling.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..grid.coords import Point, grid_distance
from .system import ParticleSystem

__all__ = [
    "outside_in_order",
    "inside_out_order",
    "sticky_order",
    "sticky_factory",
    "alternating_order",
    "alternating_factory",
    "ADVERSARY_FACTORIES",
]

OrderPolicy = Callable[[int, List[int], random.Random], List[int]]


def _reference_point(system: ParticleSystem) -> Point:
    """A deterministic reference point: the centroid-most occupied point."""
    points = sorted(system.occupied_points())
    mean_q = sum(p[0] for p in points) / len(points)
    mean_r = sum(p[1] for p in points) / len(points)
    return min(points, key=lambda p: (abs(p[0] - mean_q) + abs(p[1] - mean_r), p))


def outside_in_order(system: ParticleSystem) -> OrderPolicy:
    """Activate central particles first and peripheral particles last.

    Erosion-style algorithms make progress at the outer boundary, so
    delaying the peripheral particles within each round is the natural
    slow-down attempt for DLE and the erosion baseline.
    """

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        center = _reference_point(system)
        return sorted(
            ids,
            key=lambda pid: (grid_distance(system.get_particle(pid).head, center), pid),
        )

    policy.__name__ = "outside_in"
    return policy


def inside_out_order(system: ParticleSystem) -> OrderPolicy:
    """Activate peripheral particles first (the friendly counterpart)."""

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        center = _reference_point(system)
        return sorted(
            ids,
            key=lambda pid: (-grid_distance(system.get_particle(pid).head, center), pid),
        )

    policy.__name__ = "inside_out"
    return policy


def sticky_order(victim_index: Optional[int] = None, *,
                 seed: Optional[int] = None) -> OrderPolicy:
    """Always activate one chosen victim particle last in every round.

    ``victim_index`` pins the victim to a position in the round's id
    list.  When it is None the victim slot is drawn once — from
    ``random.Random(seed)`` when ``seed`` is given, otherwise from the
    scheduler rng on the first round — and then held for the rest of the
    run, so the "one slow particle" stays the *same* particle instead of
    silently defaulting to index 0.
    """
    slot: List[int] = []

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        if victim_index is not None:
            index = victim_index
        else:
            if not slot:
                picker = rng if seed is None else random.Random(seed)
                slot.append(picker.randrange(len(ids)))
            index = slot[0]
        victim = ids[index % len(ids)]
        rest = [pid for pid in ids if pid != victim]
        return rest + [victim]

    policy.__name__ = "sticky"
    return policy


def alternating_order() -> OrderPolicy:
    """Alternate between forward and reversed id order every round."""

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        return list(ids) if round_index % 2 == 0 else list(reversed(ids))

    policy.__name__ = "alternating"
    return policy


def sticky_factory(system: ParticleSystem,
                   victim_index: Optional[int] = None,
                   seed: Optional[int] = None) -> OrderPolicy:
    """Build a sticky adversary for ``system`` with a selectable victim.

    Pass ``victim_index`` to pin the victim to a position in the id
    list, or ``seed`` to draw it reproducibly.  With neither, the draw
    is seeded by the system's population, so equal-sized systems
    victimise the same slot and the choice is deterministic without
    being hard-wired to particle 0.
    """
    if victim_index is None and seed is None:
        seed = len(system)
    return sticky_order(victim_index, seed=seed)


def alternating_factory(system: ParticleSystem) -> OrderPolicy:
    """Build the alternating adversary (state-oblivious: ``system`` is
    accepted only to match the factory signature)."""
    return alternating_order()


#: Named adversary factories, ``factory(system) -> order policy``; the
#: scheduler-ablation benchmark and tests iterate this table.  Each value
#: is a documented function (see its docstring for the adversary's
#: strategy); ``sticky_factory`` additionally takes ``victim_index`` /
#: ``seed`` keywords when called directly.
ADVERSARY_FACTORIES = {
    "outside_in": outside_in_order,
    "inside_out": inside_out_order,
    "sticky": sticky_factory,
    "alternating": alternating_factory,
}
