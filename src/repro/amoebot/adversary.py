"""Adversarial activation-order policies for the strong scheduler.

The paper's scheduler is adversarial-but-fair: within every asynchronous
round the adversary chooses the order in which particles are activated.  The
basic policies (`round_robin`, `random`, `reversed`) are order-oblivious;
the factories below build *state-dependent* adversaries that inspect the
current configuration before every round and try to slow the election down:

* :func:`outside_in_order` — activates the particles closest to the leader
  point / centroid first, so the particles whose points are about to become
  erodable (those far out on the boundary) are reached as late as possible;
* :func:`inside_out_order` — the opposite, a friendly schedule;
* :func:`sticky_order` — keeps one fixed victim particle last in every
  round, the classical "one slow particle" adversary;
* :func:`alternating_order` — flips between forward and reversed id order,
  which breaks algorithms that accidentally rely on a fixed sweep direction.

All factories return a policy with the scheduler's expected signature
``(round_index, ids, rng) -> ids`` and always return a permutation of the
input ids, so fairness (every particle once per round) is preserved — these
are adversaries over ordering, not over enabling.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from ..grid.coords import Point, grid_distance
from .system import ParticleSystem

__all__ = [
    "outside_in_order",
    "inside_out_order",
    "sticky_order",
    "alternating_order",
    "ADVERSARY_FACTORIES",
]

OrderPolicy = Callable[[int, List[int], random.Random], List[int]]


def _reference_point(system: ParticleSystem) -> Point:
    """A deterministic reference point: the centroid-most occupied point."""
    points = sorted(system.occupied_points())
    mean_q = sum(p[0] for p in points) / len(points)
    mean_r = sum(p[1] for p in points) / len(points)
    return min(points, key=lambda p: (abs(p[0] - mean_q) + abs(p[1] - mean_r), p))


def outside_in_order(system: ParticleSystem) -> OrderPolicy:
    """Activate central particles first and peripheral particles last.

    Erosion-style algorithms make progress at the outer boundary, so
    delaying the peripheral particles within each round is the natural
    slow-down attempt for DLE and the erosion baseline.
    """

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        center = _reference_point(system)
        return sorted(
            ids,
            key=lambda pid: (grid_distance(system.get_particle(pid).head, center), pid),
        )

    policy.__name__ = "outside_in"
    return policy


def inside_out_order(system: ParticleSystem) -> OrderPolicy:
    """Activate peripheral particles first (the friendly counterpart)."""

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        center = _reference_point(system)
        return sorted(
            ids,
            key=lambda pid: (-grid_distance(system.get_particle(pid).head, center), pid),
        )

    policy.__name__ = "inside_out"
    return policy


def sticky_order(victim_index: int = 0) -> OrderPolicy:
    """Always activate one chosen particle last in every round."""

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        victim = ids[victim_index % len(ids)]
        rest = [pid for pid in ids if pid != victim]
        return rest + [victim]

    policy.__name__ = "sticky"
    return policy


def alternating_order() -> OrderPolicy:
    """Alternate between forward and reversed id order every round."""

    def policy(round_index: int, ids: List[int], rng: random.Random) -> List[int]:
        return list(ids) if round_index % 2 == 0 else list(reversed(ids))

    policy.__name__ = "alternating"
    return policy


#: Named adversary factories taking the particle system and returning a
#: scheduler order policy.  Used by the scheduler-ablation benchmark.
ADVERSARY_FACTORIES = {
    "outside_in": outside_in_order,
    "inside_out": inside_out_order,
    "sticky": lambda system: sticky_order(0),
    "alternating": lambda system: alternating_order(),
}
