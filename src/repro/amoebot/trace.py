"""Lightweight execution tracing for experiments and debugging.

A :class:`Trace` collects per-round observations (dictionaries) during an
execution.  Algorithms and experiment drivers may attach one; when no trace
is attached, recording is a no-op so the hot path stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .system import ParticleSystem

__all__ = ["Trace", "ROUND_OBSERVERS", "observe_round"]


@dataclass
class Trace:
    """A sequence of per-round observation records."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    enabled: bool = True

    def record(self, **fields: Any) -> None:
        """Append one observation record."""
        if self.enabled:
            self.records.append(dict(fields))

    def __len__(self) -> int:
        return len(self.records)

    def column(self, key: str) -> List[Any]:
        """Extract one column across all records (missing values skipped)."""
        return [r[key] for r in self.records if key in r]

    def last(self) -> Optional[Dict[str, Any]]:
        return self.records[-1] if self.records else None


#: Registry of reusable per-round observers; each maps a ParticleSystem to a
#: dictionary of observed values.
ROUND_OBSERVERS: Dict[str, Callable[[ParticleSystem], Dict[str, Any]]] = {
    "occupancy": lambda system: {
        "n_points": len(system.occupied_points()),
        "expanded": sum(1 for p in system.particles() if p.is_expanded),
    },
    "connectivity": lambda system: {
        "connected": system.is_connected(),
    },
}


def observe_round(system: ParticleSystem,
                  observers: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the named observers (default: all) and merge their outputs."""
    names = observers if observers is not None else sorted(ROUND_OBSERVERS)
    result: Dict[str, Any] = {}
    for name in names:
        result.update(ROUND_OBSERVERS[name](system))
    return result
