"""Structured JSONL event log: the narrative record of a sweep.

Where the metrics registry answers *how many*, the event log answers
*what happened when*: one JSON object per line, each carrying a wall-clock
timestamp (``ts``, ``time.time()``), a monotonic stamp (``mono``,
``time.monotonic()`` read under the writer lock, so the ``mono`` column of
a log is non-decreasing even with concurrent emitters), the event name,
and whatever context the log was opened with (sweep/run/worker ids).

:meth:`EventLog.span` wraps a block in ``<event>.begin`` / ``<event>.end``
lines, the end line carrying the monotonic duration (``dur``) and whether
the block raised (``ok``) — robust to wall-clock steps because the
duration comes from the monotonic clock.

Like the registry, the *current* log defaults to a shared no-op
(:data:`NULL_EVENT_LOG`); ``repro sweep --telemetry DIR`` installs a real
one via :func:`use_event_log` and every instrumented layer picks it up
through :func:`get_event_log` / the module-level :func:`emit`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "NULL_EVENT_LOG",
    "EventLog",
    "NullEventLog",
    "emit",
    "get_event_log",
    "set_event_log",
    "use_event_log",
]

PathLike = Union[str, Path]


class EventLog:
    """Append-only JSONL event stream with monotonic ordering."""

    enabled = True

    def __init__(self, path: PathLike,
                 context: Optional[Dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.context = dict(context or {})
        self._lock = threading.Lock()
        self._handle = self.path.open("a", encoding="utf-8")
        self.lines = 0

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line (flushed, so a killed run keeps its log)."""
        with self._lock:
            if self._handle.closed:
                return
            entry: Dict[str, Any] = {
                "ts": round(time.time(), 6),
                # Read under the lock, immediately before the write: the
                # mono column is non-decreasing line over line.
                "mono": round(time.monotonic(), 6),
                "event": event,
            }
            entry.update(self.context)
            entry.update(fields)
            self._handle.write(json.dumps(entry, default=str) + "\n")
            self._handle.flush()
            self.lines += 1

    @contextmanager
    def span(self, event: str, **fields: Any) -> Iterator[None]:
        """``<event>.begin`` … ``<event>.end`` around a block, the end line
        carrying the monotonic duration and whether the block raised."""
        started = time.monotonic()
        self.emit(event + ".begin", **fields)
        try:
            yield
        except BaseException:
            self.emit(event + ".end", ok=False,
                      dur=round(time.monotonic() - started, 6), **fields)
            raise
        self.emit(event + ".end", ok=True,
                  dur=round(time.monotonic() - started, 6), **fields)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NullEventLog:
    """The default, disabled event log: emits nowhere, spans for free."""

    enabled = False
    lines = 0

    def emit(self, event: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, event: str, **fields: Any) -> Iterator[None]:
        yield

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


#: The process-wide default event log (disabled).
NULL_EVENT_LOG = NullEventLog()

_current: Any = NULL_EVENT_LOG


def get_event_log() -> Any:
    """The currently installed event log (the no-op one by default)."""
    return _current


def set_event_log(log: Optional[Any]) -> Any:
    """Install ``log`` (``None`` restores the no-op default); returns the
    previously installed log."""
    global _current
    previous = _current
    _current = log if log is not None else NULL_EVENT_LOG
    return previous


@contextmanager
def use_event_log(log: Optional[Any]) -> Iterator[Any]:
    """Scoped install: the log is current inside the ``with`` block."""
    previous = set_event_log(log)
    try:
        yield _current
    finally:
        set_event_log(previous)


def emit(event: str, **fields: Any) -> None:
    """Emit through the current event log (no-op when none is installed)."""
    _current.emit(event, **fields)
