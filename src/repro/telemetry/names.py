"""The declared instrument-name registry.

The metrics registry creates counters/gauges/histograms on first use, so
a typo at a recording site silently forks a metric into two series and
every consumer downstream — the ``--summary-json`` metrics block, the CI
schema checks, ``repro status`` — quietly under-counts.  This module is
the single declaration point: every instrument name recorded anywhere in
``repro`` is listed here, and the ``T302`` rule of :mod:`repro.lint`
cross-checks recording sites against it statically.

Adding an instrument is a two-line change: record through
``counter("x.y")`` at the site, add ``"x.y"`` here.  Dynamically
composed names (``f"engine.{engine}.rounds"``) are covered by the
prefix/suffix tables below.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

__all__ = [
    "KNOWN_METRICS",
    "KNOWN_METRIC_PREFIXES",
    "KNOWN_METRIC_SUFFIXES",
    "is_known_metric",
    "matches_known_fragment",
]

#: Every statically-named instrument the package records.
KNOWN_METRICS: FrozenSet[str] = frozenset({
    # result cache (orchestrator/cache.py)
    "cache.hits", "cache.misses", "cache.puts", "cache.races",
    # run ledger (orchestrator/store.py)
    "ledger.appends", "ledger.gave_ups", "ledger.resume_skips",
    # filesystem task queue (orchestrator/queue.py)
    "queue.claims", "queue.completes", "queue.enqueued",
    "queue.heartbeats", "queue.reclaims", "queue.retries",
    # incremental shape maintenance (grid/shape.py)
    "shape.delta_replays", "shape.deltas_applied", "shape.face_floods",
    "shape.rebuilds", "shape.refloods",
    # sweep outcome counters (orchestrator/pool.py); the per-source
    # counter is "sweep." + source with "-" mapped to "_"
    "sweep.executed", "sweep.cached", "sweep.resumed", "sweep.gave_up",
    "sweep.failed",
    # checkpoint lifecycle (state.py)
    "checkpoint.saves", "checkpoint.loads", "checkpoint.discards",
    # engine run totals (amoebot/scheduler.py); the per-engine counters
    # are "engine.<engine>." + suffix
    "engine.sweep.runs", "engine.sweep.rounds", "engine.sweep.activations",
    "engine.sweep.skipped", "engine.sweep.moves",
    "engine.event.runs", "engine.event.rounds", "engine.event.activations",
    "engine.event.skipped", "engine.event.moves",
    "engine.event.parks", "engine.event.wakes",
    # fault-injection totals (amoebot/faults.py via amoebot/scheduler.py);
    # published once per run as "fault." + injector counter name
    "fault.crashes", "fault.revives", "fault.shape_adds",
    "fault.shape_removes", "fault.view_refreshes",
    # sweep dashboard renderer (analysis/dashboard.py)
    "dashboard.builds", "dashboard.watch_ticks",
    # streaming ledger analytics (analysis/stream.py); recorded once per
    # fold/comparison, never per ledger line
    "report.stream_entries", "report.cohort_cells",
})

#: Literal *prefixes* of dynamically-composed names (``prefix + tail``).
KNOWN_METRIC_PREFIXES: Tuple[str, ...] = (
    "engine.sweep.", "engine.event.", "engine.", "sweep.", "fault.",
)

#: Literal *suffixes* of dynamically-composed names (``head + suffix``).
KNOWN_METRIC_SUFFIXES: FrozenSet[str] = frozenset({
    "runs", "rounds", "activations", "skipped", "moves",
})


def is_known_metric(name: str) -> bool:
    """Is ``name`` a declared instrument name (exact or via a declared
    dynamic prefix)?"""
    return name in KNOWN_METRICS or name.startswith(KNOWN_METRIC_PREFIXES)


def matches_known_fragment(fragment: str, exact: bool = False) -> bool:
    """Used by the lint rule: does a literal fragment of a (possibly
    dynamically composed) metric-name expression match the registry?

    With ``exact=True`` the fragment is a complete name and must satisfy
    :func:`is_known_metric`; otherwise it may also be a declared prefix
    or suffix of a composed name.
    """
    if exact:
        return is_known_metric(fragment)
    return (is_known_metric(fragment)
            or fragment in KNOWN_METRIC_SUFFIXES
            or any(fragment == prefix or prefix.startswith(fragment)
                   for prefix in KNOWN_METRIC_PREFIXES))
