"""Reading telemetry artefacts back from disk.

``repro sweep --telemetry DIR`` leaves two files behind: ``events.jsonl``
(the structured event log) and ``metrics.json`` (the final registry
snapshot plus the distilled ``metrics`` block ``--summary-json`` embeds).
This module is the consumer side: the canonical filenames, a tolerant
reader for the metrics snapshot, and a streaming reader for the event
log — shared by the sweep dashboard (:mod:`repro.analysis.dashboard`)
and any external tooling that wants the same view.

Readers are deliberately forgiving: a missing or half-written file (the
sweep may still be running) answers ``None`` / nothing rather than
raising, because a live dashboard must keep rendering through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "EVENTS_FILENAME",
    "METRICS_FILENAME",
    "METRICS_KIND",
    "iter_events",
    "read_metrics_file",
]

PathLike = Union[str, Path]

#: Filenames ``repro sweep --telemetry DIR`` writes into ``DIR``.
METRICS_FILENAME = "metrics.json"
EVENTS_FILENAME = "events.jsonl"

#: The ``kind`` tag of the metrics snapshot document.
METRICS_KIND = "sweep-metrics"


def read_metrics_file(path: PathLike) -> Optional[Dict[str, Any]]:
    """Parse a ``metrics.json`` snapshot; ``None`` if missing or invalid.

    ``path`` may be the file itself or the telemetry directory holding
    it.  Only documents tagged ``kind == "sweep-metrics"`` are accepted,
    so a stray JSON file can never be mistaken for telemetry.
    """
    target = Path(path)
    if target.is_dir():
        target = target / METRICS_FILENAME
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("kind") != METRICS_KIND:
        return None
    return data


def iter_events(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Stream the event objects of an ``events.jsonl`` log, one line at a
    time (O(1) memory), skipping blank or torn lines.

    ``path`` may be the file itself or the telemetry directory.
    """
    target = Path(path)
    if target.is_dir():
        target = target / EVENTS_FILENAME
    try:
        handle = open(target, "rb")
    except OSError:
        return
    with handle:
        for line in handle:
            if not line.endswith(b"\n"):
                return  # torn tail: the writer is mid-append
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event
