"""repro.telemetry — metrics, structured events and logging in one place.

Three small, dependency-free facilities every other layer records through:

* :mod:`~repro.telemetry.registry` — a process-wide **metrics registry**
  (counters, gauges, fixed-bucket histograms).  The default registry is a
  shared no-op, so instrumentation costs one empty call when telemetry is
  off; ``repro sweep`` installs a real one around the work and reads a
  JSON-ready ``snapshot()`` back.
* :mod:`~repro.telemetry.events` — a structured **JSONL event log** with
  wall-clock and monotonic timestamps and ``span()`` begin/end pairs;
  ``repro sweep --telemetry DIR`` writes it next to the ledger.
* :mod:`~repro.telemetry.logconfig` — the single
  :func:`configure_logging` behind every CLI front-end's named
  ``repro.*`` logger and the global ``--log-level`` flag.

The registry and the event log share one idiom: a module-global *current*
instance, ``get_…()`` to read it, ``use_…()`` to install one for a scope.
Nothing in this package imports the rest of ``repro``, so any module —
the grid geometry included — may instrument itself without import cycles.
"""

from .events import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    emit,
    get_event_log,
    set_event_log,
    use_event_log,
)
from .logconfig import LOG_LEVELS, configure_logging, get_logger
from .names import (
    KNOWN_METRIC_PREFIXES,
    KNOWN_METRIC_SUFFIXES,
    KNOWN_METRICS,
    is_known_metric,
)
from .snapshots import (
    EVENTS_FILENAME,
    METRICS_FILENAME,
    METRICS_KIND,
    iter_events,
    read_metrics_file,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    quantile,
    set_registry,
    summarize_ages,
    use_registry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EVENTS_FILENAME",
    "KNOWN_METRICS",
    "KNOWN_METRIC_PREFIXES",
    "KNOWN_METRIC_SUFFIXES",
    "LOG_LEVELS",
    "METRICS_FILENAME",
    "METRICS_KIND",
    "NULL_EVENT_LOG",
    "NULL_REGISTRY",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullEventLog",
    "NullRegistry",
    "configure_logging",
    "counter",
    "emit",
    "gauge",
    "get_event_log",
    "get_logger",
    "get_registry",
    "histogram",
    "is_known_metric",
    "iter_events",
    "quantile",
    "read_metrics_file",
    "set_event_log",
    "set_registry",
    "summarize_ages",
    "use_event_log",
    "use_registry",
]
