"""One logging configuration for every ``repro`` front-end.

Before this module the CLI entry points each printed their own status
lines to ``sys.stderr``; now they share a ``repro`` logger hierarchy
(``repro.sweep``, ``repro.worker``, ``repro.serve``, ``repro.status``,
…) configured once by :func:`configure_logging`, which the global
``--log-level`` CLI flag threads through.

The handler resolves ``sys.stderr`` **at emit time** rather than binding
the stream at configuration time: pytest's capture machinery (and any
other stderr redirection) swaps ``sys.stderr`` after import, and a bound
stream would silently write past it.  The message format stays bare
(``%(message)s``) so the CLI's output is unchanged for users — levels and
logger names are plumbing, not UI.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Tuple

__all__ = ["LOG_LEVELS", "configure_logging", "get_logger"]

#: The ``--log-level`` choices, least to most severe.
LOG_LEVELS: Tuple[str, ...] = ("debug", "info", "warning", "error")


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is when the record is emitted."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - stderr itself is broken
            self.handleError(record)


def configure_logging(level: str = "info") -> logging.Logger:
    """Configure (idempotently) and return the root ``repro`` logger.

    Repeated calls update the level without stacking handlers, so tests
    and long-lived processes can reconfigure freely.
    """
    name = str(level).lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; known: {list(LOG_LEVELS)}")
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, name.upper()))
    root.propagate = False
    if not any(isinstance(handler, _DynamicStderrHandler)
               for handler in root.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
    return root


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    return logging.getLogger(f"repro.{name}" if name else "repro")
