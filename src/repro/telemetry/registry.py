"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Every layer of the harness — engines, incremental geometry, the result
cache, the ledger, both distributed transports — records what it does
through the *current* registry, obtained via :func:`get_registry` (or the
module-level :func:`counter` / :func:`gauge` / :func:`histogram`
conveniences).  By default the current registry is the shared
:data:`NULL_REGISTRY`, whose instruments are a single no-op object, so an
uninstrumented run pays one attribute lookup and one empty call per
recording site — hot paths stay hot.  ``repro sweep`` (and tests) install
a real :class:`MetricsRegistry` around the work with
:func:`use_registry`, then read everything back with ``snapshot()``.

Design rules the instrumentation sites follow:

* record at **run/operation granularity**, never per activation — the
  engines count rounds/activations locally and publish once per run;
* instrument *names* are flat dotted strings (``"engine.event.rounds"``,
  ``"cache.hits"``) so a snapshot is one JSON-ready dictionary;
* histograms have **fixed bucket boundaries** chosen at creation
  (:data:`DEFAULT_BUCKETS` suits second-scale durations), so merging
  snapshots across runs never requires re-bucketing.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "quantile",
    "set_registry",
    "summarize_ages",
    "use_registry",
]

#: Default histogram bucket upper bounds (seconds-scale durations).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values``, linearly interpolated.

    Exact (sorts the values) — meant for small populations like the live
    lease set, not for streaming data; use a :class:`Histogram` there.
    """
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    q = min(1.0, max(0.0, float(q)))
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def summarize_ages(ages: Sequence[float]) -> Dict[str, Any]:
    """The percentile summary ``TaskBoard.stats()`` / ``repro status``
    report for a set of lease ages (one shared schema)."""
    return {
        "count": len(ages),
        "p50": round(quantile(ages, 0.5), 3),
        "p90": round(quantile(ages, 0.9), 3),
        "max": round(max(ages), 3) if ages else 0.0,
    }


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (queue depths, live workers)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram of observations.

    ``buckets`` are the inclusive upper bounds; an implicit overflow
    bucket catches everything larger.  An observation equal to a boundary
    lands in that boundary's bucket (``value <= bound`` semantics).
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile, linearly interpolated within the
        bucket the quantile falls in (observations are assumed uniform
        across a bucket, the usual fixed-bucket estimator).

        The first bucket interpolates up from the observed minimum, the
        overflow bucket answers with the observed maximum, and every
        answer is clamped to ``[min, max]`` so an almost-empty wide
        bucket can never report a value outside what was observed.
        """
        with self._lock:
            if self.count == 0 or self.min is None or self.max is None:
                return 0.0
            target = min(1.0, max(0.0, float(q))) * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                below = cumulative
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    if index >= len(self.buckets):
                        return float(self.max)  # overflow bucket
                    upper = self.buckets[index]
                    lower = self.buckets[index - 1] if index else self.min
                    lower = min(lower, upper)
                    fraction = (target - below) / bucket_count
                    value = lower + (upper - lower) * fraction
                    return min(float(self.max), max(float(self.min), value))
            return float(self.max)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets: List[List[Any]] = [
                [bound, count]
                for bound, count in zip(self.buckets, self._counts)]
            buckets.append([None, self._counts[-1]])  # overflow bucket
            return {
                "count": self.count,
                "sum": round(self.total, 6),
                "min": self.min,
                "max": self.max,
                "buckets": buckets,
            }


class MetricsRegistry:
    """A live registry: named instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, buckets=buckets))
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dictionary of everything recorded so far."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.snapshot()
                          for name, h in self._histograms.items()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


class _NullInstrument:
    """The shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default, disabled registry: every instrument is one shared
    no-op object, so recording sites cost one call when telemetry is off."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-wide default registry (telemetry off).
NULL_REGISTRY = NullRegistry()

_current: Any = NULL_REGISTRY


def get_registry() -> Any:
    """The currently installed registry (the no-op one by default)."""
    return _current


def set_registry(registry: Optional[Any]) -> Any:
    """Install ``registry`` (``None`` restores the no-op default);
    returns the previously installed registry."""
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[Any]) -> Iterator[Any]:
    """Scoped install: the registry is current inside the ``with`` block."""
    previous = set_registry(registry)
    try:
        yield _current
    finally:
        set_registry(previous)


def counter(name: str) -> Any:
    """``get_registry().counter(name)`` — the common recording idiom."""
    return _current.counter(name)


def gauge(name: str) -> Any:
    return _current.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Any:
    return _current.histogram(name, buckets=buckets)
