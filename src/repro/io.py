"""JSON serialisation of shapes, configurations and experiment records.

A reproduction is only useful if its inputs and outputs can be stored and
re-loaded: this module provides a small, dependency-free JSON round-trip for

* :class:`~repro.grid.shape.Shape` — the initial workloads,
* :class:`~repro.amoebot.system.ParticleSystem` — full configurations
  (positions, expansion state, orientations and particle memories),
* :class:`~repro.analysis.experiments.ExperimentRecord` lists — the raw data
  behind every table and figure in EXPERIMENTS.md.

Only JSON-representable values may live in particle memories when a system
is serialised (the built-in algorithms use lists, booleans and strings
only).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from .amoebot.system import ParticleSystem
from .analysis.experiments import ExperimentRecord
from .grid.metrics import ShapeMetrics
from .grid.shape import Shape

__all__ = [
    "shape_to_dict",
    "shape_from_dict",
    "save_shape",
    "load_shape",
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
    "records_to_dicts",
    "records_from_dicts",
    "save_records",
    "load_records",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------

def shape_to_dict(shape: Shape) -> Dict[str, Any]:
    """A JSON-ready dictionary describing a shape."""
    return {"kind": "shape", "points": [list(p) for p in sorted(shape.points)]}


def shape_from_dict(data: Dict[str, Any]) -> Shape:
    """Rebuild a shape from :func:`shape_to_dict` output."""
    if data.get("kind") != "shape":
        raise ValueError("not a serialised shape")
    return Shape(tuple(point) for point in data["points"])


def save_shape(shape: Shape, path: PathLike) -> None:
    """Write a shape to a JSON file."""
    Path(path).write_text(json.dumps(shape_to_dict(shape), indent=2))


def load_shape(path: PathLike) -> Shape:
    """Read a shape from a JSON file."""
    return shape_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Particle systems
# ---------------------------------------------------------------------------

def system_to_dict(system: ParticleSystem) -> Dict[str, Any]:
    """A JSON-ready dictionary describing a full configuration."""
    particles: List[Dict[str, Any]] = []
    for particle in system.particles():
        particles.append({
            "head": list(particle.head),
            "tail": list(particle.tail),
            "orientation": particle.orientation,
            "memory": particle.memory,
        })
    return {"kind": "particle-system", "particles": particles}


def system_from_dict(data: Dict[str, Any]) -> ParticleSystem:
    """Rebuild a particle system from :func:`system_to_dict` output."""
    if data.get("kind") != "particle-system":
        raise ValueError("not a serialised particle system")
    system = ParticleSystem()
    expansions: List[tuple] = []
    for entry in data["particles"]:
        head = tuple(entry["head"])
        tail = tuple(entry["tail"])
        particle = system.add_particle(tail, orientation=int(entry["orientation"]))
        particle.memory = dict(entry.get("memory", {}))
        if head != tail:
            expansions.append((particle, head))
    # Expand after all tails are placed so occupancy checks see the full set.
    for particle, head in expansions:
        system.expand(particle, head)
    return system


def save_system(system: ParticleSystem, path: PathLike) -> None:
    """Write a configuration to a JSON file."""
    Path(path).write_text(json.dumps(system_to_dict(system), indent=2))


def load_system(path: PathLike) -> ParticleSystem:
    """Read a configuration from a JSON file."""
    return system_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Experiment records
# ---------------------------------------------------------------------------

def records_to_dicts(records: Sequence[ExperimentRecord]) -> List[Dict[str, Any]]:
    """JSON-ready dictionaries for a list of experiment records."""
    result = []
    for record in records:
        result.append({
            "algorithm": record.algorithm,
            "family": record.family,
            "size": record.size,
            "seed": record.seed,
            "rounds": record.rounds,
            "succeeded": record.succeeded,
            "metrics": record.metrics.as_dict(),
            "details": record.details,
        })
    return result


def records_from_dicts(data: Iterable[Dict[str, Any]]) -> List[ExperimentRecord]:
    """Rebuild experiment records from :func:`records_to_dicts` output."""
    records = []
    for entry in data:
        metrics = entry["metrics"]
        records.append(ExperimentRecord(
            algorithm=entry["algorithm"],
            family=entry["family"],
            size=int(entry["size"]),
            seed=int(entry["seed"]),
            rounds=int(entry["rounds"]),
            succeeded=bool(entry["succeeded"]),
            metrics=ShapeMetrics(
                n=metrics["n"],
                n_area=metrics["n_A"],
                diameter=metrics["D"],
                area_diameter=metrics["D_A"],
                grid_diam=metrics["D_G"],
                l_out=metrics["L_out"],
                l_max=metrics["L_max"],
                num_holes=metrics["holes"],
            ),
            details=dict(entry.get("details", {})),
        ))
    return records


def save_records(records: Sequence[ExperimentRecord], path: PathLike) -> None:
    """Write experiment records to a JSON file."""
    Path(path).write_text(json.dumps(records_to_dicts(records), indent=2))


def load_records(path: PathLike) -> List[ExperimentRecord]:
    """Read experiment records from a JSON file."""
    return records_from_dicts(json.loads(Path(path).read_text()))
