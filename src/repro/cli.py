"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the experiment harness without writing any Python:

* ``python -m repro sweep --algorithms dle obd --sizes 2 4 6 --jobs 4``
  — run an arbitrary experiment grid through the orchestrator
  (parallel workers, ``--cache-dir`` result reuse, ``--resume``,
  ``--engine`` activation-engine selection, ``--transport queue`` /
  ``--transport tcp`` to distribute over worker daemons,
  ``--checkpoint-dir`` / ``--checkpoint-every`` preemption-safe runs)
* ``python -m repro run --algorithm dle --checkpoint-dir ckpts`` — one
  checkpointable run through the :class:`repro.session.Session` API
  (``--resume-from PATH`` continues an interrupted run's checkpoint file)
* ``python -m repro serve --port 7643``        — TCP sweep coordinator for
  ``--transport tcp`` sweeps across machines with no shared filesystem
* ``python -m repro worker runs/queue``        — pull-based worker daemon
  serving ``--transport queue`` sweeps from any machine sharing the
  filesystem; ``--connect HOST:PORT`` serves a TCP coordinator instead
* ``python -m repro status --coordinator HOST:PORT``  — live board depth,
  per-worker lease ages and rolling throughput for a running distributed
  sweep (``--queue-dir DIR`` inspects a filesystem queue instead;
  ``--watch N`` re-polls, ``--json`` emits the raw snapshot — one NDJSON
  document per tick under ``--watch``, so tooling can consume the feed)
* ``python -m repro dashboard --ledger PATH``  — render a deterministic,
  self-contained HTML (and markdown) sweep dashboard from a run ledger,
  folding in ``--telemetry DIR`` metrics, the live ``--coordinator`` /
  ``--queue-dir`` status feed, robustness survival cells and
  ``--compare OTHER_LEDGER`` cohort deltas; ``--watch N`` republishes
  the page atomically on an interval (a live sweep monitor)
* ``python -m repro queue-gc runs/queue --ttl 86400`` — prune finished
  results, dead worker registrations and stale leases from a long-lived
  queue directory
* ``python -m repro bench --quick``               — fixed micro-benchmark grid,
  emits ``BENCH_<rev>.json`` and optionally gates against a baseline
* ``python -m repro profile --engine event``  — cProfile one driver run and
  report the geometry / activation / algorithm phase breakdown
* ``python -m repro table1``                  — reproduce the Table 1 comparison
* ``python -m repro scaling dle --families hexagon holey`` — scaling figures
* ``python -m repro elect --family holey --size 4``        — one election run
* ``python -m repro metrics --family annulus --size 5``    — shape parameters
* ``python -m repro families``                — list the shape families

Every record-producing command accepts ``--json PATH`` to additionally dump
the raw records (via :mod:`repro.io`) so results can be post-processed
elsewhere, and every sweep-capable command (``sweep``, ``table1``,
``scaling``) accepts ``--jobs N`` to spread runs over worker processes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .amoebot.system import ParticleSystem
from .analysis.experiments import (
    ALGORITHMS,
    TABLE1_FAMILIES,
    run_scaling_experiment,
    run_table1_experiment,
)
from .analysis.tables import (
    format_records,
    format_scaling_series,
    format_table,
    format_table1,
)
from .core.full import elect_leader, elect_leader_known_boundary
from .grid.generators import SHAPE_FAMILIES, make_shape
from .grid.metrics import compute_metrics
from .io import save_records
from .orchestrator import (
    DEFAULT_JOBS,
    DEFAULT_MAX_ATTEMPTS,
    ENGINES,
    SCHEDULER_ORDERS,
    TRANSPORT_HELP,
    TRANSPORTS,
    SweepSpec,
    format_sweep_scaling,
    format_sweep_summary,
    run_sweep,
)
from .orchestrator.net import DEFAULT_PORT
from .telemetry import LOG_LEVELS, configure_logging, counter, get_logger
from .viz.ascii_art import render_system

__all__ = ["main", "build_parser"]

#: Default parameter against which each algorithm's scaling is reported.
DEFAULT_PARAMETER = {
    "dle": "D_A",
    "dle+collect": "D_G",
    "collect": "D_G",
    "obd": "L_out",
    "obd+dle+collect": "L_out",
    "erosion": "n",
    "randomized": "L_out",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Efficient Deterministic "
                    "Leader Election for Programmable Matter' (PODC 2021).",
    )
    parser.add_argument("--log-level", default="info",
                        choices=list(LOG_LEVELS),
                        help="verbosity of the repro.* loggers every "
                             "command reports through (before the "
                             "subcommand; default info)")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid through the parallel orchestrator")
    sweep.add_argument("--algorithms", nargs="+", default=["dle"],
                       choices=sorted(ALGORITHMS))
    sweep.add_argument("--families", nargs="+", default=["hexagon"],
                       choices=sorted(SHAPE_FAMILIES))
    sweep.add_argument("--sizes", type=int, nargs="+", default=[2, 3, 4])
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep.add_argument("--scheduler", default="random",
                       choices=sorted(SCHEDULER_ORDERS),
                       help="activation order the adversary uses")
    sweep.add_argument("--engine", default="sweep", choices=sorted(ENGINES),
                       help="activation engine: 'sweep' activates every "
                            "particle each round, 'event' parks quiescent "
                            "particles (identical traces, less wall clock)")
    sweep.add_argument("--faults", nargs="+", default=[""], metavar="PLAN",
                       help="fault-plan axis: each PLAN is a spec string "
                            "like 'crash:rate=0.05,rounds=30;delay:rate=0.5"
                            ",max=3;shape:rate=0.01;seed=7' ('' = no "
                            "faults); the sweep runs the whole grid once "
                            "per plan — the input of 'repro report "
                            "--robustness'")
    sweep.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--transport", default=None, choices=list(TRANSPORTS),
                       help="where configs execute: " + "; ".join(
                           f"'{name}' = {TRANSPORT_HELP[name]}"
                           for name in TRANSPORTS))
    sweep.add_argument("--queue-dir", metavar="PATH", default=None,
                       help="shared task-queue directory "
                            "(required by --transport queue)")
    sweep.add_argument("--coordinator", metavar="HOST:PORT", default=None,
                       help="TCP coordinator address "
                            "(required by --transport tcp)")
    sweep.add_argument("--secret", default=None,
                       help="shared secret for the coordinator handshake "
                            "(default: the REPRO_SECRET environment "
                            "variable; tcp transport)")
    sweep.add_argument("--workers-expected", type=int, default=0,
                       help="wait until this many live workers are "
                            "registered before enqueueing "
                            "(queue/tcp transports)")
    sweep.add_argument("--worker-timeout", type=float, default=60.0,
                       help="seconds to wait for --workers-expected workers")
    sweep.add_argument("--queue-timeout", type=float, default=None,
                       help="overall seconds to wait for distributed "
                            "results (default: wait forever)")
    sweep.add_argument("--lease-ttl", type=float, default=60.0,
                       help="seconds without a heartbeat before a queue "
                            "task lease is reclaimed from a dead worker")
    sweep.add_argument("--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS,
                       help="retry budget per failing config before a "
                            "resumed sweep gives up on it (0 = unlimited)")
    sweep.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="content-addressed result cache directory")
    sweep.add_argument("--ledger", metavar="PATH", default=None,
                       help="append-only JSONL run ledger")
    sweep.add_argument("--resume", action="store_true",
                       help="skip configs the ledger already marks done "
                            "(requires --ledger)")
    sweep.add_argument("--parameter", default=None,
                       help="also fit rounds against this shape parameter")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines on stderr")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="also write the raw records to a JSON file")
    sweep.add_argument("--summary-json", metavar="PATH", default=None,
                       help="write a machine-readable sweep summary "
                            "(result-source counts, failures, metrics) to "
                            "a JSON file")
    sweep.add_argument("--telemetry", metavar="DIR", default=None,
                       help="write a structured event log (events.jsonl) "
                            "and a final metrics snapshot (metrics.json) "
                            "into DIR")
    sweep.add_argument("--checkpoint-every", type=int, metavar="N",
                       default=None,
                       help="checkpoint each run every N scheduler rounds "
                            "so a killed worker's task resumes instead of "
                            "restarting")
    sweep.add_argument("--checkpoint-dir", metavar="PATH", default=None,
                       help="directory for per-config checkpoint files "
                            "(default: checkpointing disabled; queue "
                            "workers need this path to be shared, tcp "
                            "workers set their own with 'worker "
                            "--checkpoint-dir')")

    run = sub.add_parser(
        "run",
        help="run one config through the Session API, optionally "
             "checkpointing and resuming")
    run.add_argument("--algorithm", default="dle", choices=sorted(ALGORITHMS))
    run.add_argument("--family", default="hexagon",
                     choices=sorted(SHAPE_FAMILIES))
    run.add_argument("--size", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scheduler", default="random",
                     choices=sorted(SCHEDULER_ORDERS),
                     help="activation order the adversary uses")
    run.add_argument("--engine", default="sweep", choices=sorted(ENGINES))
    run.add_argument("--faults", default="", metavar="PLAN",
                     help="fault-plan spec string ('' = no faults), e.g. "
                          "'crash:rate=0.05,rounds=30;seed=7'")
    run.add_argument("--checkpoint-every", type=int, metavar="N",
                     default=None,
                     help="write a checkpoint every N scheduler rounds "
                          "(requires --checkpoint-dir)")
    run.add_argument("--checkpoint-dir", metavar="PATH", default=None,
                     help="directory the checkpoint file is written into")
    run.add_argument("--resume-from", metavar="PATH", default=None,
                     help="resume from this checkpoint file instead of "
                          "starting a fresh run (ignores the config flags; "
                          "the checkpoint carries the config)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write the record to a JSON file")

    table1 = sub.add_parser("table1", help="reproduce the Table 1 comparison")
    table1.add_argument("--sizes", type=int, nargs="+", default=[2, 3, 4])
    table1.add_argument("--families", nargs="+", default=list(TABLE1_FAMILIES),
                        choices=sorted(SHAPE_FAMILIES))
    table1.add_argument("--seed", type=int, default=0)
    table1.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help="worker processes (1 = in-process)")
    table1.add_argument("--json", metavar="PATH", default=None,
                        help="also write the raw records to a JSON file")

    scaling = sub.add_parser("scaling", help="scaling figure for one algorithm")
    scaling.add_argument("algorithm", choices=sorted(ALGORITHMS))
    scaling.add_argument("--families", nargs="+", default=["hexagon", "holey"],
                         choices=sorted(SHAPE_FAMILIES))
    scaling.add_argument("--sizes", type=int, nargs="+", default=[2, 3, 4, 6, 8])
    scaling.add_argument("--parameter", default=None,
                         help="shape parameter to fit against "
                              "(default depends on the algorithm)")
    scaling.add_argument("--seed", type=int, default=0)
    scaling.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                         help="worker processes (1 = in-process)")
    scaling.add_argument("--json", metavar="PATH", default=None)

    elect = sub.add_parser("elect", help="run one leader election end to end")
    elect.add_argument("--family", default="holey", choices=sorted(SHAPE_FAMILIES))
    elect.add_argument("--size", type=int, default=3)
    elect.add_argument("--seed", type=int, default=0)
    elect.add_argument("--known-boundary", action="store_true",
                       help="skip OBD and use the oracle boundary input")
    elect.add_argument("--no-reconnect", action="store_true",
                       help="skip Algorithm Collect")
    elect.add_argument("--render", action="store_true",
                       help="print the final configuration as ASCII art")

    worker = sub.add_parser(
        "worker",
        help="run a pull-based sweep worker against a shared queue "
             "directory or a TCP coordinator")
    worker.add_argument("queue_dir", metavar="QUEUE_DIR", nargs="?",
                        default=None,
                        help="the directory '--transport queue' sweeps "
                             "enqueue into (created if missing); omit when "
                             "using --connect")
    worker.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="serve a TCP coordinator ('python -m repro "
                             "serve') instead of a queue directory")
    worker.add_argument("--secret", default=None,
                        help="shared secret for the coordinator handshake "
                             "(default: the REPRO_SECRET environment "
                             "variable; with --connect)")
    worker.add_argument("--id", default=None,
                        help="worker id (default: <hostname>-<pid>)")
    worker.add_argument("--lease-ttl", type=float, default=60.0,
                        help="seconds without a heartbeat before other "
                             "workers may reclaim this worker's task "
                             "(queue mode; the coordinator owns this "
                             "setting in tcp mode)")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between polls when the queue is empty")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many seconds without work "
                             "(default: run until a STOP file appears / "
                             "Ctrl-C)")
    worker.add_argument("--max-tasks", type=int, default=None,
                        help="exit after processing this many tasks")
    worker.add_argument("--checkpoint-dir", metavar="PATH", default=None,
                        help="checkpoint task runs into this directory, "
                             "overriding any directory the sweep attached "
                             "to the task (tcp workers share no filesystem "
                             "with the coordinator, so they must set this "
                             "themselves to checkpoint at all)")
    worker.add_argument("--checkpoint-every", type=int, metavar="N",
                        default=None,
                        help="checkpoint cadence in scheduler rounds, "
                             "overriding the task's cadence")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-task progress lines on stderr")

    serve = sub.add_parser(
        "serve",
        help="run the TCP sweep coordinator behind '--transport tcp'")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1; use "
                            "0.0.0.0 to serve other machines)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"port to listen on (default {DEFAULT_PORT}; "
                            f"0 picks a free port)")
    serve.add_argument("--secret", default=None,
                       help="shared secret workers and sweeps must present "
                            "(default: the REPRO_SECRET environment "
                            "variable; unset = unauthenticated)")
    serve.add_argument("--lease-ttl", type=float, default=60.0,
                       help="seconds without a heartbeat before a dead "
                            "worker's task is reclaimed")
    serve.add_argument("--result-ttl", type=float, default=24 * 3600.0,
                       help="seconds an uncollected result stays on the "
                            "board before it is pruned (default 86400 = "
                            "1 day); use a ttl larger than any sweep's "
                            "duration")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the startup line on stderr")

    status = sub.add_parser(
        "status",
        help="report live board depth, lease ages, throughput and workers "
             "for a running distributed sweep")
    status.add_argument("--coordinator", metavar="HOST:PORT", default=None,
                        help="query a live TCP coordinator "
                             "('python -m repro serve')")
    status.add_argument("--queue-dir", metavar="PATH", default=None,
                        help="inspect a filesystem queue directory instead")
    status.add_argument("--secret", default=None,
                        help="shared secret for the coordinator handshake "
                             "(default: the REPRO_SECRET environment "
                             "variable; with --coordinator)")
    status.add_argument("--watch", type=float, metavar="SECONDS",
                        default=None,
                        help="re-poll every SECONDS until Ctrl-C")
    status.add_argument("--json", action="store_true",
                        help="print the snapshot as JSON on stdout")

    dashboard = sub.add_parser(
        "dashboard",
        help="render a self-contained HTML/markdown sweep dashboard from "
             "a run ledger (optionally live, via --watch)")
    dashboard.add_argument("--ledger", metavar="PATH", required=True,
                           help="the JSONL run ledger to analyse (with "
                                "--watch it may not exist yet; the "
                                "dashboard follows its tail as it grows)")
    dashboard.add_argument("--telemetry", metavar="DIR", default=None,
                           help="fold in the metrics.json a '--telemetry "
                                "DIR' sweep wrote (cache hit rate, "
                                "retries, lease reclaims)")
    dashboard.add_argument("--coordinator", metavar="HOST:PORT", default=None,
                           help="fold in the live status feed of a TCP "
                                "coordinator (worker liveness, lease ages)")
    dashboard.add_argument("--queue-dir", metavar="PATH", default=None,
                           help="fold in the live status of a filesystem "
                                "task queue instead")
    dashboard.add_argument("--secret", default=None,
                           help="shared secret for the coordinator "
                                "handshake (default: the REPRO_SECRET "
                                "environment variable)")
    dashboard.add_argument("--out", metavar="PATH", default="sweep.html",
                           help="HTML output path (default sweep.html; "
                                "republished atomically under --watch)")
    dashboard.add_argument("--markdown", metavar="PATH", nargs="?",
                           const="-", default=None,
                           help="also emit the markdown dashboard ('-' or "
                                "no value = stdout)")
    dashboard.add_argument("--group-by", nargs="+", metavar="FIELD",
                           default=None,
                           help="record fields the percentile tables group "
                                "by (default: algorithm family size; any "
                                "config/record/metric field works, e.g. "
                                "engine, faults, n, l_out)")
    dashboard.add_argument("--compare", metavar="LEDGER", default=None,
                           help="baseline ledger for the cohort-comparison "
                                "section (per-group deltas, flagged "
                                "against --noise)")
    dashboard.add_argument("--metric", default="rounds",
                           help="numeric field the cohort comparison "
                                "reports (default rounds)")
    dashboard.add_argument("--noise", type=float, default=0.25,
                           help="noise margin for a 'significant' cohort "
                                "ratio (default 0.25 = ±25%%, the bench "
                                "gate's margin)")
    dashboard.add_argument("--watch", type=float, metavar="SECONDS",
                           default=None,
                           help="re-render every SECONDS, following the "
                                "ledger tail, until Ctrl-C")
    dashboard.add_argument("--ticks", type=int, metavar="N", default=None,
                           help="with --watch: stop after N renders "
                                "(smoke tests and CI)")
    dashboard.add_argument("--title", default=None,
                           help="dashboard title (default: the ledger "
                                "filename)")
    dashboard.add_argument("--stamp", action="store_true",
                           help="embed a generation timestamp (off by "
                                "default: output is byte-deterministic "
                                "for a fixed ledger)")

    queue_gc = sub.add_parser(
        "queue-gc",
        help="prune finished results and stale state from a queue directory")
    queue_gc.add_argument("queue_dir", metavar="QUEUE_DIR",
                          help="the queue directory to prune")
    queue_gc.add_argument("--ttl", type=float, default=24 * 3600.0,
                          help="age in seconds before results, worker "
                               "registrations and a STOP sentinel are "
                               "pruned (default 86400 = 1 day); use a ttl "
                               "larger than any live sweep's duration")
    queue_gc.add_argument("--lease-ttl", type=float, default=60.0,
                          help="heartbeat age after which leases are "
                               "reclaimed before pruning (default 60)")
    queue_gc.add_argument("--no-reclaim", action="store_true",
                          help="skip the stale-lease recovery pass")
    queue_gc.add_argument("--json", metavar="PATH", default=None,
                          help="also write the pruning counts to a JSON file")

    bench = sub.add_parser(
        "bench",
        help="run the fixed micro-benchmark grid and emit BENCH_<rev>.json")
    bench.add_argument("--quick", action="store_true",
                       help="run the small CI grid instead of the full one")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per entry (best is kept)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--only", metavar="PREFIX", default=None,
                       help="only run entries whose algorithm/family/size "
                            "key starts with PREFIX")
    bench.add_argument("--out", metavar="PATH", default=None,
                       help="output report path (default: BENCH_<rev>.json)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="gate against this committed BENCH_*.json")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed normalized-time regression fraction "
                            "against the baseline (default 0.25 = +25%%)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress per-entry progress lines on stderr")

    profile = sub.add_parser(
        "profile",
        help="cProfile one algorithm run; report the per-phase breakdown "
             "(geometry / activation / algorithm)")
    profile.add_argument("--algorithm", default="dle",
                         choices=sorted(ALGORITHMS))
    profile.add_argument("--family", default="hexagon",
                         choices=sorted(SHAPE_FAMILIES))
    profile.add_argument("--size", type=int, default=16)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--engine", default="event", choices=sorted(ENGINES))
    profile.add_argument("--scheduler", default="random",
                         choices=sorted(SCHEDULER_ORDERS),
                         help="activation order the profiled run uses")
    profile.add_argument("--top", type=int, default=15,
                         help="number of hottest functions to list")
    profile.add_argument("--smoke", action="store_true",
                         help="profile the fixed small CI configuration "
                              "and fail unless the run succeeded")
    profile.add_argument("--baseline", metavar="PATH", default=None,
                         help="gate the geometry/activation/algorithm "
                              "phases against this committed profile "
                              "report (e.g. PROFILE_baseline.json)")
    profile.add_argument("--max-regression", type=float, default=0.35,
                         help="allowed normalized per-phase regression "
                              "fraction against --baseline "
                              "(default 0.35 = +35%%)")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report to a JSON file")

    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism, state-protocol, telemetry, "
             "lock-order and API-hygiene rules",
        description="AST-based static analysis of repro source trees. "
                    "Exit code 0 when clean, 1 when findings exist, 2 on "
                    "usage errors.  Suppress one finding in place with "
                    "'# repro: lint-ok[CODE] reason'.")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: --self)")
    lint.add_argument("--self", action="store_true", dest="lint_self",
                      help="lint this repository's own src/, tests/, "
                           "examples/ and benchmarks/ trees (the CI gate)")
    lint.add_argument("--format", choices=("human", "json"), default="human",
                      help="report format on stdout (default human)")
    lint.add_argument("--json", metavar="PATH", default=None,
                      help="additionally write the JSON report to a file "
                           "(the CI failure artifact)")
    lint.add_argument("--select", metavar="RULES", default=None,
                      help="comma-separated rule codes or family letters "
                           "to run (e.g. D101,S or A)")
    lint.add_argument("--ignore", metavar="RULES", default=None,
                      help="comma-separated rule codes or family letters "
                           "to skip")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")

    metrics = sub.add_parser("metrics", help="print the parameters of a shape")
    metrics.add_argument("--family", default="hexagon", choices=sorted(SHAPE_FAMILIES))
    metrics.add_argument("--size", type=int, default=3)
    metrics.add_argument("--seed", type=int, default=0)

    sub.add_parser("families", help="list the available shape families")

    report = sub.add_parser(
        "report",
        help="derive analysis reports from a finished sweep ledger")
    report.add_argument("--robustness", action="store_true",
                        help="the guarantee-survival table: termination "
                             "rate, safety violations and round inflation "
                             "per (algorithm, fault plan) cell")
    report.add_argument("--ledger", metavar="PATH", required=True,
                        help="the JSONL run ledger a sweep wrote")
    report.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report rows to a JSON file")
    return parser


def _sweep_parameters() -> List[str]:
    """Numeric record columns ``sweep --parameter`` can fit against."""
    from .grid.metrics import ShapeMetrics

    metric_keys = ShapeMetrics(n=1, n_area=1, diameter=1, area_diameter=1,
                               grid_diam=1, l_out=1, l_max=1,
                               num_holes=0).as_dict()
    return sorted(list(metric_keys) + ["rounds", "size"])


def _secret_or_env(secret: Optional[str]) -> Optional[str]:
    """CLI --secret value, falling back to the REPRO_SECRET env var (the
    env var keeps the secret out of shell history and ``ps`` output)."""
    import os

    return secret if secret is not None else os.environ.get("REPRO_SECRET")


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.ledger:
        print("error: --resume requires --ledger", file=sys.stderr)
        return 2
    if args.transport == "queue" and not args.queue_dir:
        print("error: --transport queue requires --queue-dir",
              file=sys.stderr)
        return 2
    if args.queue_dir and args.transport != "queue":
        print("error: --queue-dir requires --transport queue",
              file=sys.stderr)
        return 2
    if args.transport == "tcp" and not args.coordinator:
        print("error: --transport tcp requires --coordinator",
              file=sys.stderr)
        return 2
    if args.coordinator and args.transport != "tcp":
        print("error: --coordinator requires --transport tcp",
              file=sys.stderr)
        return 2
    if args.parameter and args.parameter not in _sweep_parameters():
        # Validate before the sweep runs so a typo cannot discard the work.
        print(f"error: parameter {args.parameter!r} is not a numeric "
              f"record column; known: {_sweep_parameters()}", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and not args.checkpoint_dir:
        print("error: --checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    spec = SweepSpec(algorithms=args.algorithms, families=args.families,
                     sizes=args.sizes, seeds=args.seeds,
                     scheduler=args.scheduler, engine=args.engine,
                     faults=args.faults)
    try:
        spec.expand()
    except ValueError as exc:
        # Validate before anything runs so a fault-plan typo (or a plan on
        # an algorithm that rejects faults) cannot discard a grid of work.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    transport = args.transport
    if transport == "queue":
        from .orchestrator import QueueTransport

        transport = QueueTransport(args.queue_dir,
                                   lease_ttl=args.lease_ttl,
                                   max_attempts=args.max_attempts,
                                   workers_expected=args.workers_expected,
                                   worker_timeout=args.worker_timeout,
                                   timeout=args.queue_timeout)
    elif transport == "tcp":
        from .orchestrator import TcpTransport

        transport = TcpTransport(args.coordinator,
                                 secret=_secret_or_env(args.secret),
                                 max_attempts=args.max_attempts,
                                 workers_expected=args.workers_expected,
                                 worker_timeout=args.worker_timeout,
                                 timeout=args.queue_timeout)

    log = get_logger("sweep")

    def progress(done: int, total: int, result) -> None:
        status = "ok" if result.ok else "FAILED"
        if result.ok and result.source != "executed":
            status += f" ({result.source})"
        elif not result.ok and result.gave_up:
            status += " (gave up, retry budget spent)"
        log.info(f"[{done}/{total}] {result.config.describe()}: {status}")

    # A real registry is always installed around the sweep (the summary's
    # metrics block needs it); the event log only with --telemetry.  Both
    # are scoped, so library callers of run_sweep are unaffected.
    from .telemetry import EventLog, MetricsRegistry, use_event_log, \
        use_registry

    registry = MetricsRegistry()
    telemetry_dir = Path(args.telemetry) if args.telemetry else None
    event_log = None
    if telemetry_dir is not None:
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        event_log = EventLog(telemetry_dir / "events.jsonl",
                             context={"engine": args.engine,
                                      "transport": args.transport
                                      or ("process" if args.jobs > 1
                                          else "inline")})
    try:
        with use_registry(registry), use_event_log(event_log):
            result = run_sweep(spec, jobs=args.jobs, cache=args.cache_dir,
                               ledger=args.ledger, resume=args.resume,
                               transport=transport,
                               max_attempts=args.max_attempts or None,
                               checkpoint_every=args.checkpoint_every,
                               checkpoint_dir=args.checkpoint_dir,
                               progress=None if args.quiet else progress)
    finally:
        if event_log is not None:
            event_log.close()
    records = result.records
    print(format_records(records, title="sweep results"))
    if args.parameter:
        print()
        print(format_sweep_scaling(records, args.parameter))
    print()
    print(format_sweep_summary(result))
    for failure in result.failures:
        log.error(f"\nFAILED {failure.config.describe()}:\n{failure.error}")
    if args.json:
        save_records(records, args.json)
        print(f"raw records written to {args.json}")

    snapshot = registry.snapshot()
    metrics_block = _sweep_metrics_block(snapshot, result)
    if telemetry_dir is not None:
        from .orchestrator.fsutil import write_json_atomic

        write_json_atomic(telemetry_dir / "metrics.json", {
            "kind": "sweep-metrics",
            "spec": spec.to_dict(),
            "metrics": metrics_block,
            "snapshot": snapshot,
        })
        print(f"telemetry written to {telemetry_dir} "
              f"(events.jsonl: {event_log.lines} line(s), metrics.json)")
    if args.summary_json:
        summary = {
            "kind": "sweep-summary",
            "spec": spec.to_dict(),
            "counts": result.counts(),
            "elapsed": result.elapsed,
            "ok": not result.failures and bool(records),
            "failures": [f.config.describe() for f in result.failures],
            "metrics": metrics_block,
        }
        with open(args.summary_json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"sweep summary written to {args.summary_json}")
    return 1 if (result.failures or not records) else 0


def _sweep_metrics_block(snapshot, result) -> dict:
    """The ``metrics`` block of ``--summary-json``: the handful of numbers
    an operator actually checks, distilled from the full registry dump."""
    counters = snapshot.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    lookups = hits + misses
    rounds = {name.split(".")[1]: value
              for name, value in sorted(counters.items())
              if name.startswith("engine.") and name.endswith(".rounds")}
    return {
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        },
        "retries": sum(max(0, r.attempts - 1) for r in result.results),
        "reclaims": counters.get("queue.reclaims", 0),
        "rounds": rounds,
        "counters": counters,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    from .session import Session
    from .state import CheckpointError

    if args.checkpoint_every is not None and not args.checkpoint_dir:
        print("error: --checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    log = get_logger("run")

    def on_checkpoint(rounds: int, path: Path) -> None:
        log.info(f"run: checkpoint at round {rounds} -> {path}")

    try:
        if args.resume_from:
            session = Session.resume(args.resume_from,
                                     checkpoint_every=args.checkpoint_every,
                                     on_checkpoint=on_checkpoint)
        else:
            config = {"algorithm": args.algorithm, "family": args.family,
                      "size": args.size, "seed": args.seed,
                      "scheduler": args.scheduler, "engine": args.engine}
            if args.faults:
                config["faults"] = args.faults
            session = Session.run(config,
                                  checkpoint_every=args.checkpoint_every,
                                  checkpoint_dir=args.checkpoint_dir,
                                  on_checkpoint=on_checkpoint)
    except (CheckpointError, ValueError) as exc:
        # ValueError covers config validation — e.g. a fault-plan typo or
        # a plan on an algorithm that rejects fault injection.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if session.resumed_round is not None:
        log.info(f"run: resumed from round {session.resumed_round} "
                 f"({session.resumed_from})")
    record = session.record
    print(format_records([record], title=session.config.describe()))
    if args.json:
        save_records([record], args.json)
        print(f"raw record written to {args.json}")
    return 0 if record.succeeded else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from .orchestrator import run_tcp_worker, run_worker
    from .orchestrator.net import HandshakeError

    log = get_logger("worker")
    if (args.queue_dir is None) == (args.connect is None):
        print("error: pass exactly one of QUEUE_DIR or --connect HOST:PORT",
              file=sys.stderr)
        return 2

    def progress(task_id: str, result) -> None:
        if result.get("retrying") or result.get("status") == "retry":
            status = f"retrying (attempt {result.get('attempt')})"
        elif "record" in result:
            status = "ok"
        else:
            status = "FAILED"
        if result.get("resumed_round") is not None:
            status += f" (resumed from round {result['resumed_round']})"
        log.info(f"worker: {task_id}: {status}")

    try:
        if args.connect is not None:
            if not args.quiet:
                log.info(f"worker: serving coordinator {args.connect} "
                         f"(stop with Ctrl-C)")
            summary = run_tcp_worker(
                args.connect, secret=_secret_or_env(args.secret),
                worker_id=args.id, poll=args.poll, max_idle=args.max_idle,
                max_tasks=args.max_tasks,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                progress=None if args.quiet else progress)
        else:
            if not args.quiet:
                log.info(f"worker: serving queue {args.queue_dir} "
                         f"(lease ttl {args.lease_ttl:.0f}s; stop with a "
                         f"STOP file or Ctrl-C)")
            summary = run_worker(args.queue_dir, worker_id=args.id,
                                 lease_ttl=args.lease_ttl, poll=args.poll,
                                 max_idle=args.max_idle,
                                 max_tasks=args.max_tasks,
                                 checkpoint_dir=args.checkpoint_dir,
                                 checkpoint_every=args.checkpoint_every,
                                 progress=None if args.quiet else progress)
    except HandshakeError as exc:
        log.error(f"worker: {exc}")
        return 1
    except KeyboardInterrupt:
        log.warning("worker: interrupted")
        return 130
    if not args.quiet:
        log.info(f"worker: exiting after {int(summary)} task(s)")
        log.info(summary.describe())
    # A worker whose final task failed terminally exits nonzero, so
    # supervisors (CI scripts, systemd units) notice without log-scraping.
    return 1 if summary.last_task_failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .orchestrator import run_server

    log = get_logger("serve")

    def ready(endpoint: str) -> None:
        if not args.quiet:
            secured = "shared-secret" if _secret_or_env(args.secret) \
                else "UNAUTHENTICATED"
            log.info(f"coordinator: listening on {endpoint} ({secured}; "
                     f"lease ttl {args.lease_ttl:.0f}s; stop with Ctrl-C)")

    try:
        return run_server(host=args.host, port=args.port,
                          secret=_secret_or_env(args.secret),
                          lease_ttl=args.lease_ttl,
                          result_ttl=args.result_ttl, ready=ready)
    except KeyboardInterrupt:
        log.warning("coordinator: interrupted")
        return 130


def collect_status(coordinator: Optional[str] = None,
                   queue_dir: Optional[str] = None,
                   secret: Optional[str] = None) -> dict:
    """One unified status document for both backends (``repro status``
    and the sweep dashboard share it).

    Schema: ``kind`` / ``source`` (``"tcp"`` or ``"queue"``) / ``target`` /
    ``lease_ttl`` / ``board`` (pending, leased, done, lease_ages, leases,
    throughput, counters where available) / ``workers`` (list of dicts with
    at least ``id``) / ``stop``.
    """
    if coordinator:
        from .orchestrator.net import fetch_status

        status = fetch_status(coordinator, secret=_secret_or_env(secret))
        return {
            "kind": "repro-status",
            "source": "tcp",
            "target": coordinator,
            "lease_ttl": status.get("lease_ttl"),
            "board": status.get("board", {}),
            "workers": [{"id": worker}
                        for worker in status.get("workers", [])],
            "stop": bool(status.get("stop")),
        }
    from .orchestrator.fsutil import read_json
    from .orchestrator.queue import STATUS_FILENAME, FileTaskQueue

    snapshot = FileTaskQueue(queue_dir).status_snapshot()
    document = {
        "kind": "repro-status",
        "source": "queue",
        "target": str(queue_dir),
        "lease_ttl": snapshot["lease_ttl"],
        "board": snapshot["board"],
        "workers": snapshot["workers"],
        "stop": snapshot["stop"],
    }
    # The coordinator's published snapshot adds what directory listings
    # cannot know: how much of the sweep it has collected so far.
    published = read_json(Path(queue_dir) / STATUS_FILENAME)
    if published is not None and "coordinator" in published:
        document["coordinator"] = published["coordinator"]
    return document


def _status_snapshot(args: argparse.Namespace) -> dict:
    return collect_status(coordinator=args.coordinator,
                          queue_dir=args.queue_dir, secret=args.secret)


def _render_status(document: dict, as_json: bool,
                   stream: bool = False) -> None:
    if as_json:
        # Under --watch the feed is NDJSON: one compact document per
        # tick, flushed, so `repro status --watch --json | tool` works.
        if stream:
            print(json.dumps(document, separators=(",", ":")), flush=True)
        else:
            print(json.dumps(document, indent=2))
        return
    board = document.get("board", {})
    line = (f"{document['source']} {document['target']}: "
            f"{board.get('pending', 0)} pending, "
            f"{board.get('leased', 0)} leased, "
            f"{board.get('done', 0)} done")
    if document.get("stop"):
        line += " [STOP requested]"
    print(line)
    ages = board.get("lease_ages", {})
    if ages.get("count"):
        print(f"  lease ages: p50 {ages['p50']}s, p90 {ages['p90']}s, "
              f"max {ages['max']}s")
    for lease in board.get("leases", []):
        print(f"  lease {lease['id']}: worker "
              f"{lease.get('worker') or '?'}, {lease['age']}s old")
    throughput = board.get("throughput")
    if throughput:
        print(f"  throughput: {throughput.get('completed', 0)} result(s) "
              f"in the last {throughput.get('window', 0):.0f}s "
              f"({throughput.get('per_second', 0.0)}/s)")
    counters = board.get("counters")
    if counters:
        print("  counters: " + ", ".join(
            f"{name}={value}" for name, value in sorted(counters.items())))
    workers = document.get("workers", [])
    if workers:
        for worker in workers:
            extra = ""
            if worker.get("heartbeat_age") is not None:
                extra = f" (heartbeat {worker['heartbeat_age']}s ago)"
            print(f"  worker {worker['id']}{extra}")
    else:
        print("  no workers")
    coordinator = document.get("coordinator")
    if coordinator:
        print(f"  coordinator: {coordinator.get('collected', 0)}/"
              f"{coordinator.get('enqueued', 0)} collected, "
              f"{coordinator.get('outstanding', 0)} outstanding")


def _watch_status(args: argparse.Namespace,
                  snapshot=_status_snapshot,
                  sleep=time.sleep) -> int:
    """Poll-and-render loop behind ``status --watch``.

    An unreachable target (the coordinator restarting, the queue directory
    briefly missing) must not kill the watch: the error is reported once,
    then polling continues until the target answers again — or Ctrl-C.
    ``snapshot`` / ``sleep`` exist for tests.
    """
    down = False
    while True:
        try:
            document = snapshot(args)
        except KeyboardInterrupt:
            return 130
        except (OSError, ConnectionError, RuntimeError) as exc:
            if not down:
                print(f"status: {exc}; retrying every "
                      f"{args.watch:g}s until it answers (Ctrl-C stops)",
                      file=sys.stderr)
            down = True
        else:
            if down:
                print("status: target answering again", file=sys.stderr)
            down = False
            _render_status(document, args.json, stream=True)
        try:
            sleep(args.watch)
        except KeyboardInterrupt:
            return 130


def _cmd_status(args: argparse.Namespace) -> int:
    if (args.coordinator is None) == (args.queue_dir is None):
        print("error: pass exactly one of --coordinator HOST:PORT or "
              "--queue-dir PATH", file=sys.stderr)
        return 2
    if args.watch:
        return _watch_status(args)
    try:
        _render_status(_status_snapshot(args), args.json)
    except KeyboardInterrupt:
        return 130
    except (OSError, ConnectionError, RuntimeError) as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from .analysis.dashboard import (
        DashboardBuilder,
        render_dashboard_html,
        render_dashboard_markdown,
    )
    from .analysis.stream import DEFAULT_GROUP_BY
    from .orchestrator.fsutil import write_text_atomic

    if args.coordinator and args.queue_dir:
        print("error: pass at most one of --coordinator or --queue-dir",
              file=sys.stderr)
        return 2
    if args.ticks is not None and not args.watch:
        print("error: --ticks requires --watch", file=sys.stderr)
        return 2
    if not args.watch and not Path(args.ledger).is_file():
        # With --watch a not-yet-written ledger is fine: the follow-tail
        # picks it up the moment the sweep creates it.
        print(f"error: no ledger at {args.ledger}", file=sys.stderr)
        return 2
    if args.compare and not Path(args.compare).is_file():
        print(f"error: no ledger at {args.compare}", file=sys.stderr)
        return 2

    log = get_logger("dashboard")
    builder = DashboardBuilder(
        args.ledger, telemetry=args.telemetry,
        group_by=args.group_by or DEFAULT_GROUP_BY,
        compare_with=args.compare, compare_metric=args.metric,
        noise=args.noise, title=args.title)
    status_down = False
    ticks = 0
    while True:
        status = None
        if args.coordinator or args.queue_dir:
            try:
                status = collect_status(coordinator=args.coordinator,
                                        queue_dir=args.queue_dir,
                                        secret=args.secret)
                status_down = False
            except (OSError, ConnectionError, RuntimeError) as exc:
                # A restarting coordinator must not kill a live monitor:
                # render without the feed and keep polling.
                if not status_down:
                    log.warning(f"dashboard: status unavailable ({exc}); "
                                f"rendering without the live feed")
                status_down = True
                if not args.watch:
                    return 1
        generated = None
        if args.stamp:
            generated = time.strftime("%Y-%m-%d %H:%M:%S UTC",
                                      time.gmtime())
        dash = builder.refresh(status=status, generated=generated)
        write_text_atomic(Path(args.out),
                          render_dashboard_html(dash, refresh=args.watch))
        if args.markdown:
            markdown = render_dashboard_markdown(dash)
            if args.markdown == "-":
                print(markdown, end="")
            else:
                write_text_atomic(Path(args.markdown), markdown)
        ticks += 1
        if not args.watch:
            break
        counter("dashboard.watch_ticks").inc()
        if args.ticks is not None and ticks >= args.ticks:
            break
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 130
    if args.markdown != "-":
        targets = args.out + (f" and {args.markdown}" if args.markdown
                              else "")
        log.info(f"dashboard: {builder.aggregator.entries} ledger "
                 f"entr{'y' if builder.aggregator.entries == 1 else 'ies'} "
                 f"rendered to {targets}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    records = run_table1_experiment(sizes=tuple(args.sizes), seed=args.seed,
                                    families=tuple(args.families),
                                    jobs=args.jobs)
    print(format_table1(records))
    if args.json:
        save_records(records, args.json)
        print(f"\nraw records written to {args.json}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    parameter = args.parameter or DEFAULT_PARAMETER.get(args.algorithm, "n")
    all_records = []
    for family in args.families:
        records = run_scaling_experiment(args.algorithm, family,
                                         tuple(args.sizes), seed=args.seed,
                                         jobs=args.jobs)
        all_records.extend(records)
        title = f"{args.algorithm} rounds vs {parameter} ({family})"
        print(format_scaling_series(records, parameter, title=title))
        print()
    if args.json:
        save_records(all_records, args.json)
        print(f"raw records written to {args.json}")
    return 0


def _cmd_elect(args: argparse.Namespace) -> int:
    shape = make_shape(args.family, args.size, seed=args.seed)
    metrics = compute_metrics(shape)
    print(format_table([metrics.as_dict()], title="shape parameters"))
    system = ParticleSystem.from_shape(shape, orientation_seed=args.seed)
    runner = elect_leader_known_boundary if args.known_boundary else elect_leader
    outcome = runner(system, reconnect=not args.no_reconnect, seed=args.seed)
    print("\nleader point     :", outcome.leader_point)
    print("rounds per stage :", outcome.stage_rounds())
    print("connected after  :", outcome.connected_after)
    if args.render:
        print("\n" + render_system(system))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.bench import (
        FULL_GRID,
        QUICK_GRID,
        compare_to_baseline,
        load_report,
        run_bench,
    )

    grid = QUICK_GRID if args.quick else FULL_GRID

    def progress(key, entry):
        print(f"  {key}: {entry.seconds * 1000:.1f} ms "
              f"(normalized {entry.normalized:.2f}, rounds {entry.rounds})",
              file=sys.stderr)

    report = run_bench(grid, repeats=args.repeats, seed=args.seed,
                       quick=args.quick, only=args.only,
                       progress=None if args.quiet else progress)
    if not report.entries:
        print("error: no benchmark entries matched", file=sys.stderr)
        return 2

    rows = [{
        "benchmark": e.key,
        "ms": round(e.seconds * 1000, 1),
        "normalized": round(e.normalized, 2),
        "rounds": e.rounds,
        "ok": e.succeeded,
    } for e in report.entries]
    print(format_table(rows, title=f"bench @ {report.rev} "
                                   f"(best of {report.repeats})"))
    speedups = report.speedups
    if speedups:
        print("\nevent-engine speedup (sweep time / event time):")
        for config in sorted(speedups):
            print(f"  {config}: {speedups[config]:.2f}x")

    out = args.out or f"BENCH_{report.rev}.json"
    report.save(out)
    print(f"\nreport written to {out}")

    if args.baseline:
        baseline = load_report(args.baseline)
        comparison = compare_to_baseline(report, baseline,
                                         max_regression=args.max_regression)
        for key, cur, base, ratio in comparison.improvements:
            print(f"improved: {key} normalized {base:.2f} -> {cur:.2f} "
                  f"({ratio:.2f}x)")
        for key in comparison.new_entries:
            print(f"new (no baseline): {key}")
        for key in comparison.missing:
            print(f"missing (in baseline only): {key}")
        if not comparison.ok:
            print(f"\nFAILED: {len(comparison.regressions)} benchmark(s) "
                  f"regressed more than "
                  f"{args.max_regression:.0%} vs {args.baseline}:",
                  file=sys.stderr)
            for key, cur, base, ratio in comparison.regressions:
                print(f"  {key}: normalized {base:.2f} -> {cur:.2f} "
                      f"({ratio:.2f}x)", file=sys.stderr)
            return 1
        print(f"baseline check ok ({args.baseline}, "
              f"max regression {args.max_regression:.0%})")
    return 0


def _cmd_queue_gc(args: argparse.Namespace) -> int:
    from .orchestrator.queue import FileTaskQueue

    queue = FileTaskQueue(args.queue_dir, lease_ttl=args.lease_ttl)
    counts = queue.gc(ttl=args.ttl, reclaim=not args.no_reclaim)
    print(f"queue-gc {args.queue_dir}: "
          f"{counts['reclaimed']} lease(s) reclaimed, "
          f"{counts['results']} result(s) pruned, "
          f"{counts['workers']} dead worker registration(s) removed"
          + (", STOP sentinel removed" if counts["stop"] else ""))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"kind": "queue-gc", "queue_dir": args.queue_dir,
                       "ttl": args.ttl, "counts": counts}, handle, indent=2)
        print(f"counts written to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.profile import (
        SMOKE_CONFIG,
        compare_profile_to_baseline,
        load_profile,
        run_profile,
    )

    if args.smoke:
        config = dict(SMOKE_CONFIG)
    else:
        config = {"algorithm": args.algorithm, "family": args.family,
                  "size": args.size, "seed": args.seed,
                  "engine": args.engine}
    report = run_profile(order=args.scheduler, top=args.top, **config)

    fractions = report.phase_fractions()
    rows = [{
        "phase": phase,
        "self seconds": round(report.phases[phase], 4),
        "share": f"{fractions[phase]:.1%}",
    } for phase in sorted(report.phases, key=lambda p: -report.phases[p])]
    title = (f"profile {report.algorithm}/{report.family}/{report.size} "
             f"engine={report.engine} ({report.seconds:.2f}s wall, "
             f"{report.rounds} rounds)")
    print(format_table(rows, title=title))
    print("\nhottest functions (self time):")
    for phase, location, calls, tottime, cumtime in report.top:
        print(f"  {tottime * 1000:8.1f} ms  {phase:<10} {location} "
              f"({calls} calls)")
    if args.json:
        report.save(args.json)
        print(f"\nreport written to {args.json}")
    if args.smoke and not report.succeeded:
        print("error: smoke profile run did not succeed", file=sys.stderr)
        return 1
    if args.baseline:
        comparison = compare_profile_to_baseline(
            report, load_profile(args.baseline),
            max_regression=args.max_regression)
        for phase, cur, base, ratio in comparison.improvements:
            print(f"improved: {phase} normalized {base:.2f} -> {cur:.2f} "
                  f"({ratio:.2f}x)")
        for phase in comparison.skipped:
            print(f"not gated (missing or below the noise floor): {phase}")
        if not comparison.ok:
            print(f"\nFAILED: {len(comparison.regressions)} phase(s) "
                  f"regressed more than {args.max_regression:.0%} vs "
                  f"{args.baseline}:", file=sys.stderr)
            for phase, cur, base, ratio in comparison.regressions:
                print(f"  {phase}: normalized {base:.2f} -> {cur:.2f} "
                      f"({ratio:.2f}x)", file=sys.stderr)
            return 1
        print(f"profile baseline check ok ({args.baseline}, "
              f"max regression {args.max_regression:.0%})")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    shape = make_shape(args.family, args.size, seed=args.seed)
    metrics = compute_metrics(shape)
    print(format_table([metrics.as_dict()],
                       title=f"{args.family} size {args.size}"))
    return 0


def _cmd_families(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(SHAPE_FAMILIES):
        shape = make_shape(name, 2, seed=0)
        rows.append({
            "family": name,
            "n(size=2)": len(shape),
            "holes(size=2)": len(shape.holes),
        })
    print(format_table(rows, title="shape families"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import DEFAULT_SELF_PATHS, all_rules, lint_paths

    if args.list_rules:
        for rule in all_rules():
            roles = ",".join(rule.roles)
            print(f"{rule.code}  {rule.name}  [{roles}]")
            print(f"       {rule.description}")
        return 0
    paths = list(args.paths)
    if args.lint_self or not paths:
        missing = [name for name in DEFAULT_SELF_PATHS
                   if not Path(name).exists()]
        if "src" in missing:
            print("error: --self expects to run from the repository root "
                  "(no src/ here); pass explicit paths instead",
                  file=sys.stderr)
            return 2
        paths.extend(name for name in DEFAULT_SELF_PATHS
                     if name not in missing and name not in paths)
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such path {path!r}", file=sys.stderr)
            return 2
    report = lint_paths(paths, select=select, ignore=ignore)
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(report.to_dict(), indent=2)
                                   + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        if report.ok:
            print(f"repro lint: clean ({report.files_checked} files)")
        else:
            print(report.format_human())
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.robustness:
        print("error: report needs a report type (--robustness)",
              file=sys.stderr)
        return 2
    if not Path(args.ledger).is_file():
        print(f"error: no ledger at {args.ledger}", file=sys.stderr)
        return 2
    from .analysis.robustness import robustness_report

    cells, table = robustness_report(args.ledger)
    if not cells:
        print(f"error: ledger {args.ledger} holds no run entries",
              file=sys.stderr)
        return 1
    print(table)
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json.dumps([cell.as_dict() for cell in cells], indent=2) + "\n",
            encoding="utf-8")
        print(f"report rows written to {args.json}")
    return 0


_COMMANDS = {
    "sweep": _cmd_sweep,
    "run": _cmd_run,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "status": _cmd_status,
    "dashboard": _cmd_dashboard,
    "queue-gc": _cmd_queue_gc,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "scaling": _cmd_scaling,
    "elect": _cmd_elect,
    "metrics": _cmd_metrics,
    "families": _cmd_families,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
