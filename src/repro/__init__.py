"""repro — a reproduction of "Efficient Deterministic Leader Election for
Programmable Matter" (Dufoulon, Kutten, Moses Jr., PODC 2021).

The package implements, from scratch:

* a triangular-grid and amoebot-model substrate (:mod:`repro.grid`,
  :mod:`repro.amoebot`),
* the paper's contribution — Algorithm DLE, Algorithm Collect and the
  outer-boundary-detection primitive OBD (:mod:`repro.core`),
* the prior-work baselines of Table 1 (:mod:`repro.baselines`), and
* the experiment harness that regenerates the paper's comparison table and
  asymptotic claims (:mod:`repro.analysis`).

Quick start::

    from repro import hexagon_with_holes, ParticleSystem, elect_leader

    shape = hexagon_with_holes(radius=7)
    system = ParticleSystem.from_shape(shape, orientation_seed=1)
    outcome = elect_leader(system)
    print(outcome.stage_rounds())
"""

from .amoebot import (
    AmoebotAlgorithm,
    EventDrivenScheduler,
    IllegalMoveError,
    Particle,
    ParticleSystem,
    Scheduler,
    SchedulerResult,
    SequentialScheduler,
    make_scheduler,
    run_algorithm,
)
from .analysis import (
    run_experiment,
    run_scaling_experiment,
    run_table1_experiment,
    format_records,
    format_scaling_series,
    format_table1,
)
from .apps import SpanningTreeAlgorithm, verify_spanning_tree
from .baselines import run_erosion_election, run_randomized_election
from .io import (
    load_records,
    load_shape,
    load_system,
    save_records,
    save_shape,
    save_system,
)
from .orchestrator import (
    ResultCache,
    RunConfig,
    RunLedger,
    SweepResult,
    SweepSpec,
    run_sweep,
    scaling_spec,
    table1_spec,
)
from .core import (
    CollectSimulator,
    DLEAlgorithm,
    ElectionOutcome,
    OuterBoundaryDetection,
    elect_leader,
    elect_leader_known_boundary,
    verify_unique_leader,
)
from .grid import (
    Shape,
    ShapeMetrics,
    annulus,
    compute_metrics,
    hexagon,
    hexagon_with_holes,
    line_shape,
    make_shape,
    parallelogram,
    random_blob,
    random_holey_blob,
    spiral,
)
from .session import Session
from .state import CheckpointContext, CheckpointError
from .viz import render_shape, render_system

__version__ = "1.2.0"

__all__ = [
    "AmoebotAlgorithm",
    "CheckpointContext",
    "CheckpointError",
    "CollectSimulator",
    "DLEAlgorithm",
    "ElectionOutcome",
    "IllegalMoveError",
    "OuterBoundaryDetection",
    "EventDrivenScheduler",
    "Particle",
    "ParticleSystem",
    "ResultCache",
    "RunConfig",
    "RunLedger",
    "Scheduler",
    "SchedulerResult",
    "SequentialScheduler",
    "Session",
    "Shape",
    "SweepResult",
    "SweepSpec",
    "ShapeMetrics",
    "SpanningTreeAlgorithm",
    "annulus",
    "compute_metrics",
    "elect_leader",
    "elect_leader_known_boundary",
    "format_records",
    "format_scaling_series",
    "format_table1",
    "hexagon",
    "hexagon_with_holes",
    "line_shape",
    "load_records",
    "load_shape",
    "load_system",
    "make_scheduler",
    "make_shape",
    "parallelogram",
    "random_blob",
    "random_holey_blob",
    "render_shape",
    "render_system",
    "run_algorithm",
    "run_erosion_election",
    "run_experiment",
    "run_randomized_election",
    "run_scaling_experiment",
    "run_sweep",
    "run_table1_experiment",
    "save_records",
    "save_shape",
    "save_system",
    "scaling_spec",
    "spiral",
    "table1_spec",
    "verify_spanning_tree",
    "verify_unique_leader",
    "__version__",
]
