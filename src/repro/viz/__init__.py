"""Text-based visualisation helpers."""

from .ascii_art import render_points, render_shape, render_system

__all__ = ["render_points", "render_shape", "render_system"]
