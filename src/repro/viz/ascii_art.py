"""ASCII rendering of shapes and particle-system configurations.

The triangular grid is drawn with one character cell per grid point, rows
offset by half a cell to suggest the lattice geometry.  This is deliberately
simple — it exists so the examples can show what "the system disconnects and
then reconnects" looks like without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..amoebot.algorithm import STATUS_FOLLOWER, STATUS_KEY, STATUS_LEADER
from ..amoebot.system import ParticleSystem
from ..grid.coords import Point, bounding_box, to_cartesian
from ..grid.shape import Shape

__all__ = ["render_points", "render_shape", "render_system"]

DEFAULT_GLYPHS = {
    "occupied": "o",
    "leader": "L",
    "follower": ".",
    "undecided": "o",
    "expanded_head": "O",
    "expanded_tail": "~",
    "hole": "*",
    "empty": " ",
}


def render_points(points: Mapping[Point, str], empty: str = " ") -> str:
    """Render a mapping of grid point -> single-character glyph.

    Each grid row is horizontally shifted by ``r`` half-characters so the
    output roughly preserves the triangular-lattice geometry.
    """
    if not points:
        return "(empty)"
    min_q, min_r, max_q, max_r = bounding_box(points.keys())
    lines = []
    for r in range(min_r, max_r + 1):
        offset = r - min_r
        cells = []
        for q in range(min_q, max_q + 1):
            glyph = points.get((q, r), empty)
            cells.append(glyph)
        lines.append(" " * offset + " ".join(cells))
    return "\n".join(lines)


def render_shape(shape: Shape, show_holes: bool = True,
                 glyphs: Optional[Dict[str, str]] = None) -> str:
    """Render a shape; hole points are marked when ``show_holes`` is set."""
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    cells: Dict[Point, str] = {p: glyphs["occupied"] for p in shape.points}
    if show_holes:
        for p in shape.hole_points:
            cells[p] = glyphs["hole"]
    return render_points(cells, empty=glyphs["empty"])


def render_system(system: ParticleSystem, show_status: bool = True,
                  glyphs: Optional[Dict[str, str]] = None) -> str:
    """Render the particle system; the leader, followers and expanded
    particles get distinct glyphs when ``show_status`` is set."""
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    cells: Dict[Point, str] = {}
    for particle in system.particles():
        if particle.is_expanded:
            cells[particle.head] = glyphs["expanded_head"]
            cells[particle.tail] = glyphs["expanded_tail"]
            continue
        glyph = glyphs["occupied"]
        if show_status:
            status = particle.get(STATUS_KEY)
            if status == STATUS_LEADER:
                glyph = glyphs["leader"]
            elif status == STATUS_FOLLOWER:
                glyph = glyphs["follower"]
        cells[particle.head] = glyph
    return render_points(cells, empty=glyphs["empty"])
