"""The stable public API of the reproduction.

Import from here — and only from here — in examples, notebooks and
downstream code::

    from repro.api import RunConfig, Session, SweepSpec, run_sweep

Everything this module exports is covered by the compatibility promise in
EXPERIMENTS.md: names keep working across refactors of the underlying
packages (whose layout may change without notice).  The surface, grouped:

Running experiments
    ``RunConfig`` / ``SweepSpec`` — declarative run and sweep-grid specs;
    ``run_sweep`` (with ``scaling_spec`` / ``table1_spec``) — execute a
    spec with caching, ledgers, resume and pluggable transports;
    ``Session`` — one checkpointable, resumable run of one config;
    ``run_experiment`` / ``ALGORITHMS`` — the per-algorithm measurement
    drivers behind every sweep.

The simulator
    ``ParticleSystem`` / ``run_algorithm`` / ``make_scheduler`` — one
    algorithm on one system under an explicit activation order and engine.

The paper's algorithms and baselines
    ``elect_leader`` / ``elect_leader_known_boundary`` (the full
    pipeline), ``DLEAlgorithm``, ``CollectSimulator``,
    ``verify_unique_leader``, ``run_erosion_election``,
    ``run_randomized_election``, ``SpanningTreeAlgorithm`` /
    ``verify_spanning_tree`` (the post-election application).

Shapes and geometry
    ``make_shape`` plus the named families (``hexagon``,
    ``hexagon_with_holes``, ``annulus``, ``random_blob``,
    ``random_holey_blob``), ``compute_metrics``, ``grid_distance`` and
    ``connected_components``.

Presentation
    ``render_system`` (ASCII art), ``format_records`` /
    ``format_scaling_series`` / ``format_table1`` (result tables).
"""

from __future__ import annotations

from .amoebot.scheduler import SchedulerResult, make_scheduler, run_algorithm
from .amoebot.system import ParticleSystem
from .analysis.experiments import ALGORITHMS, ExperimentRecord, run_experiment
from .analysis.tables import format_records, format_scaling_series, format_table1
from .apps import SpanningTreeAlgorithm, verify_spanning_tree
from .baselines import run_erosion_election, run_randomized_election
from .core.collect import CollectSimulator
from .core.dle import DLEAlgorithm, verify_unique_leader
from .core.full import ElectionOutcome, elect_leader, elect_leader_known_boundary
from .grid.coords import grid_distance
from .grid.generators import (
    annulus,
    hexagon,
    hexagon_with_holes,
    make_shape,
    random_blob,
    random_holey_blob,
)
from .grid.metrics import ShapeMetrics, compute_metrics
from .grid.shape import Shape, connected_components
from .orchestrator.pool import SweepResult, run_sweep
from .orchestrator.spec import RunConfig, SweepSpec, scaling_spec, table1_spec
from .session import Session
from .state import CheckpointError
from .viz import render_system

__all__ = [
    "ALGORITHMS",
    "CheckpointError",
    "CollectSimulator",
    "DLEAlgorithm",
    "ElectionOutcome",
    "ExperimentRecord",
    "ParticleSystem",
    "RunConfig",
    "SchedulerResult",
    "Session",
    "Shape",
    "ShapeMetrics",
    "SpanningTreeAlgorithm",
    "SweepResult",
    "SweepSpec",
    "annulus",
    "compute_metrics",
    "connected_components",
    "elect_leader",
    "elect_leader_known_boundary",
    "format_records",
    "format_scaling_series",
    "format_table1",
    "grid_distance",
    "hexagon",
    "hexagon_with_holes",
    "make_scheduler",
    "make_shape",
    "random_blob",
    "random_holey_blob",
    "render_system",
    "run_algorithm",
    "run_erosion_election",
    "run_experiment",
    "run_randomized_election",
    "run_sweep",
    "scaling_spec",
    "table1_spec",
    "verify_spanning_tree",
    "verify_unique_leader",
]
