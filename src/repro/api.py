"""The stable public API of the reproduction.

Import from here — and only from here — in examples, notebooks and
downstream code::

    from repro.api import RunConfig, Session, SweepSpec, run_sweep

Everything this module exports is covered by the compatibility promise in
EXPERIMENTS.md: names keep working across refactors of the underlying
packages (whose layout may change without notice).  The surface, grouped:

Running experiments
    ``RunConfig`` / ``SweepSpec`` — declarative run and sweep-grid specs;
    ``run_sweep`` (with ``scaling_spec`` / ``table1_spec``) — execute a
    spec with caching, ledgers, resume and pluggable transports;
    ``Session`` — one checkpointable, resumable run of one config;
    ``run_experiment`` / ``ALGORITHMS`` — the per-algorithm measurement
    drivers behind every sweep; ``run_scaling_experiment`` /
    ``run_table1_experiment`` (with ``TABLE1_ALGORITHMS`` /
    ``TABLE1_FAMILIES``) — the pre-packaged paper experiments.

The simulator
    ``ParticleSystem`` / ``run_algorithm`` / ``make_scheduler`` /
    ``Scheduler`` — one algorithm on one system under an explicit
    activation order and engine; ``ADVERSARY_FACTORIES`` — the named
    adversarial activation orders used by the scheduler ablation.

Fault injection and robustness
    ``FaultSpec`` (alias ``FaultPlan``) — the parsed, seeded fault plan
    (crash/revive, visibility delays, shape perturbation);
    ``FaultInjector`` — the per-run adversary the schedulers consult;
    ``FAULT_ALGORITHMS`` — the algorithms that accept a fault plan;
    ``RobustnessCell`` / ``robustness_rows`` / ``robustness_report`` /
    ``format_robustness_table`` — the guarantee-survival report over a
    sweep ledger (``repro report --robustness``).

The paper's algorithms and baselines
    ``elect_leader`` / ``elect_leader_known_boundary`` (the full
    pipeline), ``DLEAlgorithm``, ``CollectSimulator``,
    ``verify_unique_leader``, ``run_erosion_election``,
    ``run_randomized_election``, ``SpanningTreeAlgorithm`` /
    ``verify_spanning_tree`` (the post-election application).  The
    Collect round-charging constants (``OMP_ROUNDS_PER_UNIT``,
    ``PRP_ROUNDS_PER_UNIT``, ``SDP_ROUNDS_PER_UNIT``,
    ``ROTATIONS_PER_PHASE``) are exported so analyses can state expected
    round counts in the paper's own units.

Shapes and geometry
    ``make_shape`` plus the named families (``hexagon``,
    ``hexagon_with_holes``, ``annulus``, ``random_blob``,
    ``random_holey_blob``, ``articulation_chain``, ``random_connected``),
    ``compute_metrics``, ``grid_distance`` and ``connected_components``.

Presentation and analysis
    ``render_system`` (ASCII art), ``format_table`` / ``format_records``
    / ``format_scaling_series`` / ``format_table1`` (result tables),
    ``summarize_scaling`` and ``fit_linear`` / ``fit_power_law``
    (scaling-law fits).

Streaming ledger analytics and dashboards
    ``RunLedger`` — the append-only JSONL run ledger every sweep writes,
    with streaming ``iter_entries()`` access; ``LedgerAggregator`` /
    ``StreamStat`` / ``aggregate_ledger`` — single-pass, fixed-memory
    grouped statistics (count, mean, Welford variance, histogram
    percentiles) over ledgers of any size; ``follow_entries`` — the
    torn-tail-tolerant live tail of a running sweep's ledger;
    ``compare_cohorts`` / ``compare_ledgers`` / ``CohortDelta`` —
    per-group deltas between two sweeps with the bench gate's noise
    margins; ``build_dashboard`` / ``render_dashboard_html`` /
    ``render_dashboard_markdown`` / ``DashboardBuilder`` — the
    deterministic, self-contained sweep dashboard behind
    ``repro dashboard``.
"""

from __future__ import annotations

from .amoebot.adversary import ADVERSARY_FACTORIES
from .amoebot.faults import FaultInjector, FaultPlan, FaultSpec
from .amoebot.scheduler import (
    Scheduler,
    SchedulerResult,
    make_scheduler,
    run_algorithm,
)
from .amoebot.system import ParticleSystem
from .analysis.experiments import (
    ALGORITHMS,
    FAULT_ALGORITHMS,
    TABLE1_ALGORITHMS,
    TABLE1_FAMILIES,
    ExperimentRecord,
    run_experiment,
    run_scaling_experiment,
    run_table1_experiment,
)
from .analysis.dashboard import (
    Dashboard,
    DashboardBuilder,
    build_dashboard,
    render_dashboard_html,
    render_dashboard_markdown,
)
from .analysis.fitting import fit_linear, fit_power_law
from .analysis.robustness import (
    RobustnessCell,
    format_robustness_table,
    robustness_report,
    robustness_rows,
)
from .analysis.stream import (
    CohortDelta,
    GroupCell,
    LedgerAggregator,
    StreamStat,
    aggregate_entries,
    aggregate_ledger,
    compare_cohorts,
    compare_ledgers,
    follow_entries,
)
from .analysis.tables import (
    format_records,
    format_scaling_series,
    format_table,
    format_table1,
    summarize_scaling,
)
from .apps import SpanningTreeAlgorithm, verify_spanning_tree
from .baselines import run_erosion_election, run_randomized_election
from .core.collect import (
    OMP_ROUNDS_PER_UNIT,
    PRP_ROUNDS_PER_UNIT,
    ROTATIONS_PER_PHASE,
    SDP_ROUNDS_PER_UNIT,
    CollectSimulator,
)
from .core.dle import DLEAlgorithm, verify_unique_leader
from .core.full import ElectionOutcome, elect_leader, elect_leader_known_boundary
from .grid.coords import grid_distance
from .grid.generators import (
    annulus,
    articulation_chain,
    hexagon,
    hexagon_with_holes,
    make_shape,
    random_blob,
    random_connected,
    random_holey_blob,
)
from .grid.metrics import ShapeMetrics, compute_metrics
from .grid.shape import Shape, connected_components
from .orchestrator.pool import SweepResult, run_sweep
from .orchestrator.spec import RunConfig, SweepSpec, scaling_spec, table1_spec
from .orchestrator.store import LedgerReader, RunLedger
from .session import Session
from .state import CheckpointError
from .viz import render_system

__all__ = [
    "ADVERSARY_FACTORIES",
    "ALGORITHMS",
    "CheckpointError",
    "CohortDelta",
    "CollectSimulator",
    "DLEAlgorithm",
    "Dashboard",
    "DashboardBuilder",
    "ElectionOutcome",
    "ExperimentRecord",
    "FAULT_ALGORITHMS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GroupCell",
    "LedgerAggregator",
    "LedgerReader",
    "OMP_ROUNDS_PER_UNIT",
    "PRP_ROUNDS_PER_UNIT",
    "ParticleSystem",
    "ROTATIONS_PER_PHASE",
    "RobustnessCell",
    "RunConfig",
    "RunLedger",
    "SDP_ROUNDS_PER_UNIT",
    "Scheduler",
    "SchedulerResult",
    "Session",
    "Shape",
    "ShapeMetrics",
    "SpanningTreeAlgorithm",
    "StreamStat",
    "SweepResult",
    "SweepSpec",
    "TABLE1_ALGORITHMS",
    "TABLE1_FAMILIES",
    "aggregate_entries",
    "aggregate_ledger",
    "annulus",
    "articulation_chain",
    "build_dashboard",
    "compare_cohorts",
    "compare_ledgers",
    "compute_metrics",
    "connected_components",
    "elect_leader",
    "elect_leader_known_boundary",
    "fit_linear",
    "fit_power_law",
    "follow_entries",
    "format_records",
    "format_robustness_table",
    "format_scaling_series",
    "format_table",
    "format_table1",
    "grid_distance",
    "hexagon",
    "hexagon_with_holes",
    "make_scheduler",
    "make_shape",
    "random_blob",
    "random_connected",
    "random_holey_blob",
    "render_dashboard_html",
    "render_dashboard_markdown",
    "render_system",
    "robustness_report",
    "robustness_rows",
    "run_algorithm",
    "run_erosion_election",
    "run_experiment",
    "run_randomized_election",
    "run_scaling_experiment",
    "run_sweep",
    "run_table1_experiment",
    "scaling_spec",
    "summarize_scaling",
    "table1_spec",
    "verify_spanning_tree",
    "verify_unique_leader",
]
