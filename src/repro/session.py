"""One checkpointable run behind one object: the ``Session`` API.

A :class:`Session` executes exactly one :class:`~repro.orchestrator.spec.
RunConfig` and owns the run's checkpoint lifecycle: with a checkpoint
directory it saves resumable state every ``checkpoint_every`` rounds
(through :mod:`repro.state`), picks an existing checkpoint for the same
config back up instead of restarting, and deletes the file once the run
finishes.  Every execution path of the orchestrator — the inline and
process transports, the filesystem queue workers and the TCP workers —
funnels through ``Session``, so a SIGKILLed worker's half-done task is
*resumed* from its last checkpoint by the next lease holder rather than
recomputed from round zero.

Three entry points::

    session = Session.run(config, checkpoint_every=500,
                          checkpoint_dir="ckpts/")   # run (or resume) one config
    session = Session.resume("ckpts/checkpoint-<digest>.json")  # explicit file
    record = session.record                           # the ExperimentRecord

``Session.run`` accepts a :class:`RunConfig` or its ``to_dict`` form.  A
completed session reports where it started: ``resumed_round`` is the round
the scheduler stage continued from (None when the run started fresh) and
``resumed_from`` the checkpoint file it loaded.

Checkpointing is an *execution* option, not part of the run's identity:
``checkpoint_every`` / ``checkpoint_dir`` never enter the result-cache
digest, and the checkpoint filename is keyed by the config alone so any
worker (on any code version) finds the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from .state import (
    CheckpointContext,
    CheckpointError,
    checkpoint_name,
    read_checkpoint,
)

if TYPE_CHECKING:
    from .analysis.experiments import ExperimentRecord

__all__ = ["Session"]


class Session:
    """One run of one config, checkpointable and resumable.

    Build one with :meth:`run` (the common path) or :meth:`resume`; the
    returned object has already executed and carries the outcome:

    ``record``
        The :class:`~repro.analysis.experiments.ExperimentRecord`.
    ``resumed_round``
        Round the scheduler stage continued from, or None (fresh run).
    ``resumed_from``
        Path of the checkpoint the run continued, or None.
    ``checkpoint_path``
        Where this run saves (and on success deletes) its checkpoint,
        or None when checkpointing is off.
    """

    def __init__(self, config: Any, *,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Union[str, Path, None] = None,
                 checkpoint_path: Union[str, Path, None] = None,
                 on_checkpoint: Optional[Callable[[int, Path], None]] = None,
                 ) -> None:
        from .orchestrator.spec import RunConfig

        if isinstance(config, dict):
            config = RunConfig.from_dict(config)
        config.validate()
        self.config = config
        self.checkpoint_every = int(checkpoint_every) if checkpoint_every else None
        self.on_checkpoint = on_checkpoint
        if checkpoint_path is not None:
            self.checkpoint_path: Optional[Path] = Path(checkpoint_path)
        elif checkpoint_dir is not None:
            self.checkpoint_path = (Path(checkpoint_dir)
                                    / checkpoint_name(config.to_dict()))
        else:
            self.checkpoint_path = None
        self.record: Optional["ExperimentRecord"] = None
        self.resumed_round: Optional[int] = None
        self.resumed_from: Optional[str] = None

    # -- entry points -------------------------------------------------------

    @classmethod
    def run(cls, config: Any,
            checkpoint_every: Optional[int] = None,
            checkpoint_dir: Union[str, Path, None] = None,
            on_checkpoint: Optional[Callable[[int, Path], None]] = None,
            ) -> "Session":
        """Execute ``config`` (resuming its checkpoint if one exists)."""
        session = cls(config, checkpoint_every=checkpoint_every,
                      checkpoint_dir=checkpoint_dir,
                      on_checkpoint=on_checkpoint)
        session.execute()
        return session

    @classmethod
    def resume(cls, path: Union[str, Path],
               checkpoint_every: Optional[int] = None,
               on_checkpoint: Optional[Callable[[int, Path], None]] = None,
               ) -> "Session":
        """Resume the run captured in an explicit checkpoint file.

        The config is read out of the document; ``checkpoint_every``
        defaults to the cadence the interrupted run used, so the resumed
        run keeps checkpointing the same way.
        """
        document = read_checkpoint(path)
        if document is None:
            raise CheckpointError(f"no checkpoint to resume at {path}")
        config = document.get("config")
        if not isinstance(config, dict):
            raise CheckpointError(f"checkpoint {path} carries no run config")
        session = cls(config,
                      checkpoint_every=(checkpoint_every
                                        or document.get("every")),
                      checkpoint_path=path, on_checkpoint=on_checkpoint)
        session.execute()
        return session

    # -- execution ----------------------------------------------------------

    def execute(self) -> "ExperimentRecord":
        """Run (or continue) the config; returns the ExperimentRecord."""
        from .analysis.experiments import run_experiment
        from .orchestrator.pool import _shape_and_metrics

        config = self.config
        context: Optional[CheckpointContext] = None
        if self.checkpoint_path is not None:
            context = CheckpointContext(self.checkpoint_path,
                                        self.checkpoint_every,
                                        config.to_dict(),
                                        on_checkpoint=self.on_checkpoint)
            if context.resuming:
                self.resumed_from = str(self.checkpoint_path)
        shape, metrics = _shape_and_metrics(config.family, config.size,
                                            config.seed)
        record = run_experiment(config.algorithm, shape,
                                family=config.family, size=config.size,
                                seed=config.seed, metrics=metrics,
                                order=config.scheduler, engine=config.engine,
                                checkpoint=context, faults=config.faults)
        if context is not None:
            self.resumed_round = context.resumed_round
            context.discard()
        self.record = record
        return record
