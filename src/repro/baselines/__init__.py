"""Prior-work baselines re-implemented for the Table 1 comparison."""

from .erosion import ErosionLeaderElection, ErosionOutcome, run_erosion_election
from .randomized import (
    RandomizedBoundaryElection,
    RandomizedElectionOutcome,
    run_randomized_election,
)

__all__ = [
    "ErosionLeaderElection",
    "ErosionOutcome",
    "RandomizedBoundaryElection",
    "RandomizedElectionOutcome",
    "run_erosion_election",
    "run_randomized_election",
]
