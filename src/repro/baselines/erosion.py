"""Erosion-only deterministic leader election (baseline, no movement).

This baseline represents the family of deterministic algorithms that elect a
leader by *eroding* boundary particles without ever moving them — Di Luna et
al. [22] and Gastineau et al. [27] in the paper's Table 1.  Those algorithms
require the initial shape to be **hole-free**: a particle occupying a
strictly-convex-and-erodable point of the current candidate set withdraws
(becomes a follower), and the last remaining candidate is the leader.  Their
round complexity is ``O(n)`` in general (``O(r + m_tree)`` for [27], which is
``Omega(D)``), and they are simply inapplicable when the shape has holes —
which is exactly the gap the paper's Algorithm DLE closes.

The implementation below is a faithful per-activation algorithm on the
amoebot simulator.  Like Algorithm DLE it maintains per-port ``eligible``
flags, but the eligible set starts as the *occupied points only* (there is
no hole to include when the shape is hole-free) and particles never move.
On a shape with holes the erosion stalls (no SCE point of the remaining
candidate set is guaranteed to exist once the candidate set wraps around a
hole) or elects several leaders; :func:`run_erosion_election` detects both
failure modes and reports them, which the benchmark harness uses to
reproduce the "No holes" restriction column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..amoebot.algorithm import (
    QUIESCENT,
    STATUS_FOLLOWER,
    STATUS_KEY,
    STATUS_LEADER,
    STATUS_UNDECIDED,
    TERMINATED,
    AmoebotAlgorithm,
    StatusMixin,
    is_sce_flag_arc,
)
from ..amoebot.particle import Particle
from ..amoebot.scheduler import canonical_run_kwargs, make_scheduler
from ..amoebot.system import ParticleSystem
from ..grid.coords import NUM_DIRECTIONS, Point
from ..state import run_checkpointed_stage

__all__ = ["ErosionLeaderElection", "ErosionOutcome", "run_erosion_election"]

ELIGIBLE_KEY = "eligible"
TERMINATED_KEY = "terminated"


class ErosionLeaderElection(AmoebotAlgorithm, StatusMixin):
    """SCE-erosion leader election without movement (hole-free shapes)."""

    name = "erosion-baseline"
    reports_termination = True
    reports_quiescence = True

    def __init__(self) -> None:
        #: Instrumentation: candidate points still eligible.
        self.eligible_points: Set[Point] = set()
        #: Number of state changes in the current round (stall detection).
        self._changes_this_round = 0
        #: Set once a full round passes with no change and no termination.
        self.stalled = False
        #: Particles whose ``terminated`` flag is set (absorbing), so
        #: ``has_terminated`` is O(1) instead of an O(n) scan per round.
        self._terminated_count = 0
        self._population = 0
        #: Setup-time ids of the particles whose first activation acts
        #: (flags empty or SCE) — the event engine's initial active set.
        self._initially_active: Set[int] = set()

    # -- setup -----------------------------------------------------------------

    def setup(self, system: ParticleSystem) -> None:
        shape = system.shape()
        if not shape.is_connected():
            raise ValueError("erosion baseline requires a connected configuration")
        if not system.all_contracted():
            raise ValueError("erosion baseline requires a contracted configuration")
        occupied = system.occupied_points()
        self.eligible_points = set(occupied)
        self.stalled = False
        self._changes_this_round = 0
        self._terminated_count = 0
        self._population = len(system)
        self._initially_active = initially_active = set()
        for particle in system.particles():
            particle[STATUS_KEY] = STATUS_UNDECIDED
            particle[TERMINATED_KEY] = False
            eligible = [False] * NUM_DIRECTIONS
            for port in range(NUM_DIRECTIONS):
                eligible[port] = particle.head_neighbor(port) in occupied
            particle[ELIGIBLE_KEY] = eligible
            if True not in eligible or is_sce_flag_arc(eligible):
                initially_active.add(particle.particle_id)

    # -- termination --------------------------------------------------------------

    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        return particle.memory.get(TERMINATED_KEY, False) or self.stalled

    def has_terminated(self, system: ParticleSystem) -> bool:
        # The terminated flag is set in exactly one place and never cleared;
        # the counter kept there (plus the stall flag, which terminates
        # everyone at once) replaces the default O(n) scan.
        if self.stalled:
            return True
        n = len(system)
        if n != self._population:
            return super().has_terminated(system)
        return self._terminated_count >= n

    def on_round_end(self, round_index: int, system: ParticleSystem) -> None:
        if self._changes_this_round == 0:
            # Nothing changed during a whole round: the configuration is a
            # fixed point, so it will never change again.  On hole-free
            # shapes this only happens after termination; with holes it is
            # the stall the paper's Table 1 restrictions predict.
            if self._terminated_count < len(system):
                self.stalled = True
        self._changes_this_round = 0

    # -- quiescence (event-driven engine) -----------------------------------------

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Same structure as Algorithm DLE's declaration: a particle is
        quiescent while it waits on its neighbours — decided with an
        undecided neighbour, or undecided at a non-SCE point of the
        candidate set.  Both inputs only change when a neighbour acts."""
        memory = particle.memory
        if memory[STATUS_KEY] != STATUS_UNDECIDED:
            for q in system.neighbors_of(particle):
                if q.memory[STATUS_KEY] == STATUS_UNDECIDED:
                    return True
            return False
        flags = memory[ELIGIBLE_KEY]
        if True not in flags:
            return False  # would elect itself leader
        # SCE is rotation invariant: test the port-indexed flags directly.
        return not is_sce_flag_arc(flags)

    def initially_active_ids(self, system: ParticleSystem):
        """At setup every particle is undecided, so the particles whose
        first activation acts are exactly those with actionable flags."""
        return self._initially_active

    # -- activation ---------------------------------------------------------------

    def activate(self, particle: Particle, system: ParticleSystem) -> object:
        # Returns the visibility hint of the base-class contract (``False``
        # = nothing a neighbour observes changed; neighbours only read each
        # other's ``status``).
        memory = particle.memory
        status = memory[STATUS_KEY]

        if status != STATUS_UNDECIDED:
            if all(q.memory[STATUS_KEY] != STATUS_UNDECIDED
                   for q in system.neighbors_of(particle)):
                if not memory[TERMINATED_KEY]:
                    memory[TERMINATED_KEY] = True
                    self._terminated_count += 1
                    self._changes_this_round += 1
                # Neither the flag nor the transition is neighbour-visible;
                # the sentinel also retires the particle (reports_termination).
                return TERMINATED
            return QUIESCENT  # waiting on an undecided neighbour

        eligible = memory[ELIGIBLE_KEY]

        if True not in eligible:
            memory[STATUS_KEY] = STATUS_LEADER
            self._changes_this_round += 1
            # Only decided neighbours act on the status change (an
            # undecided particle's next step depends on its own flags).
            return [q for q, _ in
                    system.head_adjacent_particles(particle.head)
                    if q.memory[STATUS_KEY] != STATUS_UNDECIDED]

        # SCE is rotation invariant, so the common no-op activation is
        # rejected straight off the port-indexed flags — the action path
        # below no longer needs the direction translation at all.
        if not is_sce_flag_arc(eligible):
            return QUIESCENT  # no-op activation until a flag is written

        # Erode: the particle withdraws from candidacy and its point leaves
        # the eligible set; neighbours with an adjacent head fix their flags.
        # The wake list evaluates the quiescence predicate at the write
        # site: an undecided neighbour is woken only when its new flags
        # make it act (no eligible ports left, or SCE), a decided
        # neighbour only for the status change it waits on.
        point = particle.head
        self.eligible_points.discard(point)
        memory[STATUS_KEY] = STATUS_FOLLOWER
        self._changes_this_round += 1
        wake: List[Particle] = []
        for q, direction in system.head_adjacent_particles(point):
            qmemory = q.memory
            # ``direction`` points from v to q's head; the head port facing
            # v is the opposite direction, in q's own port numbering.
            port = (direction + 3 - q.orientation) % NUM_DIRECTIONS
            qflags = qmemory[ELIGIBLE_KEY]
            qflags[port] = False
            if qmemory[STATUS_KEY] == STATUS_UNDECIDED:
                if True not in qflags or is_sce_flag_arc(qflags):
                    wake.append(q)
            else:
                wake.append(q)
        return wake

    # -- checkpoint state protocol -------------------------------------------

    def snapshot_state(self, system: ParticleSystem) -> dict:
        """Algorithm-private state outside particle memories.  Taken at
        round boundaries, where ``_changes_this_round`` has just been reset
        by :meth:`on_round_end` — it is serialized anyway for exactness."""
        return {
            "eligible_points": [list(point)
                                for point in sorted(self.eligible_points)],
            "changes_this_round": self._changes_this_round,
            "stalled": self.stalled,
            "terminated_count": self._terminated_count,
            "population": self._population,
            "initially_active": sorted(self._initially_active),
        }

    def restore_state(self, state: dict, system: ParticleSystem) -> None:
        self.eligible_points = {tuple(point)
                                for point in state["eligible_points"]}
        self._changes_this_round = int(state["changes_this_round"])
        self.stalled = bool(state["stalled"])
        self._terminated_count = int(state["terminated_count"])
        self._population = int(state["population"])
        self._initially_active = {int(pid)
                                  for pid in state["initially_active"]}

    @staticmethod
    def _is_sce(eligible_dirs: List[int]) -> bool:
        """Same purely local SCE test as Algorithm DLE: 1-3 eligible
        neighbours forming one contiguous clockwise arc."""
        k = len(eligible_dirs)
        if k == 0 or k > 3:
            return False
        eligible_set = set(eligible_dirs)
        starts = sum(
            1 for d in eligible_set
            if (d - 1) % NUM_DIRECTIONS not in eligible_set
        )
        return starts == 1


@dataclass
class ErosionOutcome:
    """Result of running the erosion baseline."""

    rounds: int
    succeeded: bool
    stalled: bool
    num_leaders: int
    leader_point: Optional[Point] = None
    #: Whether the scheduler run terminated (vs hitting the round cap).
    #: ``terminated and not succeeded`` distinguishes a *wrong* final
    #: answer (a safety violation — e.g. zero or several leaders under
    #: fault injection) from a mere liveness loss.
    terminated: bool = True


def run_erosion_election(system: ParticleSystem, order: str = "random",
                         seed: int = 0,
                         max_rounds: Optional[int] = None,
                         engine: str = "sweep",
                         checkpoint=None,
                         faults: str = "", *,
                         scheduler_order: Optional[str] = None
                         ) -> ErosionOutcome:
    """Run the erosion baseline and classify the outcome.

    ``succeeded`` is True only when a unique leader was elected and every
    other particle is a follower.  On shapes with holes the run typically
    ends ``stalled`` (the documented restriction of this algorithm family).
    ``engine`` selects the activation engine (``"sweep"`` or ``"event"``);
    ``checkpoint`` is an optional
    :class:`repro.state.CheckpointContext` making the run resumable;
    ``faults`` is a :class:`repro.amoebot.faults.FaultSpec` spec string
    ("" = no fault injection).
    ``scheduler_order=`` is a deprecated alias of ``order=``.
    """
    order, seed = canonical_run_kwargs(order, seed, scheduler_order)
    if max_rounds is None:
        max_rounds = 10 * len(system) + 100
    algorithm = ErosionLeaderElection()
    scheduler = make_scheduler(engine, order=order, seed=seed, faults=faults)
    result = run_checkpointed_stage(checkpoint, "erosion", algorithm, system,
                                    scheduler, max_rounds)
    leaders = [p for p in system.particles() if p.get(STATUS_KEY) == STATUS_LEADER]
    followers = [p for p in system.particles() if p.get(STATUS_KEY) == STATUS_FOLLOWER]
    succeeded = (
        not algorithm.stalled
        and result.terminated
        and len(leaders) == 1
        and len(leaders) + len(followers) == len(system)
    )
    return ErosionOutcome(
        rounds=result.rounds,
        succeeded=succeeded,
        stalled=algorithm.stalled,
        num_leaders=len(leaders),
        leader_point=leaders[0].head if len(leaders) == 1 else None,
        terminated=result.terminated,
    )
