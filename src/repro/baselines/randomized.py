"""Randomized boundary leader election (baseline, in the spirit of [19]).

Derakhshandeh et al. [19] elect a unique leader with a randomized algorithm
running on the boundaries of the particle system: candidates on a boundary
repeatedly use coin flips to defeat their clockwise neighbours until one
candidate per boundary survives, and the overall leader is chosen on the
outer boundary.  Its expected round complexity is ``O(L_max)``; the later
refinement by Daymude et al. [10, 11] achieves ``O(L_out + D)`` w.h.p.  The
paper's contribution is matching these bounds *deterministically*.

This module reproduces the baseline at the same fidelity level as the OBD
primitive (see DESIGN.md §4): the virtual rings, candidate sets, coin flips
and eliminations are simulated explicitly (seeded and reproducible), and the
round cost of each phase is charged from the structure of the computation —
a phase in which the surviving candidates are separated by gaps of at most
``g`` v-nodes costs ``O(g)`` rounds of concurrent token traffic, the final
confirmation lap costs one traversal of the ring, and the announcement is a
flood over the particle graph (``O(D)`` rounds).

The measured quantity (expected rounds as a function of ``L_out + D``) is
what Table 1 compares against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..amoebot.system import ParticleSystem
from ..grid.metrics import bfs_distances
from ..grid.shape import Shape, VirtualRing

__all__ = ["RandomizedElectionOutcome", "RandomizedBoundaryElection",
           "run_randomized_election"]

#: Rounds charged per v-node of the largest inter-candidate gap in one
#: coin-flip phase (token exchange between consecutive candidates).
PHASE_ROUNDS_PER_GAP_VNODE = 2
#: Rounds charged for the final confirmation lap, per v-node of the ring.
CONFIRMATION_ROUNDS_PER_VNODE = 1


@dataclass
class RingElection:
    """Statistics of the candidate elimination on one virtual ring."""

    ring_length: int
    phases: int
    rounds: int
    winner_index: int


@dataclass
class RandomizedElectionOutcome:
    """Result of the randomized baseline."""

    rounds: int
    phases: int
    leader_point: Optional[tuple]
    ring_rounds: int
    flood_rounds: int
    per_ring: List[RingElection] = field(default_factory=list)
    succeeded: bool = True


class RandomizedBoundaryElection:
    """Randomized candidate elimination on the virtual boundary rings."""

    name = "randomized-baseline"

    def __init__(self, system: ParticleSystem, seed: int = 0):
        if not system.all_contracted():
            raise ValueError("the baseline expects a contracted configuration")
        self.system = system
        self.rng = random.Random(seed)

    # -- per-ring election -------------------------------------------------------

    def _elect_on_ring(self, ring: VirtualRing) -> RingElection:
        length = len(ring)
        if length == 1:
            return RingElection(ring_length=1, phases=0, rounds=1, winner_index=0)
        candidates: List[int] = list(range(length))
        rounds = 0
        phases = 0
        while len(candidates) > 1:
            phases += 1
            flips = {c: self.rng.randrange(2) for c in candidates}
            # A candidate is eliminated when it flipped tails and its
            # counter-clockwise predecessor candidate flipped heads.
            survivors: List[int] = []
            m = len(candidates)
            for idx, c in enumerate(candidates):
                predecessor = candidates[(idx - 1) % m]
                if flips[c] == 0 and flips[predecessor] == 1:
                    continue
                survivors.append(c)
            if not survivors:
                survivors = candidates  # cannot happen, defensive only
            # Round cost: tokens travel between consecutive candidates, all
            # gaps in parallel; the phase finishes when the largest gap has
            # been traversed.
            max_gap = self._max_gap(candidates, length)
            rounds += PHASE_ROUNDS_PER_GAP_VNODE * max_gap
            candidates = survivors
        rounds += CONFIRMATION_ROUNDS_PER_VNODE * length
        return RingElection(
            ring_length=length,
            phases=phases,
            rounds=rounds,
            winner_index=candidates[0],
        )

    @staticmethod
    def _max_gap(candidates: List[int], ring_length: int) -> int:
        if len(candidates) <= 1:
            return ring_length
        gaps = []
        for idx, c in enumerate(candidates):
            nxt = candidates[(idx + 1) % len(candidates)]
            gap = (nxt - c) % ring_length
            gaps.append(gap if gap > 0 else ring_length)
        return max(gaps)

    # -- full run ------------------------------------------------------------------

    def run(self) -> RandomizedElectionOutcome:
        system = self.system
        shape = system.shape()
        if not shape.is_connected():
            raise ValueError("the baseline requires a connected configuration")
        if len(shape) == 1:
            only = system.particles()[0]
            return RandomizedElectionOutcome(
                rounds=1, phases=0, leader_point=only.head,
                ring_rounds=0, flood_rounds=1, per_ring=[], succeeded=True,
            )
        rings = shape.virtual_rings()
        per_ring: List[RingElection] = []
        outer_election: Optional[RingElection] = None
        outer_ring: Optional[VirtualRing] = None
        for ring in rings:
            election = self._elect_on_ring(ring)
            per_ring.append(election)
            # The outer boundary is recognised through the boundary-count sum
            # (Observation 4), exactly as in the deterministic algorithms.
            if ring.total_count == 6:
                outer_election = election
                outer_ring = ring
        if outer_election is None or outer_ring is None:
            raise RuntimeError("no outer boundary ring found")
        leader_vnode = outer_ring.vnodes[outer_election.winner_index]
        leader_point = leader_vnode.point

        # Boundaries are processed concurrently; the outer boundary gates the
        # announcement, every other boundary is cancelled by the flood.
        ring_rounds = outer_election.rounds
        flood_rounds = self._flood_rounds({leader_point})
        total = ring_rounds + flood_rounds
        return RandomizedElectionOutcome(
            rounds=total,
            phases=outer_election.phases,
            leader_point=leader_point,
            ring_rounds=ring_rounds,
            flood_rounds=flood_rounds,
            per_ring=per_ring,
            succeeded=True,
        )

    def _flood_rounds(self, sources: Set[tuple]) -> int:
        occupied = self.system.occupied_points()
        best: Dict[tuple, int] = {}
        for source in sorted(sources):
            for point, dist in bfs_distances(source, occupied).items():
                if point not in best or dist < best[point]:
                    best[point] = dist
        return max(best.values()) + 1 if best else 1


def run_randomized_election(system: ParticleSystem,
                            seed: int = 0) -> RandomizedElectionOutcome:
    """Convenience wrapper mirroring :func:`run_erosion_election`."""
    return RandomizedBoundaryElection(system, seed=seed).run()
