"""Experiment drivers shared by the examples and the benchmark harness.

Every driver takes a :class:`~repro.grid.shape.Shape`, builds a fresh
particle system, runs one algorithm (or pipeline) and returns an
:class:`ExperimentRecord` bundling the measured round count, a success flag
and the shape parameters the paper's bounds refer to.  The drivers are the
single source of truth for how the reproduction measures each algorithm, so
benchmarks, examples and EXPERIMENTS.md all agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..amoebot.system import ParticleSystem
from ..baselines.erosion import run_erosion_election
from ..baselines.randomized import run_randomized_election
from ..core.collect import CollectSimulator
from ..core.dle import DLEAlgorithm, verify_unique_leader
from ..core.full import elect_leader, elect_leader_known_boundary
from ..core.obd import OuterBoundaryDetection
from ..amoebot.scheduler import make_scheduler
from ..grid.metrics import ShapeMetrics, compute_metrics
from ..grid.shape import Shape
from ..state import CheckpointContext, run_checkpointed_stage

__all__ = [
    "ExperimentRecord",
    "ALGORITHMS",
    "FAULT_ALGORITHMS",
    "run_experiment",
    "run_scaling_experiment",
    "run_table1_experiment",
    "TABLE1_ALGORITHMS",
    "TABLE1_FAMILIES",
]


@dataclass
class ExperimentRecord:
    """One (algorithm, shape) measurement."""

    algorithm: str
    family: str
    size: int
    seed: int
    rounds: int
    succeeded: bool
    metrics: ShapeMetrics
    details: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary view used by the table formatter."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "family": self.family,
            "size": self.size,
            "rounds": self.rounds,
            "ok": self.succeeded,
        }
        row.update(self.metrics.as_dict())
        return row


def _fresh_system(shape: Shape, seed: int) -> ParticleSystem:
    return ParticleSystem.from_shape(shape, orientation_seed=seed)


# ---------------------------------------------------------------------------
# Individual algorithm drivers
# ---------------------------------------------------------------------------

def _run_dle(shape: Shape, seed: int, order: str = "random",
             engine: str = "sweep",
             checkpoint: Optional[CheckpointContext] = None,
             faults: str = "") -> Dict[str, object]:
    system = _fresh_system(shape, seed)
    algorithm = DLEAlgorithm()
    scheduler = make_scheduler(engine, order=order, seed=seed, faults=faults)
    result = run_checkpointed_stage(checkpoint, "dle", algorithm, system,
                                    scheduler, 1_000_000)
    succeeded = result.terminated
    if succeeded:
        try:
            verify_unique_leader(system)
        except Exception:
            succeeded = False
    return {
        "rounds": result.rounds,
        "succeeded": succeeded,
        "moves": result.moves,
        "connected_after": system.is_connected(),
        # Safety-violation detection for the robustness report: a run that
        # *terminated* without a verified unique leader elected wrongly;
        # one that merely failed to terminate lost liveness, not safety.
        "terminated": result.terminated,
    }


def _run_dle_collect(shape: Shape, seed: int, order: str = "random",
                     engine: str = "sweep",
                     checkpoint: Optional[CheckpointContext] = None,
                     ) -> Dict[str, object]:
    system = _fresh_system(shape, seed)
    outcome = elect_leader_known_boundary(system, reconnect=True,
                                          order=order, seed=seed,
                                          engine=engine, checkpoint=checkpoint)
    return {
        "rounds": outcome.total_rounds,
        "succeeded": outcome.reconnected and outcome.connected_after,
        "dle_rounds": outcome.dle_rounds,
        "collect_rounds": outcome.collect_rounds,
    }


def _run_collect_only(shape: Shape, seed: int, order: str = "random",
                      engine: str = "sweep",
                      checkpoint: Optional[CheckpointContext] = None,
                      ) -> Dict[str, object]:
    system = _fresh_system(shape, seed)
    algorithm = DLEAlgorithm()
    scheduler = make_scheduler(engine, order=order, seed=seed)
    run_checkpointed_stage(checkpoint, "dle", algorithm, system, scheduler,
                           1_000_000)
    leader = verify_unique_leader(system)
    result = CollectSimulator(system, leader).run()
    return {
        "rounds": result.rounds,
        "succeeded": result.connected,
        "phases": result.num_phases,
    }


def _run_obd(shape: Shape, seed: int, order: str = "random",
             engine: str = "sweep",
             checkpoint: Optional[CheckpointContext] = None,
             ) -> Dict[str, object]:
    # OBD is a synchronous primitive; neither the activation order, the
    # activation engine nor round-granular checkpointing applies.
    system = _fresh_system(shape, seed)
    result = OuterBoundaryDetection(system).run()
    expected = shape.outer_boundary
    succeeded = result.outer_boundary_points == set(expected)
    return {
        "rounds": result.rounds,
        "succeeded": succeeded,
        "competition_rounds": result.competition_rounds,
        "flood_rounds": result.flood_rounds,
        "num_boundaries": result.num_boundaries,
    }


def _run_full(shape: Shape, seed: int, order: str = "random",
              engine: str = "sweep",
              checkpoint: Optional[CheckpointContext] = None,
              ) -> Dict[str, object]:
    system = _fresh_system(shape, seed)
    outcome = elect_leader(system, reconnect=True, order=order,
                           seed=seed, engine=engine, checkpoint=checkpoint)
    return {
        "rounds": outcome.total_rounds,
        "succeeded": outcome.reconnected and outcome.connected_after,
        "obd_rounds": outcome.obd_rounds,
        "dle_rounds": outcome.dle_rounds,
        "collect_rounds": outcome.collect_rounds,
    }


def _run_erosion(shape: Shape, seed: int, order: str = "random",
                 engine: str = "sweep",
                 checkpoint: Optional[CheckpointContext] = None,
                 faults: str = "") -> Dict[str, object]:
    system = _fresh_system(shape, seed)
    outcome = run_erosion_election(system, order=order, seed=seed,
                                   engine=engine, checkpoint=checkpoint,
                                   faults=faults)
    return {
        "rounds": outcome.rounds,
        "succeeded": outcome.succeeded,
        "stalled": outcome.stalled,
        "num_leaders": outcome.num_leaders,
        "terminated": outcome.terminated,
    }


def _run_randomized(shape: Shape, seed: int, order: str = "random",
                    engine: str = "sweep",
                    checkpoint: Optional[CheckpointContext] = None,
                    faults: str = "") -> Dict[str, object]:
    # The randomized baseline drives its own internal phase schedule, so
    # neither the activation order nor the activation engine applies; its
    # ring elections finish in one shot, so there is nothing to checkpoint.
    system = _fresh_system(shape, seed)
    outcome = run_randomized_election(system, seed=seed)
    details: Dict[str, object] = {
        "rounds": outcome.rounds,
        "succeeded": outcome.succeeded,
        "phases": outcome.phases,
        "terminated": outcome.succeeded,
    }
    if faults:
        # The baseline charges its round counts analytically rather than
        # scheduling activations, so its fault plan is charged at the
        # same fidelity (see :func:`repro.amoebot.faults.
        # charged_fault_overlay`): a permanent crash on the charged
        # boundary ring stalls the traversal; transient crashes and
        # delays inflate the charged rounds by their outage lengths.
        from ..amoebot.faults import FaultSpec, charged_fault_overlay

        overlay = charged_fault_overlay(FaultSpec.parse(faults), system)
        details["fault_overlay"] = overlay
        if overlay["stalled"]:
            details["succeeded"] = False
            details["terminated"] = False
        else:
            details["rounds"] = int(details["rounds"]) \
                + int(overlay["extra_rounds"])
    return details


#: Registry of runnable algorithms / pipelines.  Every driver takes
#: ``(shape, seed, order, engine, checkpoint)`` where ``order`` is the
#: scheduler activation policy, ``engine`` the activation engine
#: (``"sweep"`` or ``"event"``) and ``checkpoint`` an optional
#: :class:`repro.state.CheckpointContext` making scheduler-driven stages
#: resumable; all three are ignored by the synchronous/self-scheduled
#: entries.
ALGORITHMS: Dict[str, Callable[..., Dict[str, object]]] = {
    "dle": _run_dle,
    "dle+collect": _run_dle_collect,
    "collect": _run_collect_only,
    "obd": _run_obd,
    "obd+dle+collect": _run_full,
    "erosion": _run_erosion,
    "randomized": _run_randomized,
}

#: Algorithms whose drivers accept a fault plan (``faults=`` spec string).
#: The pipeline drivers are excluded deliberately: their stage composition
#: (OBD hand-off, Collect's analytically-charged movement) assumes a
#: fault-free prefix, so a fault plan there would measure the harness, not
#: the algorithm.  :meth:`RunConfig.validate` enforces this.
FAULT_ALGORITHMS: frozenset = frozenset({"dle", "erosion", "randomized"})

#: Algorithms compared in the Table 1 reproduction, with the paper row each
#: stands for.
TABLE1_ALGORITHMS: Dict[str, str] = {
    "randomized": "[19]/[10] randomized, O(L_max) / O(L_out + D)",
    "erosion": "[22]/[27] deterministic erosion, O(n), no holes",
    "dle": "This paper, DLE with known boundary, O(D_A)",
    "obd+dle+collect": "This paper, full pipeline, O(L_out + D)",
}

#: Shape families used for the Table 1 reproduction.
TABLE1_FAMILIES: Sequence[str] = ("hexagon", "blob", "holey")


# ---------------------------------------------------------------------------
# Experiment drivers
# ---------------------------------------------------------------------------

def run_experiment(algorithm: str, shape: Shape, family: str = "custom",
                   size: int = 0, seed: int = 0,
                   metrics: Optional[ShapeMetrics] = None,
                   order: str = "random",
                   engine: str = "sweep",
                   checkpoint: Optional[CheckpointContext] = None,
                   faults: str = "",
                   ) -> ExperimentRecord:
    """Run one algorithm on one shape and return the measurement record."""
    try:
        driver = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    if faults and algorithm not in FAULT_ALGORITHMS:
        raise ValueError(
            f"algorithm {algorithm!r} does not support fault injection; "
            f"fault-aware: {sorted(FAULT_ALGORITHMS)}")
    if metrics is None:
        metrics = compute_metrics(shape)
    # Old-style drivers (registered before checkpointing existed) accept
    # four arguments; only hand them the checkpoint — and the fault plan —
    # when one is active.
    if faults:
        details = driver(shape, seed, order, engine, checkpoint,
                         faults=faults)
    elif checkpoint is not None:
        details = driver(shape, seed, order, engine, checkpoint)
    else:
        details = driver(shape, seed, order, engine)
    rounds = int(details.pop("rounds"))
    succeeded = bool(details.pop("succeeded"))
    return ExperimentRecord(
        algorithm=algorithm,
        family=family,
        size=size,
        seed=seed,
        rounds=rounds,
        succeeded=succeeded,
        metrics=metrics,
        details=details,
    )


def run_scaling_experiment(algorithm: str, family: str, sizes: Iterable[int],
                           seed: int = 0, jobs: int = 1,
                           cache_dir: Optional[str] = None,
                           transport: Optional[object] = None,
                           ) -> List[ExperimentRecord]:
    """Run one algorithm on a growing sequence of shapes from one family.

    Thin front-end over :func:`repro.orchestrator.run_sweep`: ``jobs`` runs
    the ladder in parallel worker processes, ``cache_dir`` reuses
    previously-computed results, and ``transport`` (a name or a transport
    object such as :class:`~repro.orchestrator.queue.QueueTransport`)
    distributes the runs to remote workers.  Execution errors are
    re-raised, matching the historical serial-loop behaviour.
    """
    from ..orchestrator import run_sweep, scaling_spec

    spec = scaling_spec(algorithm, family, list(sizes), seed=seed)
    result = run_sweep(spec, jobs=jobs, cache=cache_dir, transport=transport)
    return result.raise_failures().records


def run_table1_experiment(sizes: Iterable[int] = (2, 3, 4), seed: int = 0,
                          families: Sequence[str] = TABLE1_FAMILIES,
                          algorithms: Optional[Sequence[str]] = None,
                          jobs: int = 1, cache_dir: Optional[str] = None,
                          transport: Optional[object] = None,
                          ) -> List[ExperimentRecord]:
    """Measurements behind the Table 1 reproduction.

    Every algorithm in ``algorithms`` (default: the Table 1 set) is run on
    every (family, size) pair, through the orchestrator (``jobs`` worker
    processes, optional result cache, optional remote ``transport``).
    Failures (e.g. the erosion baseline on holey shapes) are recorded, not
    raised — they are part of the comparison.
    """
    from ..orchestrator import run_sweep, table1_spec

    spec = table1_spec(sizes=list(sizes), seed=seed, families=families,
                       algorithms=algorithms)
    result = run_sweep(spec, jobs=jobs, cache=cache_dir, transport=transport)
    return result.raise_failures().records
