"""Streaming ledger analytics: single-pass, fixed-memory aggregation.

Million-config sweeps produce JSONL ledgers that the ``records()``-into-
memory analysis path cannot hold.  This module is the scale-matched
alternative: every statistic here is computed in **one pass** over
:meth:`repro.orchestrator.store.RunLedger.iter_entries` with memory
proportional to the number of *groups*, never to the number of ledger
lines.

Three layers, each built on the one below:

* :class:`StreamStat` — count / mean / Welford variance / min / max of
  one numeric field, plus streaming percentiles through the telemetry
  registry's fixed-bucket :class:`~repro.telemetry.registry.Histogram`
  (the same estimator ``repro status`` already trusts for lease ages).
* :class:`LedgerAggregator` — grouped outcome counts and per-field
  :class:`StreamStat` values keyed by arbitrary record fields
  (``algorithm``, ``family``, ``size``, ``engine``, ``faults``, any
  shape metric…).  Incremental by construction: feed it a finished
  ledger, or keep feeding it the live tail of a running one.
* :func:`compare_cohorts` — per-cell deltas between two aggregations
  (two sweeps, two engines, before/after a change), flagged against the
  same noise margin the bench gate uses.

:func:`follow_entries` is the live side: a polling follow-tail over a
ledger that tolerates torn final lines (an in-flight ``os.write``), so a
dashboard can watch a sweep that is still appending.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..telemetry import counter as _metric
from ..telemetry.registry import DEFAULT_BUCKETS, Histogram

__all__ = [
    "DEFAULT_GROUP_BY",
    "ROUND_BUCKETS",
    "CohortDelta",
    "GroupCell",
    "LedgerAggregator",
    "StreamStat",
    "aggregate_entries",
    "aggregate_ledger",
    "compare_cohorts",
    "compare_ledgers",
    "entry_field",
    "follow_entries",
]

PathLike = Union[str, Path]

#: Default grouping for sweep ledgers: one cell per scaling-series point.
DEFAULT_GROUP_BY: Tuple[str, ...] = ("algorithm", "family", "size")

#: Fixed bucket boundaries for round counts (a 1-2-5 decade ladder wide
#: enough for million-round runs); :data:`~repro.telemetry.registry.
#: DEFAULT_BUCKETS` covers the seconds-scale ``elapsed`` field.
ROUND_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6)

#: Numeric fields aggregated per group by default, with their buckets.
DEFAULT_FIELDS: Mapping[str, Sequence[float]] = {
    "rounds": ROUND_BUCKETS,
    "elapsed": DEFAULT_BUCKETS,
}

#: Percentiles every summary reports.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.5), ("p90", 0.9), ("p99", 0.99))


def entry_field(entry: Dict[str, Any], name: str) -> Any:
    """Resolve ``name`` against one ledger entry, most-specific first:
    the run config, the entry itself (``status``, ``elapsed``, ``digest``),
    the record payload (``rounds``, ``succeeded``), its shape metrics,
    then its details.  ``None`` when nowhere to be found."""
    config = entry.get("config") or {}
    if name in config:
        return config[name]
    if name == "faults":
        return ""  # fault-free configs omit the key by design
    if name in entry:
        return entry[name]
    record = entry.get("record") or {}
    if name in record:
        return record[name]
    for nested in ("metrics", "details"):
        payload = record.get(nested) or {}
        if name in payload:
            return payload[name]
    return None


class StreamStat:
    """Single-pass statistics of one numeric field.

    Welford's online algorithm gives exact count/mean/variance in O(1)
    memory; a fixed-bucket histogram (reused from the telemetry
    registry) gives streaming percentiles with bounded error and *no*
    growth with observation count — the combination the whole module is
    built on.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "_hist")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._hist = Histogram("stream", buckets=buckets)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._hist.observe(value)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def quantile(self, q: float) -> float:
        """Streaming ``q``-quantile: the histogram's interpolated answer."""
        return self._hist.quantile(q)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary (count, mean, std, min/max, percentiles)."""
        data: Dict[str, Any] = {
            "count": self.count,
            "mean": round(self.mean, 6),
            "std": round(self.std, 6),
            "min": self.min,
            "max": self.max,
        }
        for label, q in SUMMARY_QUANTILES:
            data[label] = round(self.quantile(q), 6)
        return data


@dataclass
class GroupCell:
    """Aggregated outcomes and statistics of one group of ledger entries."""

    key: Tuple[Any, ...]
    runs: int = 0
    done: int = 0
    failed: int = 0
    succeeded: int = 0
    terminated: int = 0
    #: Runs that terminated with a *wrong* answer — safety violations.
    violations: int = 0
    stats: Dict[str, StreamStat] = field(default_factory=dict)

    def stat(self, name: str) -> Optional[StreamStat]:
        """The named field's statistics, ``None`` when never observed."""
        return self.stats.get(name)

    def as_dict(self, group_by: Sequence[str] = ()) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            name: value for name, value in zip(group_by, self.key)}
        data.update({
            "runs": self.runs,
            "done": self.done,
            "failed": self.failed,
            "succeeded": self.succeeded,
            "terminated": self.terminated,
            "violations": self.violations,
            "fields": {name: stat.summary()
                       for name, stat in sorted(self.stats.items())},
        })
        return data


def _sort_component(value: Any) -> Tuple[int, Any]:
    """Stable ordering across mixed-type keys: numbers first (numeric
    order), then everything else by string."""
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


def sort_key(key: Tuple[Any, ...]) -> Tuple[Tuple[int, Any], ...]:
    """Deterministic sort key for group tuples (used by every renderer)."""
    return tuple(_sort_component(component) for component in key)


class LedgerAggregator:
    """Grouped, single-pass aggregation over run-ledger entries.

    Memory is O(groups × fields), independent of how many lines are fed
    in — the property the bounded-memory test in ``tests/test_stream.py``
    pins down.  Entries are counted per appearance (no digest
    deduplication: remembering seen digests would grow with the ledger);
    ledgers produced by ``--resume`` sweeps therefore count a re-served
    config once per ledger line, exactly like ``repro status`` counts
    results.
    """

    def __init__(self, group_by: Sequence[str] = DEFAULT_GROUP_BY,
                 fields: Optional[Mapping[str, Sequence[float]]] = None
                 ) -> None:
        self.group_by = tuple(group_by)
        self.fields: Dict[str, Tuple[float, ...]] = {
            name: tuple(buckets)
            for name, buckets in (fields or DEFAULT_FIELDS).items()}
        self._cells: Dict[Tuple[Any, ...], GroupCell] = {}
        self.total = GroupCell(key=())
        self.entries = 0
        #: Distinct fault plans seen (bounded by the sweep's fault axis).
        self.fault_plans: Set[str] = set()

    def add(self, entry: Dict[str, Any]) -> None:
        """Fold one ledger entry into the aggregation."""
        self.entries += 1
        key = tuple(entry_field(entry, name) for name in self.group_by)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells.setdefault(key, GroupCell(key=key))
        plan = entry_field(entry, "faults")
        if plan:
            self.fault_plans.add(str(plan))
        for target in (cell, self.total):
            self._fold(target, entry)

    def add_all(self, entries: Iterable[Dict[str, Any]]) -> int:
        """Fold a batch of entries; returns how many were folded."""
        before = self.entries
        for entry in entries:
            self.add(entry)
        folded = self.entries - before
        if folded:
            _metric("report.stream_entries").inc(folded)
        return folded

    def _fold(self, cell: GroupCell, entry: Dict[str, Any]) -> None:
        cell.runs += 1
        status = entry.get("status")
        if status == "done":
            cell.done += 1
            record = entry.get("record") or {}
            succeeded = bool(record.get("succeeded"))
            details = record.get("details") or {}
            terminated = bool(details.get("terminated", succeeded))
            if succeeded:
                cell.succeeded += 1
            if terminated:
                cell.terminated += 1
            if terminated and not succeeded:
                cell.violations += 1
        else:
            cell.failed += 1
        for name, buckets in self.fields.items():
            value = entry_field(entry, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            stat = cell.stats.get(name)
            if stat is None:
                stat = cell.stats.setdefault(name, StreamStat(buckets))
            stat.add(float(value))

    def cells(self) -> List[GroupCell]:
        """All group cells in deterministic (numeric-aware) key order."""
        return sorted(self._cells.values(), key=lambda c: sort_key(c.key))

    def cell(self, key: Tuple[Any, ...]) -> Optional[GroupCell]:
        return self._cells.get(key)

    def __len__(self) -> int:
        return len(self._cells)

    def as_dict(self) -> Dict[str, Any]:
        """One JSON-ready document (the dashboard's raw data block)."""
        return {
            "kind": "ledger-aggregate",
            "group_by": list(self.group_by),
            "entries": self.entries,
            "fault_plans": sorted(self.fault_plans),
            "total": self.total.as_dict(),
            "groups": [cell.as_dict(self.group_by)
                       for cell in self.cells()],
        }


def aggregate_entries(entries: Iterable[Dict[str, Any]],
                      group_by: Sequence[str] = DEFAULT_GROUP_BY,
                      fields: Optional[Mapping[str, Sequence[float]]] = None
                      ) -> LedgerAggregator:
    """Fold an entry stream into a fresh :class:`LedgerAggregator`."""
    aggregator = LedgerAggregator(group_by=group_by, fields=fields)
    aggregator.add_all(entries)
    return aggregator


def aggregate_ledger(path: PathLike,
                     group_by: Sequence[str] = DEFAULT_GROUP_BY,
                     fields: Optional[Mapping[str, Sequence[float]]] = None
                     ) -> LedgerAggregator:
    """Single-pass aggregation of a ledger file (O(groups) memory)."""
    from ..orchestrator.store import RunLedger

    return aggregate_entries(RunLedger(path).iter_entries(),
                             group_by=group_by, fields=fields)


def follow_entries(path: PathLike, poll: float = 0.5,
                   idle_timeout: Optional[float] = None,
                   stop: Optional[Callable[[], bool]] = None,
                   sleep: Callable[[float], None] = time.sleep
                   ) -> Iterator[Dict[str, Any]]:
    """Yield ledger entries as they are appended — the live tail.

    Drains everything currently complete, then polls every ``poll``
    seconds for more.  A torn final line (a writer's in-flight append)
    is never mis-read: the underlying reader leaves it for the next poll
    and picks it up whole once the newline lands.  The generator ends
    when ``stop()`` answers true (checked *after* a drain, so a finished
    sweep's last entries are always delivered) or after ``idle_timeout``
    seconds without new data; with neither, it follows forever.
    ``sleep`` is injectable for tests.
    """
    from ..orchestrator.store import RunLedger

    reader = RunLedger(path).iter_entries()
    idle = 0.0
    while True:
        saw = False
        for entry in reader:  # resumes from the reader's offset
            saw = True
            yield entry
        if saw:
            idle = 0.0
        if stop is not None and stop():
            return
        if idle_timeout is not None and idle >= idle_timeout:
            return
        sleep(poll)
        idle += poll


@dataclass
class CohortDelta:
    """One group's change between two aggregations (base → other)."""

    key: Tuple[Any, ...]
    metric: str
    base_runs: int
    other_runs: int
    base_mean: Optional[float]
    other_mean: Optional[float]
    #: ``other_mean / base_mean``; ``None`` when either side is missing
    #: or the base mean is zero.
    ratio: Optional[float]
    #: Outside the noise margin?  ``None`` when the ratio is undefined.
    significant: Optional[bool]

    @property
    def delta(self) -> Optional[float]:
        if self.base_mean is None or self.other_mean is None:
            return None
        return self.other_mean - self.base_mean

    def as_dict(self, group_by: Sequence[str] = ()) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            name: value for name, value in zip(group_by, self.key)}
        data.update({
            "metric": self.metric,
            "base_runs": self.base_runs,
            "other_runs": self.other_runs,
            "base_mean": self.base_mean,
            "other_mean": self.other_mean,
            "delta": self.delta,
            "ratio": self.ratio,
            "significant": self.significant,
        })
        return data


#: The bench gate's default noise margin (±25% on the ratio) — reused so
#: "significant" means the same thing here as in ``repro bench``.
DEFAULT_NOISE_MARGIN = 0.25


def compare_cohorts(base: LedgerAggregator, other: LedgerAggregator,
                    metric: str = "rounds",
                    noise: float = DEFAULT_NOISE_MARGIN
                    ) -> List[CohortDelta]:
    """Per-cell deltas between two aggregations over the same grouping.

    Cells present on only one side are reported with the missing side's
    mean as ``None`` (a grid that grew or shrank is itself a finding).
    A ratio is *significant* when it leaves the ``[1/(1+noise), 1+noise]``
    band — the bench gate's regression margin, so scheduler noise does
    not read as a result.
    """
    if base.group_by != other.group_by:
        raise ValueError(
            f"cohorts group differently: {base.group_by} vs {other.group_by}")
    keys = {cell.key for cell in base.cells()} \
        | {cell.key for cell in other.cells()}
    deltas: List[CohortDelta] = []
    for key in sorted(keys, key=sort_key):
        base_cell, other_cell = base.cell(key), other.cell(key)
        base_stat = base_cell.stat(metric) if base_cell else None
        other_stat = other_cell.stat(metric) if other_cell else None
        base_mean = base_stat.mean if base_stat and base_stat.count else None
        other_mean = other_stat.mean if other_stat and other_stat.count \
            else None
        ratio: Optional[float] = None
        significant: Optional[bool] = None
        if base_mean and other_mean is not None:
            ratio = other_mean / base_mean
            significant = not (1.0 / (1.0 + noise) <= ratio <= 1.0 + noise)
        deltas.append(CohortDelta(
            key=key, metric=metric,
            base_runs=base_cell.runs if base_cell else 0,
            other_runs=other_cell.runs if other_cell else 0,
            base_mean=base_mean, other_mean=other_mean,
            ratio=ratio, significant=significant))
    if deltas:
        _metric("report.cohort_cells").inc(len(deltas))
    return deltas


def compare_ledgers(base_path: PathLike, other_path: PathLike,
                    group_by: Sequence[str] = DEFAULT_GROUP_BY,
                    metric: str = "rounds",
                    noise: float = DEFAULT_NOISE_MARGIN
                    ) -> List[CohortDelta]:
    """Cohort comparison of two ledger files (each streamed once)."""
    return compare_cohorts(aggregate_ledger(base_path, group_by=group_by),
                           aggregate_ledger(other_path, group_by=group_by),
                           metric=metric, noise=noise)
