"""Small fitting helpers for the scaling experiments.

The paper's claims are asymptotic (``O(D_A)``, ``O(D_G)``, ``O(L_out + D)``),
so the experiments fit measured round counts against the named parameter and
report the growth exponent and the linear-fit quality.  A reproduction is
considered to match the claim when the fitted exponent of ``rounds ~ x^a`` is
close to 1 (and clearly below 2, the bound of the prior deterministic
algorithms in Table 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["LinearFit", "PowerFit", "fit_linear", "fit_power_law"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit of ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


@dataclass(frozen=True)
class PowerFit:
    """Least-squares fit of ``y = scale * x ** exponent`` (log-log space)."""

    exponent: float
    scale: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.scale * (x ** self.exponent)


def _check_inputs(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("at least two data points are required")


def _least_squares(xs: List[float], ys: List[float]) -> Tuple[float, float, float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all x values are identical; cannot fit")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares linear fit."""
    _check_inputs(xs, ys)
    slope, intercept, r2 = _least_squares(list(map(float, xs)), list(map(float, ys)))
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Fit ``y = scale * x ** exponent`` by linear regression in log-log space.

    All data points must be strictly positive.
    """
    _check_inputs(xs, ys)
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting requires strictly positive data")
    log_x = [math.log(float(x)) for x in xs]
    log_y = [math.log(float(y)) for y in ys]
    slope, intercept, r2 = _least_squares(log_x, log_y)
    return PowerFit(exponent=slope, scale=math.exp(intercept), r_squared=r2)
