"""The sweep dashboard: one self-contained picture of a sweep.

``python -m repro dashboard --ledger PATH`` joins every observability
stream the harness produces — the run ledger (streamed through
:mod:`repro.analysis.stream`, never materialised), the telemetry
snapshot (``metrics.json``), the live status feed of a queue or TCP
transport, and the robustness survival cells when fault plans are
present — into a deterministic HTML page (inline CSS/JS, no network
access) and a markdown twin.

Determinism is a feature, not an accident: rendering the same ledger
twice yields byte-identical output (golden-tested), because the page
embeds no wall-clock unless the caller passes an explicit ``generated``
stamp, group rows are sorted with the numeric-aware order of
:func:`repro.analysis.stream.sort_key`, and every number is formatted
through one shared set of helpers.  ``--watch`` republishes the page
atomically on an interval, which turns the same renderer into a live
sweep monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry import counter as _metric
from ..telemetry.snapshots import read_metrics_file
from .robustness import RobustnessCell, format_robustness_table
from .stream import (
    DEFAULT_GROUP_BY,
    DEFAULT_NOISE_MARGIN,
    CohortDelta,
    GroupCell,
    LedgerAggregator,
    aggregate_ledger,
    compare_cohorts,
)

__all__ = [
    "Dashboard",
    "DashboardBuilder",
    "build_dashboard",
    "render_dashboard_html",
    "render_dashboard_markdown",
]

PathLike = Union[str, Path]


@dataclass
class Dashboard:
    """Everything one render needs, already joined and aggregated."""

    title: str
    ledger_label: str
    group_by: Tuple[str, ...]
    aggregator: LedgerAggregator
    robustness: List[RobustnessCell] = field(default_factory=list)
    #: Parsed ``metrics.json`` document (``None`` when not recorded).
    metrics: Optional[Dict[str, Any]] = None
    #: A ``repro status`` document (``None`` for offline dashboards).
    status: Optional[Dict[str, Any]] = None
    compare: Optional[List[CohortDelta]] = None
    compare_label: Optional[str] = None
    compare_metric: str = "rounds"
    #: Caller-supplied stamp; ``None`` keeps the output byte-deterministic.
    generated: Optional[str] = None


class DashboardBuilder:
    """Incremental dashboard state over a (possibly live) ledger.

    The ledger is consumed through a follow-tail reader: each
    :meth:`refresh` folds only the lines appended since the previous one
    into the running aggregation, so a ``--watch`` loop does O(new
    entries) work per tick no matter how large the ledger has grown.
    """

    def __init__(self, ledger: PathLike,
                 telemetry: Optional[PathLike] = None,
                 group_by: Sequence[str] = DEFAULT_GROUP_BY,
                 compare_with: Optional[PathLike] = None,
                 compare_metric: str = "rounds",
                 noise: float = DEFAULT_NOISE_MARGIN,
                 title: Optional[str] = None) -> None:
        self.ledger_path = Path(ledger)
        self.telemetry = Path(telemetry) if telemetry is not None else None
        self.aggregator = LedgerAggregator(group_by=group_by)
        self.compare_metric = compare_metric
        self.noise = noise
        self.title = title or self.ledger_path.name
        self._compare_path = (Path(compare_with)
                              if compare_with is not None else None)
        self._compare_agg: Optional[LedgerAggregator] = None
        from ..orchestrator.store import RunLedger

        self._reader = RunLedger(self.ledger_path).iter_entries()

    def refresh(self, status: Optional[Dict[str, Any]] = None,
                generated: Optional[str] = None) -> Dashboard:
        """Fold the ledger's new tail and assemble a fresh snapshot."""
        self.aggregator.add_all(self._reader)
        metrics = (read_metrics_file(self.telemetry)
                   if self.telemetry is not None else None)
        robustness: List[RobustnessCell] = []
        if self.aggregator.fault_plans:
            # The survival report needs baseline pairing across the whole
            # ledger, so it re-streams the file; cells stay O(grid).
            from ..orchestrator.store import RunLedger
            from .robustness import robustness_rows

            robustness = robustness_rows(
                list(RunLedger(self.ledger_path).iter_entries()))
        compare: Optional[List[CohortDelta]] = None
        compare_label: Optional[str] = None
        if self._compare_path is not None:
            if self._compare_agg is None:  # the baseline ledger is fixed
                self._compare_agg = aggregate_ledger(
                    self._compare_path, group_by=self.aggregator.group_by)
            compare = compare_cohorts(self._compare_agg, self.aggregator,
                                      metric=self.compare_metric,
                                      noise=self.noise)
            compare_label = self._compare_path.name
        _metric("dashboard.builds").inc()
        return Dashboard(
            title=self.title,
            ledger_label=self.ledger_path.name,
            group_by=self.aggregator.group_by,
            aggregator=self.aggregator,
            robustness=robustness,
            metrics=metrics,
            status=status,
            compare=compare,
            compare_label=compare_label,
            compare_metric=self.compare_metric,
            generated=generated,
        )


def build_dashboard(ledger: PathLike,
                    telemetry: Optional[PathLike] = None,
                    status: Optional[Dict[str, Any]] = None,
                    group_by: Sequence[str] = DEFAULT_GROUP_BY,
                    compare_with: Optional[PathLike] = None,
                    compare_metric: str = "rounds",
                    noise: float = DEFAULT_NOISE_MARGIN,
                    title: Optional[str] = None,
                    generated: Optional[str] = None) -> Dashboard:
    """One-shot build: stream the ledger once and join every source."""
    builder = DashboardBuilder(ledger, telemetry=telemetry,
                               group_by=group_by, compare_with=compare_with,
                               compare_metric=compare_metric, noise=noise,
                               title=title)
    return builder.refresh(status=status, generated=generated)


# ---------------------------------------------------------------------------
# Shared formatting (one code path for HTML and markdown → one behaviour)
# ---------------------------------------------------------------------------

def _num(value: Optional[float], places: int = 1) -> str:
    """Fixed-point with trailing-zero trim; deterministic across platforms."""
    if value is None:
        return "-"
    text = f"{value:.{places}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def _pct(numerator: float, denominator: float) -> str:
    if not denominator:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def _bar(fraction: float, width: int = 30) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _progress_rows(dash: Dashboard) -> List[Tuple[str, str]]:
    """The progress/outcome facts, as (label, value) pairs."""
    total = dash.aggregator.total
    rows = [
        ("ledger entries", str(dash.aggregator.entries)),
        ("done / failed", f"{total.done} / {total.failed}"),
        ("succeeded", f"{total.succeeded} ({_pct(total.succeeded, total.done)}"
                      f" of done)"),
        ("safety violations", str(total.violations)),
    ]
    coordinator = (dash.status or {}).get("coordinator")
    if coordinator and coordinator.get("enqueued"):
        enqueued = int(coordinator["enqueued"])
        collected = int(coordinator.get("collected", 0))
        rows.append(("sweep progress",
                     f"[{_bar(collected / enqueued)}] "
                     f"{collected}/{enqueued} collected, "
                     f"{coordinator.get('outstanding', 0)} outstanding"))
    if dash.aggregator.fault_plans:
        rows.append(("fault plans",
                     ", ".join(sorted(dash.aggregator.fault_plans))))
    return rows


def _group_table(dash: Dashboard) -> Tuple[List[str], List[List[str]]]:
    """Header + rows of the per-group percentile table."""
    headers = list(dash.group_by) + [
        "runs", "ok", "fail", "viol",
        "rounds p50", "rounds p90", "rounds p99", "rounds mean±std",
        "elapsed p50", "elapsed p90",
    ]
    rows: List[List[str]] = []
    for cell in dash.aggregator.cells():
        rows.append(_group_row(cell))
    return headers, rows


def _group_row(cell: GroupCell) -> List[str]:
    rounds = cell.stat("rounds")
    elapsed = cell.stat("elapsed")
    row = [str(component) for component in cell.key]
    row += [str(cell.runs), str(cell.succeeded), str(cell.failed),
            str(cell.violations)]
    if rounds is not None and rounds.count:
        row += [_num(rounds.quantile(0.5)), _num(rounds.quantile(0.9)),
                _num(rounds.quantile(0.99)),
                f"{_num(rounds.mean)}±{_num(rounds.std)}"]
    else:
        row += ["-", "-", "-", "-"]
    if elapsed is not None and elapsed.count:
        row += [_num(elapsed.quantile(0.5), 3), _num(elapsed.quantile(0.9), 3)]
    else:
        row += ["-", "-"]
    return row


def _metrics_rows(dash: Dashboard) -> List[Tuple[str, str]]:
    """Cache / retry / reclaim facts folded in from ``metrics.json``."""
    if not dash.metrics:
        return []
    block = dash.metrics.get("metrics") or {}
    cache = block.get("cache") or {}
    rows = [
        ("cache hits / misses",
         f"{cache.get('hits', 0)} / {cache.get('misses', 0)}"),
        ("cache hit rate", f"{100.0 * cache.get('hit_rate', 0.0):.1f}%"),
        ("retries", str(block.get("retries", 0))),
        ("lease reclaims", str(block.get("reclaims", 0))),
    ]
    rounds = block.get("rounds") or {}
    for engine in sorted(rounds):
        rows.append((f"engine {engine} rounds", str(rounds[engine])))
    counters = block.get("counters") or {}
    if "ledger.appends" in counters:
        rows.append(("ledger appends", str(counters["ledger.appends"])))
    return rows


def _worker_section(dash: Dashboard
                    ) -> Tuple[List[Tuple[str, str]], List[List[str]]]:
    """Board facts + per-worker rows from the live status feed."""
    status = dash.status or {}
    board = status.get("board") or {}
    if not status:
        return [], []
    facts = [
        ("source", f"{status.get('source', '?')} {status.get('target', '')}"
                   .strip()),
        ("board", f"{board.get('pending', 0)} pending, "
                  f"{board.get('leased', 0)} leased, "
                  f"{board.get('done', 0)} done"
                  + (" [STOP requested]" if status.get("stop") else "")),
    ]
    ages = board.get("lease_ages") or {}
    if ages.get("count"):
        facts.append(("lease ages", f"p50 {_num(ages.get('p50'), 3)}s, "
                                    f"p90 {_num(ages.get('p90'), 3)}s, "
                                    f"max {_num(ages.get('max'), 3)}s"))
    throughput = board.get("throughput") or {}
    if throughput:
        facts.append(("throughput",
                      f"{throughput.get('completed', 0)} result(s) in "
                      f"{_num(throughput.get('window', 0.0))}s "
                      f"({_num(throughput.get('per_second', 0.0), 4)}/s)"))
    workers: List[List[str]] = []
    for worker in status.get("workers") or []:
        beat = worker.get("heartbeat_age")
        workers.append([
            str(worker.get("id", "?")),
            _num(beat, 3) + "s ago" if beat is not None else "-",
            str(worker.get("host") or "-"),
        ])
    return facts, workers


def _compare_table(dash: Dashboard) -> Tuple[List[str], List[List[str]]]:
    headers = list(dash.group_by) + [
        "base runs", "runs", f"base {dash.compare_metric} mean",
        f"{dash.compare_metric} mean", "ratio", "significant"]
    rows: List[List[str]] = []
    for delta in dash.compare or []:
        row = [str(component) for component in delta.key]
        row += [str(delta.base_runs), str(delta.other_runs),
                _num(delta.base_mean, 2), _num(delta.other_mean, 2),
                f"{delta.ratio:.2f}x" if delta.ratio is not None else "-",
                {True: "YES", False: "no", None: "-"}[delta.significant]]
        rows.append(row)
    return headers, rows


# ---------------------------------------------------------------------------
# Markdown
# ---------------------------------------------------------------------------

def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_dashboard_markdown(dash: Dashboard) -> str:
    """The markdown twin of the HTML page (same data, same ordering)."""
    out: List[str] = [f"# Sweep dashboard — {dash.title}", ""]
    if dash.generated:
        out += [f"_generated {dash.generated}_", ""]
    out += ["## Progress", ""]
    out += [f"- **{label}:** {value}" for label, value in
            _progress_rows(dash)]
    headers, rows = _group_table(dash)
    out += ["", f"## Results by ({', '.join(dash.group_by)})", ""]
    if rows:
        out += [_md_table(headers, rows)]
    else:
        out += ["(no ledger entries yet)"]
    metrics_rows = _metrics_rows(dash)
    if metrics_rows:
        out += ["", "## Cache & retries", ""]
        out += [f"- **{label}:** {value}" for label, value in metrics_rows]
    facts, workers = _worker_section(dash)
    if facts:
        out += ["", "## Workers", ""]
        out += [f"- **{label}:** {value}" for label, value in facts]
        if workers:
            out += ["", _md_table(["worker", "heartbeat", "host"], workers)]
        else:
            out += ["", "(no live workers)"]
    if dash.robustness:
        out += ["", "## Guarantee survival", "", "```",
                format_robustness_table(dash.robustness), "```"]
    if dash.compare is not None:
        out += ["", f"## Cohort comparison vs {dash.compare_label}", ""]
        headers, rows = _compare_table(dash)
        out += [_md_table(headers, rows) if rows else "(no common groups)"]
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# HTML (self-contained: inline CSS + a tiny inline table sorter, no network)
# ---------------------------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem auto;
       max-width: 72rem; padding: 0 1rem; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #8884; }
h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .4rem 0; }
th, td { border: 1px solid #8886; padding: .25rem .55rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { cursor: pointer; background: #8882; }
td:first-child, th:first-child { text-align: left; }
dl { display: grid; grid-template-columns: max-content auto; gap: .2rem .8rem; }
dt { font-weight: 600; }
dd { margin: 0; }
pre { background: #8881; padding: .6rem; overflow-x: auto; }
.bar { font-family: monospace; }
.viol { color: #b33; font-weight: 600; }
""".strip()

# Click a header to sort its column (numeric-aware); click again to flip.
_JS = """
document.querySelectorAll("table.sortable th").forEach(function (th) {
  th.addEventListener("click", function () {
    var table = th.closest("table"), body = table.tBodies[0];
    var index = Array.prototype.indexOf.call(th.parentNode.children, th);
    var dir = th.dataset.dir === "asc" ? -1 : 1;
    th.dataset.dir = dir === 1 ? "asc" : "desc";
    var rows = Array.prototype.slice.call(body.rows);
    rows.sort(function (a, b) {
      var x = a.cells[index].textContent, y = b.cells[index].textContent;
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return (nx - ny) * dir;
      return x.localeCompare(y) * dir;
    });
    rows.forEach(function (row) { body.appendChild(row); });
  });
});
""".strip()


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = "\n".join(
        "<tr>" + "".join(f"<td>{escape(value)}</td>" for value in row)
        + "</tr>" for row in rows)
    return (f'<table class="sortable"><thead><tr>{head}</tr></thead>\n'
            f"<tbody>\n{body}\n</tbody></table>")


def _html_facts(rows: Sequence[Tuple[str, str]]) -> str:
    items = "\n".join(f"<dt>{escape(label)}</dt>"
                      f"<dd>{escape(value)}</dd>" for label, value in rows)
    return f"<dl>\n{items}\n</dl>"


def render_dashboard_html(dash: Dashboard,
                          refresh: Optional[float] = None) -> str:
    """The self-contained HTML page.

    ``refresh`` adds a ``<meta http-equiv="refresh">`` so a browser
    pointed at a ``--watch``-maintained file re-reads it on the watch
    cadence; leave it ``None`` for byte-deterministic archival output.
    """
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Sweep dashboard — {escape(dash.title)}</title>",
    ]
    if refresh is not None:
        parts.append(f'<meta http-equiv="refresh" '
                     f'content="{max(1, int(refresh))}">')
    parts += [f"<style>{_CSS}</style>", "</head><body>",
              f"<h1>Sweep dashboard — {escape(dash.title)}</h1>"]
    if dash.generated:
        parts.append(f"<p><em>generated {escape(dash.generated)} from "
                     f"{escape(dash.ledger_label)}</em></p>")
    parts += ["<h2>Progress</h2>", _html_facts(_progress_rows(dash))]
    headers, rows = _group_table(dash)
    parts.append(f"<h2>Results by ({escape(', '.join(dash.group_by))})</h2>")
    parts.append(_html_table(headers, rows) if rows
                 else "<p>(no ledger entries yet)</p>")
    metrics_rows = _metrics_rows(dash)
    if metrics_rows:
        parts += ["<h2>Cache &amp; retries</h2>", _html_facts(metrics_rows)]
    facts, workers = _worker_section(dash)
    if facts:
        parts += ["<h2>Workers</h2>", _html_facts(facts)]
        parts.append(_html_table(["worker", "heartbeat", "host"], workers)
                     if workers else "<p>(no live workers)</p>")
    if dash.robustness:
        parts += ["<h2>Guarantee survival</h2>",
                  f"<pre>{escape(format_robustness_table(dash.robustness))}"
                  f"</pre>"]
    if dash.compare is not None:
        parts.append(f"<h2>Cohort comparison vs "
                     f"{escape(dash.compare_label or '?')}</h2>")
        headers, rows = _compare_table(dash)
        parts.append(_html_table(headers, rows) if rows
                     else "<p>(no common groups)</p>")
    parts += [f"<script>{_JS}</script>", "</body></html>"]
    return "\n".join(parts) + "\n"
