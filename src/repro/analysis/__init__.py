"""Experiment drivers, result tables and fitting helpers."""

from .experiments import (
    ALGORITHMS,
    TABLE1_ALGORITHMS,
    TABLE1_FAMILIES,
    ExperimentRecord,
    run_experiment,
    run_scaling_experiment,
    run_table1_experiment,
)
from .fitting import LinearFit, PowerFit, fit_linear, fit_power_law
from .tables import (
    format_records,
    format_scaling_series,
    format_table,
    format_table1,
    summarize_scaling,
)

__all__ = [
    "ALGORITHMS",
    "ExperimentRecord",
    "LinearFit",
    "PowerFit",
    "TABLE1_ALGORITHMS",
    "TABLE1_FAMILIES",
    "fit_linear",
    "fit_power_law",
    "format_records",
    "format_scaling_series",
    "format_table",
    "format_table1",
    "run_experiment",
    "run_scaling_experiment",
    "run_table1_experiment",
    "summarize_scaling",
]
