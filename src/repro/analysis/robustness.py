"""The guarantee-survival report: which guarantees outlive fault injection.

DLE's headline claims — deterministic termination, a unique leader, round
counts linear in the shape parameters — are proved for a fault-free (if
adversarially scheduled) execution.  The fault layer
(:mod:`repro.amoebot.faults`) lets a sweep re-measure those claims under
seeded crash/delay/shape adversaries, and this module turns the resulting
run ledger into the survival table: one row per (algorithm, fault plan)
cell of the grid, reporting

``termination``
    The fraction of runs that terminated before the fault cap — the
    liveness guarantee.

``success``
    The fraction that terminated *and* passed the algorithm's own
    verification (unique leader, full follower coverage, ...).

``violations``
    Runs that terminated with a *wrong* answer (``terminated`` without
    ``succeeded``) — safety violations, the failures that matter most:
    a run that stops claiming the wrong leader is strictly worse than
    one that never stops.

``errors``
    Runs the driver aborted with an exception (``failed`` ledger lines)
    — typically a fault disconnecting a shape an algorithm assumes
    connected.

``inflation``
    Mean round inflation against the same algorithm's fault-free runs,
    matched pairwise on (family, size, seed, scheduler, engine) so the
    ratio compares a faulty run with *its own* baseline, not with a
    different shape's.

The input is any :class:`~repro.orchestrator.store.RunLedger` — the
report is a pure fold over ledger entries, so it can be regenerated from
an old sweep without re-running anything (``repro report --robustness``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "RobustnessCell",
    "format_robustness_table",
    "robustness_report",
    "robustness_rows",
]

#: Config keys identifying a run's fault-free twin for inflation pairing.
_PAIR_KEYS = ("family", "size", "seed", "scheduler", "engine")


@dataclass
class RobustnessCell:
    """Aggregated outcomes of one (algorithm, fault plan) grid cell."""

    algorithm: str
    faults: str
    runs: int = 0
    terminated: int = 0
    succeeded: int = 0
    violations: int = 0
    errors: int = 0
    rounds: List[int] = field(default_factory=list)
    #: Pairwise rounds ratios against the fault-free twin runs.
    inflations: List[float] = field(default_factory=list)

    @property
    def mean_rounds(self) -> Optional[float]:
        return sum(self.rounds) / len(self.rounds) if self.rounds else None

    @property
    def mean_inflation(self) -> Optional[float]:
        if not self.inflations:
            return None
        return sum(self.inflations) / len(self.inflations)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready row for ``repro report --robustness --json``."""
        return {
            "algorithm": self.algorithm,
            "faults": self.faults,
            "runs": self.runs,
            "terminated": self.terminated,
            "succeeded": self.succeeded,
            "violations": self.violations,
            "errors": self.errors,
            "mean_rounds": self.mean_rounds,
            "round_inflation": self.mean_inflation,
        }


def _dedupe(entries: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Latest entry per digest (a config retried or cache-served across
    resumed sweeps is one measurement); digestless entries are kept."""
    by_digest: Dict[str, Dict[str, Any]] = {}
    loose: List[Dict[str, Any]] = []
    for entry in entries:
        digest = entry.get("digest")
        if digest:
            by_digest[digest] = entry
        else:
            loose.append(entry)
    return list(by_digest.values()) + loose


def _run_outcome(entry: Dict[str, Any]) -> Tuple[bool, bool, Optional[int]]:
    """(terminated, succeeded, rounds) of one ``done`` ledger entry.

    ``terminated`` prefers the driver's explicit detail (recorded by the
    fault-aware drivers); records predating it fall back to ``succeeded``
    — for fault-free runs the two coincide on every built-in algorithm.
    """
    record = entry.get("record") or {}
    succeeded = bool(record.get("succeeded"))
    details = record.get("details") or {}
    terminated = bool(details.get("terminated", succeeded))
    rounds = record.get("rounds")
    return terminated, succeeded, (int(rounds) if rounds is not None else None)


def robustness_rows(entries: Sequence[Dict[str, Any]]) -> List[RobustnessCell]:
    """Fold ledger entries into survival cells, fault-free baselines first.

    Entries whose config carries no ``faults`` key form the baseline
    cells (``faults=""``) and feed the pairwise inflation ratios of every
    faulty cell of the same algorithm.
    """
    entries = _dedupe(entries)
    cells: Dict[Tuple[str, str], RobustnessCell] = {}
    baseline_rounds: Dict[Tuple[Any, ...], int] = {}
    for entry in entries:
        config = entry.get("config") or {}
        if not config.get("faults", "") and entry.get("status") == "done":
            terminated, succeeded, rounds = _run_outcome(entry)
            if succeeded and rounds is not None:
                key = (config.get("algorithm"),) + tuple(
                    config.get(k) for k in _PAIR_KEYS)
                baseline_rounds[key] = rounds
    for entry in entries:
        config = entry.get("config") or {}
        algorithm = str(config.get("algorithm", "?"))
        faults = str(config.get("faults", ""))
        cell = cells.setdefault((algorithm, faults),
                                RobustnessCell(algorithm, faults))
        cell.runs += 1
        if entry.get("status") != "done":
            cell.errors += 1
            continue
        terminated, succeeded, rounds = _run_outcome(entry)
        if terminated:
            cell.terminated += 1
        if succeeded:
            cell.succeeded += 1
        if terminated and not succeeded:
            cell.violations += 1
        if rounds is not None:
            cell.rounds.append(rounds)
            if faults and terminated:
                key = (algorithm,) + tuple(config.get(k)
                                           for k in _PAIR_KEYS)
                base = baseline_rounds.get(key)
                if base:
                    cell.inflations.append(rounds / base)
    return sorted(cells.values(),
                  key=lambda c: (c.faults != "", c.faults, c.algorithm))


def format_robustness_table(cells: Sequence[RobustnessCell]) -> str:
    """The survival table as aligned monospace text."""
    headers = ("algorithm", "faults", "runs", "term", "ok",
               "viol", "err", "rounds", "inflation")
    rows: List[Tuple[str, ...]] = [headers]
    for cell in cells:
        share = (lambda k: f"{k}/{cell.runs}")
        mean = cell.mean_rounds
        inflation = cell.mean_inflation
        rows.append((
            cell.algorithm,
            cell.faults or "(none)",
            str(cell.runs),
            share(cell.terminated),
            share(cell.succeeded),
            str(cell.violations),
            str(cell.errors),
            f"{mean:.1f}" if mean is not None else "-",
            f"{inflation:.2f}x" if inflation is not None else "-",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(col.ljust(width)
                               for col, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def robustness_report(ledger_path: Union[str, Path]
                      ) -> Tuple[List[RobustnessCell], str]:
    """Load a sweep ledger and build the survival cells plus the table."""
    from ..orchestrator.store import RunLedger

    ledger = RunLedger(ledger_path)
    cells = robustness_rows(list(ledger.entries()))
    return cells, format_robustness_table(cells)
