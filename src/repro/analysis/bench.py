"""Micro-benchmark harness behind ``python -m repro bench``.

The benchmark runs a fixed grid of (algorithm, family, size, engine)
configurations, times each one (best of ``repeats`` runs, which is robust
against scheduling noise) and emits a ``BENCH_<rev>.json`` report.  The
grid pairs the two activation engines on the scheduler-driven algorithms,
so the report directly shows the event-driven engine's speedup per
configuration — the performance trajectory the repository tracks.

Cross-machine comparisons use *normalized* times: every run also times a
fixed pure-Python calibration workload on the current interpreter and
divides the benchmark wall time by it.  Normalized times are stable across
machines of different absolute speed (both numerator and denominator scale
together), which is what lets CI gate on a committed baseline
(``BENCH_baseline.json``) produced on a different machine: an entry
regresses when its normalized time exceeds the baseline's by more than the
allowed fraction (25% by default).
"""

from __future__ import annotations

import gc
import json
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..grid.generators import make_shape
from .experiments import ALGORITHMS

__all__ = [
    "BENCH_KIND",
    "BenchEntry",
    "BenchReport",
    "FULL_GRID",
    "QUICK_GRID",
    "compare_to_baseline",
    "current_rev",
    "load_report",
    "run_bench",
]

BENCH_KIND = "repro-bench"

#: Engines paired on every scheduler-driven entry.
_BOTH = ("sweep", "event")

#: The quick grid runs in CI on every push: small enough to finish in well
#: under a minute of simulation, large enough that the hexagon-64 and
#: hexagon-96 DLE pairs demonstrate the event engine's asymptotic
#: advantage.  Every entry is engine-paired — OBD ignores the activation
#: engine (it is a synchronous primitive), but timing it under both keeps
#: it in the ``speedups`` map (at ~1.0x) instead of silently omitting it.
QUICK_GRID: Tuple[Tuple[str, str, int, Tuple[str, ...]], ...] = (
    ("dle", "hexagon", 10, _BOTH),
    ("dle", "hexagon", 20, _BOTH),
    ("dle", "hexagon", 64, _BOTH),
    ("dle", "hexagon", 96, _BOTH),
    ("erosion", "hexagon", 12, _BOTH),
    ("obd", "hexagon", 12, _BOTH),
)

#: The full grid adds intermediate sizes (scaling curve), a holey shape and
#: the dle+collect pipeline.
FULL_GRID: Tuple[Tuple[str, str, int, Tuple[str, ...]], ...] = QUICK_GRID + (
    ("dle", "hexagon", 32, _BOTH),
    ("dle", "hexagon", 44, _BOTH),
    ("dle", "holey", 8, _BOTH),
    ("dle+collect", "hexagon", 12, _BOTH),
    ("erosion", "hexagon", 20, _BOTH),
    ("obd", "hexagon", 20, _BOTH),
)


@dataclass
class BenchEntry:
    """One timed (algorithm, family, size, engine) configuration."""

    algorithm: str
    family: str
    size: int
    engine: str
    seconds: float
    normalized: float
    rounds: int
    succeeded: bool
    repeats: int

    @property
    def key(self) -> str:
        return f"{self.algorithm}/{self.family}/{self.size}/{self.engine}"

    def to_dict(self) -> Dict[str, object]:
        data = {"key": self.key}
        data.update(self.__dict__)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchEntry":
        return cls(
            algorithm=str(data["algorithm"]),
            family=str(data["family"]),
            size=int(data["size"]),
            engine=str(data["engine"]),
            seconds=float(data["seconds"]),
            normalized=float(data["normalized"]),
            rounds=int(data.get("rounds", 0)),
            succeeded=bool(data.get("succeeded", True)),
            repeats=int(data.get("repeats", 1)),
        )


@dataclass
class BenchReport:
    """A full benchmark run: entries plus environment metadata."""

    rev: str
    quick: bool
    repeats: int
    calibration_seconds: float
    python: str = ""
    entries: List[BenchEntry] = field(default_factory=list)

    @property
    def speedups(self) -> Dict[str, float]:
        """sweep/event wall-time ratio for every engine-paired config."""
        by_config: Dict[str, Dict[str, float]] = {}
        for entry in self.entries:
            config = f"{entry.algorithm}/{entry.family}/{entry.size}"
            by_config.setdefault(config, {})[entry.engine] = entry.seconds
        return {
            config: times["sweep"] / times["event"]
            for config, times in by_config.items()
            if "sweep" in times and "event" in times and times["event"] > 0
        }

    def entry(self, key: str) -> Optional[BenchEntry]:
        for candidate in self.entries:
            if candidate.key == key:
                return candidate
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": BENCH_KIND,
            "rev": self.rev,
            "quick": self.quick,
            "repeats": self.repeats,
            "calibration_seconds": self.calibration_seconds,
            "python": self.python,
            "entries": [entry.to_dict() for entry in self.entries],
            "speedups": {k: round(v, 3) for k, v in self.speedups.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchReport":
        if data.get("kind") != BENCH_KIND:
            raise ValueError("not a repro-bench report")
        return cls(
            rev=str(data.get("rev", "unknown")),
            quick=bool(data.get("quick", False)),
            repeats=int(data.get("repeats", 1)),
            calibration_seconds=float(data.get("calibration_seconds", 0.0)),
            python=str(data.get("python", "")),
            entries=[BenchEntry.from_dict(e) for e in data.get("entries", [])],
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def load_report(path) -> BenchReport:
    """Read a ``BENCH_*.json`` file back into a :class:`BenchReport`."""
    return BenchReport.from_dict(json.loads(Path(path).read_text()))


def current_rev() -> str:
    """Short git revision of the working tree, or the package version."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        if out:
            return out
    except (OSError, subprocess.SubprocessError):
        pass
    from .. import __version__

    return __version__


def calibrate(repeats: int = 5) -> float:
    """Seconds for a fixed pure-Python workload on this interpreter.

    Used as the denominator of normalized benchmark times, making the
    committed baseline comparable across machines of different speed.
    The workload is fixed forever (changing it would desynchronise every
    committed baseline); the repeat count only steadies the best-of
    minimum against scheduler noise.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for i in range(200_000):
            total += i * i
        best = min(best, time.perf_counter() - started)
    return best


def run_bench(grid: Sequence[Tuple[str, str, int, Tuple[str, ...]]],
              repeats: int = 3, seed: int = 0, quick: bool = False,
              only: Optional[str] = None,
              progress=None) -> BenchReport:
    """Time every (config, engine) pair of ``grid`` and build the report.

    ``only`` filters entries whose key starts with the given prefix (e.g.
    ``"dle/hexagon"``).  ``progress(key, entry)`` is called after each
    measurement.
    """
    calibration = calibrate()
    report = BenchReport(
        rev=current_rev(),
        quick=quick,
        repeats=repeats,
        calibration_seconds=calibration,
        python=".".join(str(part) for part in sys.version_info[:3]),
    )
    for algorithm, family, size, engines in grid:
        config_key = f"{algorithm}/{family}/{size}"
        if only and not config_key.startswith(only) and not any(
                f"{config_key}/{engine}".startswith(only)
                for engine in engines):
            continue
        shape = make_shape(family, size, seed=seed)
        # Time the algorithm driver directly: shape construction and shape
        # metrics (some of which are quadratic in n) are not part of the
        # simulation cost the benchmark tracks.
        driver = ALGORITHMS[algorithm]
        for engine in engines:
            best = float("inf")
            details = {}
            for _ in range(max(1, repeats)):
                # Collector pauses belong to the previous entry's garbage,
                # not to this measurement — disable the cyclic GC around
                # the timed region exactly like ``timeit`` does.
                gc_was_enabled = gc.isenabled()
                gc.collect()
                gc.disable()
                try:
                    started = time.perf_counter()
                    details = driver(shape, seed, "random", engine)
                    best = min(best, time.perf_counter() - started)
                finally:
                    if gc_was_enabled:
                        gc.enable()
            entry = BenchEntry(
                algorithm=algorithm,
                family=family,
                size=size,
                engine=engine,
                seconds=best,
                normalized=best / calibration,
                rounds=int(details.get("rounds", 0)),
                succeeded=bool(details.get("succeeded", False)),
                repeats=max(1, repeats),
            )
            report.entries.append(entry)
            if progress is not None:
                progress(entry.key, entry)
    return report


@dataclass
class BaselineComparison:
    """Outcome of gating a report against a committed baseline."""

    regressions: List[Tuple[str, float, float, float]] = field(default_factory=list)
    improvements: List[Tuple[str, float, float, float]] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new_entries: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_to_baseline(report: BenchReport, baseline: BenchReport,
                        max_regression: float = 0.25) -> BaselineComparison:
    """Compare normalized times entry-by-entry against ``baseline``.

    An entry regresses when its normalized time exceeds the baseline's by
    more than ``max_regression`` (a fraction: 0.25 allows +25%).  Entries
    present only in one report are listed, not failed — the gate should not
    break when the grid grows.
    """
    result = BaselineComparison()
    baseline_keys = {entry.key for entry in baseline.entries}
    report_keys = {entry.key for entry in report.entries}
    result.missing = sorted(baseline_keys - report_keys)
    result.new_entries = sorted(report_keys - baseline_keys)
    for entry in report.entries:
        base = baseline.entry(entry.key)
        if base is None or base.normalized <= 0:
            continue
        ratio = entry.normalized / base.normalized
        row = (entry.key, entry.normalized, base.normalized, ratio)
        if ratio > 1.0 + max_regression:
            result.regressions.append(row)
        elif ratio < 1.0 - max_regression:
            result.improvements.append(row)
    result.regressions.sort(key=lambda row: -row[3])
    result.improvements.sort(key=lambda row: row[3])
    return result
