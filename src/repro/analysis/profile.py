"""cProfile-backed phase profiler behind ``python -m repro profile``.

Perf work on this reproduction keeps flowing through the same three layers
— the geometry substrate (``repro.grid``), the activation machinery
(``repro.amoebot``) and the algorithm implementations (``repro.core`` /
``repro.baselines``) — so the profiler buckets every profiled function
into one of those **phases** and reports how the run's self-time splits
between them.  A perf PR should name the phase it attacks and show this
breakdown moving; "measured, not guessed" is the whole point of the
subcommand.

The report also carries the top functions by self-time (for drilling in)
and the usual run metadata (rounds, success, wall seconds), and can be
written as JSON (``--json``) so CI uploads machine-readable profiles as
workflow artifacts.

Phase times are additionally recorded **normalized** — divided by the same
fixed pure-Python calibration workload :mod:`repro.analysis.bench` uses —
so a committed baseline (``PROFILE_baseline.json``) is comparable across
machines, and :func:`compare_profile_to_baseline` can *gate* CI: a phase
whose normalized self-time regresses more than ``--max-regression``
(default 35%) against the committed baseline fails the build.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from ..grid.generators import make_shape
from .experiments import ALGORITHMS

__all__ = [
    "PROFILE_KIND",
    "PHASES",
    "GATED_PHASES",
    "DEFAULT_MAX_REGRESSION",
    "MIN_GATED_NORMALIZED",
    "ProfileComparison",
    "ProfileReport",
    "classify_path",
    "compare_profile_to_baseline",
    "load_profile",
    "run_profile",
    "SMOKE_CONFIG",
]

PROFILE_KIND = "repro-profile"

#: Phase buckets, matched against each profiled function's file path in
#: order (first match wins).  Anything that matches none of them (stdlib,
#: orchestration glue, the profiler itself) lands in ``other``.
PHASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("geometry", ("repro/grid/",)),
    ("activation", ("repro/amoebot/",)),
    ("algorithm", ("repro/core/", "repro/baselines/")),
)

#: The configuration ``--smoke`` runs: small enough for CI seconds, large
#: enough that every phase shows up with non-trivial self-time.
SMOKE_CONFIG = {"algorithm": "dle", "family": "hexagon", "size": 16,
                "seed": 0, "engine": "event"}

#: Phases the CI gate compares against the committed baseline.  ``other``
#: (stdlib + glue) is deliberately exempt: it is dominated by interpreter
#: noise rather than by this package's code.
GATED_PHASES: Tuple[str, ...] = ("geometry", "activation", "algorithm")

#: Allowed normalized-phase-time regression vs the baseline (0.35 = +35%).
DEFAULT_MAX_REGRESSION = 0.35

#: Phases whose *baseline* normalized time is below this are never gated:
#: at that scale the cProfile numbers are scheduler noise, and a ratio of
#: two tiny numbers gates nothing meaningful.
MIN_GATED_NORMALIZED = 0.05


def classify_path(filename: str) -> str:
    """The phase bucket of a profiled function's source path."""
    normalized = filename.replace("\\", "/")
    for phase, fragments in PHASES:
        for fragment in fragments:
            if fragment in normalized:
                return phase
    return "other"


@dataclass
class ProfileReport:
    """One profiled run: phase breakdown plus drill-down data."""

    algorithm: str
    family: str
    size: int
    seed: int
    engine: str
    order: str
    seconds: float
    rounds: int
    succeeded: bool
    #: phase -> summed self-time (tottime) of its functions, seconds.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Top functions by self-time: (phase, location, calls, tottime, cumtime).
    top: List[Tuple[str, str, int, float, float]] = field(default_factory=list)
    #: Seconds of the fixed calibration workload on this interpreter (the
    #: :func:`repro.analysis.bench.calibrate` denominator); 0 in reports
    #: predating the baseline gate.
    calibration_seconds: float = 0.0

    @property
    def total_self_time(self) -> float:
        return sum(self.phases.values())

    def normalized_phases(self) -> Dict[str, float]:
        """Phase self-times divided by the calibration time.

        Machine-independent (slow machines scale both numerator and
        denominator), which is what makes the committed baseline gate
        meaningful on arbitrary CI runners.  Empty when the report carries
        no calibration (older reports).
        """
        if self.calibration_seconds <= 0:
            return {}
        return {phase: t / self.calibration_seconds
                for phase, t in self.phases.items()}

    def phase_fractions(self) -> Dict[str, float]:
        """Each phase's share of the total profiled self-time."""
        total = self.total_self_time
        if total <= 0:
            return {phase: 0.0 for phase in self.phases}
        return {phase: t / total for phase, t in self.phases.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": PROFILE_KIND,
            "algorithm": self.algorithm,
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "engine": self.engine,
            "order": self.order,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "succeeded": self.succeeded,
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "phase_fractions": {k: round(v, 4)
                                for k, v in self.phase_fractions().items()},
            "calibration_seconds": round(self.calibration_seconds, 6),
            "normalized_phases": {k: round(v, 4)
                                  for k, v in self.normalized_phases().items()},
            "top": [
                {"phase": phase, "function": location, "calls": calls,
                 "tottime": round(tottime, 6), "cumtime": round(cumtime, 6)}
                for phase, location, calls, tottime, cumtime in self.top
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProfileReport":
        if data.get("kind") != PROFILE_KIND:
            raise ValueError("not a repro-profile report")
        report = cls(
            algorithm=str(data["algorithm"]),
            family=str(data["family"]),
            size=int(data["size"]),
            seed=int(data.get("seed", 0)),
            engine=str(data.get("engine", "sweep")),
            order=str(data.get("order", "random")),
            seconds=float(data.get("seconds", 0.0)),
            rounds=int(data.get("rounds", 0)),
            succeeded=bool(data.get("succeeded", False)),
            phases={str(k): float(v)
                    for k, v in dict(data.get("phases", {})).items()},
            calibration_seconds=float(data.get("calibration_seconds", 0.0)),
        )
        report.top = [
            (str(entry["phase"]), str(entry["function"]),
             int(entry["calls"]), float(entry["tottime"]),
             float(entry["cumtime"]))
            for entry in data.get("top", [])
        ]
        return report

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def load_profile(path) -> ProfileReport:
    """Load a saved ``ProfileReport`` JSON file."""
    return ProfileReport.from_dict(json.loads(Path(path).read_text()))


@dataclass
class ProfileComparison:
    """Outcome of gating a profile against a committed baseline.

    ``regressions`` rows are ``(phase, current, baseline, ratio)`` in
    normalized units; ``skipped`` names phases too small (or missing) to
    gate.  ``ok`` is what CI checks.
    """

    max_regression: float
    regressions: List[Tuple[str, float, float, float]] = field(
        default_factory=list)
    improvements: List[Tuple[str, float, float, float]] = field(
        default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_profile_to_baseline(report: ProfileReport,
                                baseline: ProfileReport,
                                max_regression: float = DEFAULT_MAX_REGRESSION,
                                ) -> ProfileComparison:
    """Gate a profile's per-phase normalized times against a baseline.

    Only the :data:`GATED_PHASES` are compared, and a phase is skipped
    when either report lacks calibration data or the baseline's normalized
    time is under :data:`MIN_GATED_NORMALIZED` (gating noise against noise
    would make the check flaky, not strict).  A phase *regresses* when its
    normalized time exceeds the baseline's by more than ``max_regression``;
    improvements beyond the same margin are reported informationally.
    """
    current = report.normalized_phases()
    base = baseline.normalized_phases()
    comparison = ProfileComparison(max_regression=float(max_regression))
    for phase in GATED_PHASES:
        base_time = base.get(phase)
        cur_time = current.get(phase)
        if (base_time is None or cur_time is None
                or base_time < MIN_GATED_NORMALIZED):
            comparison.skipped.append(phase)
            continue
        ratio = cur_time / base_time
        row = (phase, cur_time, base_time, ratio)
        if ratio > 1.0 + comparison.max_regression:
            comparison.regressions.append(row)
        elif ratio < 1.0 - comparison.max_regression:
            comparison.improvements.append(row)
    return comparison


def run_profile(algorithm: str = "dle", family: str = "hexagon",
                size: int = 16, seed: int = 0, order: str = "random",
                engine: str = "event", top: int = 15) -> ProfileReport:
    """Profile one experiment driver run and aggregate it into phases.

    The profiled region is exactly what ``repro bench`` times: the
    algorithm driver, excluding shape construction.
    """
    from .bench import calibrate

    try:
        driver = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    shape = make_shape(family, size, seed=seed)
    # Warm-up on a toy instance: one-time costs (lazy imports, interned
    # ring caches) would otherwise land in the profile as "other" noise.
    driver(make_shape(family, 2, seed=seed), seed, order, engine)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    details = driver(shape, seed, order, engine)
    profiler.disable()
    seconds = time.perf_counter() - started

    stats = pstats.Stats(profiler)
    phases: Dict[str, float] = {phase: 0.0 for phase, _ in PHASES}
    phases["other"] = 0.0
    rows: List[Tuple[str, str, int, float, float]] = []
    for (filename, lineno, funcname), data in stats.stats.items():
        _, ncalls, tottime, cumtime, _ = data
        phase = classify_path(filename)
        phases[phase] += tottime
        location = f"{Path(filename).name}:{lineno}({funcname})"
        rows.append((phase, location, ncalls, tottime, cumtime))
    rows.sort(key=lambda row: -row[3])

    return ProfileReport(
        algorithm=algorithm,
        family=family,
        size=size,
        seed=seed,
        engine=engine,
        order=order,
        seconds=seconds,
        rounds=int(details.get("rounds", 0)),
        succeeded=bool(details.get("succeeded", False)),
        phases=phases,
        top=rows[:max(0, top)],
        calibration_seconds=calibrate(),
    )
