"""Plain-text report formatting for the reproduced tables and figures.

The benchmark harness and the examples print their results through these
helpers, so that the artefacts recorded in EXPERIMENTS.md can be regenerated
verbatim with a single function call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .experiments import ExperimentRecord, TABLE1_ALGORITHMS
from .fitting import fit_linear, fit_power_law

__all__ = [
    "format_table",
    "format_records",
    "format_table1",
    "format_scaling_series",
    "summarize_scaling",
]


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), max((len(r[i]) for r in body), default=0))
        for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def format_records(records: Sequence[ExperimentRecord],
                   title: Optional[str] = None) -> str:
    """Render experiment records with the standard column set."""
    columns = ["algorithm", "family", "size", "n", "D", "D_A", "D_G",
               "L_out", "holes", "rounds", "ok"]
    return format_table([r.as_row() for r in records], columns, title=title)


def format_table1(records: Sequence[ExperimentRecord]) -> str:
    """The Table 1 reproduction: one block per algorithm with the paper row
    it stands in for, followed by its measurements on the common shapes."""
    by_algorithm: Dict[str, List[ExperimentRecord]] = defaultdict(list)
    for record in records:
        by_algorithm[record.algorithm].append(record)
    blocks: List[str] = []
    for algorithm, algorithm_records in sorted(by_algorithm.items()):
        paper_row = TABLE1_ALGORITHMS.get(algorithm, "(not in Table 1)")
        title = f"== {algorithm} — {paper_row}"
        blocks.append(format_records(algorithm_records, title=title))
    return "\n\n".join(blocks)


def format_scaling_series(records: Sequence[ExperimentRecord], parameter: str,
                          title: Optional[str] = None) -> str:
    """Render a scaling series: the named shape parameter vs. rounds, with a
    linear and a power-law fit of rounds against the parameter."""
    rows = []
    for record in records:
        row = record.as_row()
        rows.append({
            "family": row["family"],
            "size": row["size"],
            parameter: row[parameter],
            "rounds": row["rounds"],
            "rounds/" + parameter: (
                row["rounds"] / row[parameter] if row[parameter] else float("nan")
            ),
            "ok": row["ok"],
        })
    table = format_table(rows, title=title)
    summary = summarize_scaling(records, parameter)
    fit_lines = [
        "",
        f"linear fit  : rounds ≈ {summary['slope']:.2f} * {parameter} "
        f"+ {summary['intercept']:.1f}   (R² = {summary['linear_r2']:.3f})",
        f"power fit   : rounds ≈ {summary['scale']:.2f} * {parameter}^"
        f"{summary['exponent']:.2f}   (R² = {summary['power_r2']:.3f})",
    ]
    return table + "\n" + "\n".join(fit_lines)


def summarize_scaling(records: Sequence[ExperimentRecord],
                      parameter: str) -> Dict[str, float]:
    """Fit rounds against a shape parameter and return the fit summary."""
    xs: List[float] = []
    ys: List[float] = []
    for record in records:
        value = record.as_row()[parameter]
        xs.append(float(value))
        ys.append(float(record.rounds))
    linear = fit_linear(xs, ys)
    power = fit_power_law(xs, ys)
    return {
        "slope": linear.slope,
        "intercept": linear.intercept,
        "linear_r2": linear.r_squared,
        "exponent": power.exponent,
        "scale": power.scale,
        "power_r2": power.r_squared,
        "points": float(len(xs)),
    }
