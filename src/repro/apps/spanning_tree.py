"""Leader-rooted spanning-tree construction (a downstream application).

The paper motivates leader election as "an important module in algorithms
for various other tasks" — coating, shape formation and bridging all start
by electing a leader and then coordinating around it.  This module provides
the simplest such downstream task as a faithful per-activation amoebot
algorithm: once a unique leader exists (and the system is connected again,
e.g. after Algorithm Collect), every particle chooses a parent port towards
the leader, producing a spanning tree of the particle graph in ``O(D)``
rounds.

The tree is the standard building block for the follow-up algorithms in the
amoebot literature (convergecast, counting, shape formation), so the example
``examples/election_to_spanning_tree.py`` demonstrates the intended
composition: OBD → DLE → Collect → spanning tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..amoebot.algorithm import (
    STATUS_KEY,
    STATUS_LEADER,
    AmoebotAlgorithm,
    StatusMixin,
)
from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem

__all__ = ["SpanningTreeAlgorithm", "SpanningTreeError", "verify_spanning_tree"]

IN_TREE_KEY = "tree_joined"
PARENT_PORT_KEY = "tree_parent_port"
TREE_DONE_KEY = "tree_done"


class SpanningTreeError(RuntimeError):
    """Raised when the constructed structure is not a spanning tree."""


class SpanningTreeAlgorithm(AmoebotAlgorithm, StatusMixin):
    """Grow a spanning tree rooted at the (already elected) leader.

    Every particle stores whether it has joined the tree and, except for the
    leader, the port of its head that leads to its parent's head.  A
    particle joins as soon as it sees a joined neighbour; the adversarial
    scheduler can therefore delay but not prevent progress, and the tree is
    complete after at most ``eccentricity(leader) + 1`` rounds.
    """

    name = "spanning-tree"

    def setup(self, system: ParticleSystem) -> None:
        if not system.is_connected():
            raise ValueError(
                "spanning-tree construction requires a connected system "
                "(run Algorithm Collect first)"
            )
        if not system.all_contracted():
            raise ValueError("spanning-tree construction expects contracted particles")
        leaders = [p for p in system.particles()
                   if p.get(STATUS_KEY) == STATUS_LEADER]
        if len(leaders) != 1:
            raise ValueError(
                f"spanning-tree construction requires exactly one leader, "
                f"found {len(leaders)}"
            )
        for particle in system.particles():
            particle[IN_TREE_KEY] = particle.get(STATUS_KEY) == STATUS_LEADER
            particle[PARENT_PORT_KEY] = None
            particle[TREE_DONE_KEY] = False

    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        return bool(particle.get(TREE_DONE_KEY, False))

    def activate(self, particle: Particle, system: ParticleSystem) -> None:
        neighbors = system.neighbors_of(particle)
        if not particle[IN_TREE_KEY]:
            # Join through the first joined neighbour (deterministic order).
            for q in neighbors:
                if q.get(IN_TREE_KEY):
                    particle[IN_TREE_KEY] = True
                    particle[PARENT_PORT_KEY] = particle.port_between(
                        particle.head, q.head)
                    break
        if particle[IN_TREE_KEY] and all(q.get(IN_TREE_KEY) for q in neighbors):
            particle[TREE_DONE_KEY] = True

    # -- inspection ---------------------------------------------------------

    @staticmethod
    def parent_of(particle: Particle, system: ParticleSystem) -> Optional[Particle]:
        """The parent particle of ``particle`` in the constructed tree."""
        port = particle.get(PARENT_PORT_KEY)
        if port is None:
            return None
        return system.particle_at(particle.head_neighbor(port))


def verify_spanning_tree(system: ParticleSystem) -> Dict[int, Optional[int]]:
    """Check that the constructed parent pointers form a spanning tree rooted
    at the leader and return the parent map (particle id -> parent id).

    Raises :class:`SpanningTreeError` when a particle did not join, a parent
    pointer is dangling, or following parents does not reach the leader.
    """
    parents: Dict[int, Optional[int]] = {}
    leader_id: Optional[int] = None
    for particle in system.particles():
        if not particle.get(IN_TREE_KEY):
            raise SpanningTreeError(f"particle at {particle.head} never joined")
        port = particle.get(PARENT_PORT_KEY)
        if particle.get(STATUS_KEY) == STATUS_LEADER:
            leader_id = particle.particle_id
            parents[particle.particle_id] = None
            continue
        if port is None:
            raise SpanningTreeError(
                f"non-leader particle at {particle.head} has no parent"
            )
        parent = system.particle_at(particle.head_neighbor(port))
        if parent is None:
            raise SpanningTreeError(
                f"parent port of particle at {particle.head} points at an "
                "empty point"
            )
        parents[particle.particle_id] = parent.particle_id
    if leader_id is None:
        raise SpanningTreeError("no leader found")
    # Every particle must reach the leader without cycles.
    for start in parents:
        seen = set()
        current = start
        while current != leader_id:
            if current in seen:
                raise SpanningTreeError("cycle in parent pointers")
            seen.add(current)
            nxt = parents[current]
            if nxt is None:
                raise SpanningTreeError("non-leader root in parent pointers")
            current = nxt
    return parents
