"""Downstream applications built on top of the elected leader."""

from .spanning_tree import (
    SpanningTreeAlgorithm,
    SpanningTreeError,
    verify_spanning_tree,
)

__all__ = ["SpanningTreeAlgorithm", "SpanningTreeError", "verify_spanning_tree"]
