"""D-rules: determinism hazards.

Every guarantee the harness ships — trace-identical engines,
byte-identical ledgers across transports, restore ≡ continue — assumes
the simulation draws randomness only from seeded generators and never
lets hash-order leak into ordered output.  These rules enforce that
statically:

``D101`` *unseeded-random*
    Calls into the process-global stdlib RNG (``random.shuffle`` and
    friends), ``random.SystemRandom``, or numpy's legacy global RNG
    (``np.random.rand`` …).  Seeded construction — ``random.Random(s)``,
    ``np.random.default_rng(s)``, ``Generator``/``MT19937``/
    ``SeedSequence`` — is the sanctioned plumbing and is allowed.

``D102`` *unordered-iteration*
    ``set``/``frozenset`` values iterated into *ordered* output:
    ``list(s)`` / ``tuple(s)``, list comprehensions over sets, or
    ``for`` loops over sets whose bodies ``append``/``extend``/``yield``.
    Order-insensitive consumption (``sorted``, ``len``, ``min``/``max``,
    membership, building another set) is fine.  Tracks set-typed local
    variables, ``Set[...]``-annotated attributes and direct set
    expressions.

``D103`` *wallclock-in-digest*
    ``time.*`` / ``os.urandom`` / ``uuid.*`` / ``id()`` inside functions
    that construct digests or cache keys (detected by a ``hashlib`` call
    or a digest-ish name): a timestamp in a digest breaks cache identity
    across runs.

``D104`` *unsorted-json-digest*
    ``json.dumps`` without ``sort_keys=True`` in those same digest
    functions: dict insertion order is deterministic per construction
    site but not across code paths, so canonical forms must sort.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from .base import (
    Finding,
    ModuleContext,
    Rule,
    call_name,
    dotted_name,
    iter_functions,
    register_rule,
)

__all__ = [
    "UnseededRandomRule",
    "UnorderedIterationRule",
    "WallclockInDigestRule",
    "UnsortedJsonDigestRule",
]

#: Module-level stdlib ``random`` functions that use the shared global RNG.
GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

#: Seeded / explicitly-parameterised numpy.random entry points.
NUMPY_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "MT19937", "PCG64", "Philox", "SFC64",
    "SeedSequence", "BitGenerator", "RandomState",
})


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> imported dotted module/name, from top-level imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


@register_rule
class UnseededRandomRule(Rule):
    code = "D101"
    name = "unseeded-random"
    description = ("no process-global RNG: random.* module functions, "
                   "SystemRandom and numpy's legacy global generator are "
                   "banned outside seeded plumbing")
    roles = ("src", "examples", "benchmarks")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node)
            if target is None:
                continue
            resolved = self._resolve(target, aliases)
            if resolved is None:
                continue
            yield self.finding(module, node, resolved)

    def _resolve(self, target: str,
                 aliases: Dict[str, str]) -> Optional[str]:
        head, _, rest = target.partition(".")
        origin = aliases.get(head)
        if origin is None:
            return None
        full = origin + ("." + rest if rest else "")
        # from random import shuffle  ->  full == "random.shuffle"
        if full.startswith("random."):
            func = full.split(".", 1)[1]
            if func in GLOBAL_RANDOM_FUNCS:
                return (f"call to the process-global RNG "
                        f"'random.{func}'; draw from a seeded "
                        f"random.Random instead")
            if func == "SystemRandom":
                return ("random.SystemRandom is entropy-backed and can "
                        "never be made reproducible; use a seeded "
                        "random.Random")
        if full.startswith("numpy.random."):
            func = full.split(".", 2)[2].split(".")[0]
            if func not in NUMPY_RANDOM_ALLOWED:
                return (f"call to numpy's legacy global RNG "
                        f"'numpy.random.{func}'; use "
                        f"numpy.random.default_rng(seed) / Generator")
        return None


# ---------------------------------------------------------------------------
# D102 — set iteration escaping into ordered output
# ---------------------------------------------------------------------------

_SET_ANNOTATIONS = re.compile(r"^(typing\.)?(Set|FrozenSet|set|frozenset)$")
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset",
    "iter", "next", "enumerate",
})
_ORDERED_BUILDERS = frozenset({"list", "tuple"})


def _is_set_expr(node: ast.AST, known: Set[str]) -> bool:
    """Does ``node`` evaluate to a set, as far as local syntax can tell?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
    name = dotted_name(node)
    return name is not None and name in known


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted_name(target)
    return name is not None and _SET_ANNOTATIONS.match(name) is not None


class _FunctionSetScan:
    """Per-function view: which names/attributes are set-valued here."""

    def __init__(self, func: ast.AST, class_sets: Set[str]) -> None:
        self.known: Set[str] = set(class_sets)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if _is_set_expr(node.value, self.known):
                    for target in node.targets:
                        name = dotted_name(target)
                        if name is not None:
                            self.known.add(name)
            elif isinstance(node, ast.AnnAssign):
                name = dotted_name(node.target)
                if name is None:
                    continue
                if (_annotation_is_set(node.annotation)
                        or (node.value is not None
                            and _is_set_expr(node.value, self.known))):
                    self.known.add(name)


def _class_set_attributes(cls: ast.ClassDef) -> Set[str]:
    """``self.x`` attributes a class binds to set values anywhere."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, attrs):
            for target in node.targets:
                name = dotted_name(target)
                if name is not None and name.startswith("self."):
                    attrs.add(name)
        elif isinstance(node, ast.AnnAssign):
            name = dotted_name(node.target)
            if (name is not None and name.startswith("self.")
                    and _annotation_is_set(node.annotation)):
                attrs.add(name)
    return attrs


def _body_orders_output(body: List[ast.stmt]) -> bool:
    """Does a loop body push elements into ordered output?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.split(".")[-1] in (
                        "append", "extend", "insert", "write"):
                    return True
    return False


@register_rule
class UnorderedIterationRule(Rule):
    code = "D102"
    name = "unordered-iteration"
    description = ("set iteration must not escape into ordered output "
                   "(list()/tuple()/comprehensions/append loops) without "
                   "sorted()")
    roles = ("src",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # Attribute knowledge is collected per class, name knowledge per
        # function; module-level code gets an empty class scope.
        class_sets: Dict[ast.AST, Set[str]] = {}
        func_owner: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                sets = _class_set_attributes(node)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        func_owner[child] = sets
        for func in iter_functions(module.tree):
            scan = _FunctionSetScan(func, func_owner.get(func, set()))
            yield from self._check_scope(module, func, scan.known)

    def _check_scope(self, module: ModuleContext, func: ast.AST,
                     known: Set[str]) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if (name in _ORDERED_BUILDERS and len(node.args) == 1
                        and _is_set_expr(node.args[0], known)):
                    yield self.finding(
                        module, node,
                        f"{name}() over a set produces hash-ordered "
                        f"output; wrap the set in sorted()")
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, known):
                        yield self.finding(
                            module, node,
                            "list comprehension over a set produces "
                            "hash-ordered output; iterate sorted(...)")
            elif isinstance(node, ast.For):
                if (_is_set_expr(node.iter, known)
                        and _body_orders_output(node.body)):
                    yield self.finding(
                        module, node,
                        "for-loop over a set feeds ordered output "
                        "(append/extend/yield); iterate sorted(...)")


# ---------------------------------------------------------------------------
# D103 / D104 — nondeterminism flowing into digests
# ---------------------------------------------------------------------------

_DIGEST_NAME = re.compile(r"digest|cache_key|fingerprint|checkpoint_name",
                          re.IGNORECASE)
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns", "os.urandom",
    "uuid.uuid1", "uuid.uuid4", "id",
})


def _digest_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Functions that construct digests: named like one, or calling
    ``hashlib``."""
    for func in iter_functions(tree):
        name = getattr(func, "name", "")
        if _DIGEST_NAME.search(name):
            yield func
            continue
        for node in ast.walk(func):
            target = call_name(node) if isinstance(node, ast.Call) else None
            if target is not None and target.startswith("hashlib."):
                yield func
                break


@register_rule
class WallclockInDigestRule(Rule):
    code = "D103"
    name = "wallclock-in-digest"
    description = ("time.*/os.urandom/uuid/id() must not flow into digest "
                   "or cache-key construction")
    roles = ("src",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for func in _digest_functions(module.tree):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = call_name(node)
                if target in _WALLCLOCK_CALLS:
                    yield self.finding(
                        module, node,
                        f"'{target}' inside digest-constructing function "
                        f"'{getattr(func, 'name', '?')}' makes the digest "
                        f"run-dependent")


@register_rule
class UnsortedJsonDigestRule(Rule):
    code = "D104"
    name = "unsorted-json-digest"
    description = ("json.dumps feeding a digest must pass sort_keys=True "
                   "for a canonical byte form")
    roles = ("src",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for func in _digest_functions(module.tree):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) != "json.dumps":
                    continue
                sort_keys = False
                for keyword in node.keywords:
                    if keyword.arg == "sort_keys":
                        value = keyword.value
                        sort_keys = not (isinstance(value, ast.Constant)
                                         and value.value is False)
                if not sort_keys:
                    yield self.finding(
                        module, node,
                        f"json.dumps without sort_keys=True in digest "
                        f"function '{getattr(func, 'name', '?')}' is not "
                        f"a canonical byte form")
