"""L-rules: lock discipline in the threaded coordinator.

``repro.orchestrator.net`` runs one protocol-handler thread per
connection over shared state (``TaskBoard``, the worker table); every
lock there is a plain non-reentrant ``threading.Lock``.  Two statically
checkable invariants keep that safe:

``L401`` *lock-order-cycle*
    Build the acquires-while-holding graph per class: an edge A → B
    means some code path acquires B while holding A, either by lexical
    ``with`` nesting or by calling (transitively, same class) a method
    that acquires B.  A cycle in that graph is a lock-ordering deadlock
    waiting for the right thread interleaving.

``L402`` *lock-reacquired*
    A path that re-acquires a lock it already holds: instant deadlock
    with ``threading.Lock`` (they are not reentrant).  This is the
    invariant behind ``TaskBoard.note()`` owning a *separate*
    ``_counter_lock`` — callers may hold the board lock.

Lock attributes are recognised by name (``lock`` / ``mutex`` / ``cv`` /
``cond``, case-insensitive), matching this codebase's naming style.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import Finding, ModuleContext, Rule, dotted_name, register_rule

__all__ = ["LockOrderCycleRule", "LockReacquiredRule"]

_LOCK_NAME = re.compile(r"lock|mutex|(^|_)cv($|_)|cond", re.IGNORECASE)


def _lock_target(node: ast.AST) -> Optional[str]:
    """``self._lock`` (or similar) when a with-item acquires a lock."""
    name = dotted_name(node)
    if name is None or not name.startswith("self."):
        return None
    attr = name.split(".", 1)[1]
    if _LOCK_NAME.search(attr):
        return attr
    return None


class _ClassLockScan(ast.NodeVisitor):
    """One class's lock behaviour: per-method acquires, nesting edges,
    and calls made while holding locks."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        #: method -> locks it acquires directly.
        self.acquires: Dict[str, Set[str]] = {}
        #: (held, acquired, node) direct lexical nestings.
        self.nest_edges: List[Tuple[str, str, ast.AST]] = []
        #: (held, callee-method, node) same-class calls under a lock.
        self.held_calls: List[Tuple[str, str, ast.AST]] = []
        #: (lock, node) lexical re-acquisitions.
        self.reacquired: List[Tuple[str, ast.AST]] = []
        self._method: Optional[str] = None
        self._held: List[str] = []
        for item in cls.body:
            if isinstance(item, ast.FunctionDef):
                self._method = item.name
                self.acquires.setdefault(item.name, set())
                for stmt in item.body:
                    self.visit(stmt)
        self._method = None

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = _lock_target(item.context_expr)
            if lock is None:
                continue
            if self._method is not None:
                self.acquires[self._method].add(lock)
            if lock in self._held:
                self.reacquired.append((lock, item.context_expr))
            for held in self._held:
                if held != lock:
                    self.nest_edges.append((held, lock, item.context_expr))
            acquired.append(lock)
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self._held[len(self._held) - len(acquired):]

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.startswith("self.") and self._held:
            method = name.split(".", 1)[1]
            if "." not in method:
                for held in self._held:
                    self.held_calls.append((held, method, node))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested function: conservatively scan with the current held set.
        for stmt in node.body:
            self.visit(stmt)


def _transitive_acquires(scan: _ClassLockScan) -> Dict[str, Set[str]]:
    """method -> every lock a call to it may acquire (fixpoint over the
    same-class call graph)."""
    callee_graph: Dict[str, Set[str]] = {m: set() for m in scan.acquires}
    for item in scan.cls.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.startswith("self."):
                    method = name.split(".", 1)[1]
                    if "." not in method and method in callee_graph:
                        callee_graph[item.name].add(method)
    result = {m: set(locks) for m, locks in scan.acquires.items()}
    changed = True
    while changed:
        changed = False
        for method in sorted(result):
            for callee in sorted(callee_graph.get(method, ())):
                extra = result.get(callee, set()) - result[method]
                if extra:
                    result[method] |= extra
                    changed = True
    return result


def _find_cycle(edges: Dict[str, Set[str]]) -> Optional[List[str]]:
    """A lock cycle as a path ``[a, b, ..., a]``, or None."""
    visiting: Set[str] = set()
    visited: Set[str] = set()
    path: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        if node in visiting:
            return path[path.index(node):] + [node]
        if node in visited:
            return None
        visiting.add(node)
        path.append(node)
        for target in sorted(edges.get(node, ())):
            cycle = visit(target)
            if cycle is not None:
                return cycle
        path.pop()
        visiting.discard(node)
        visited.add(node)
        return None

    for start in sorted(edges):
        cycle = visit(start)
        if cycle is not None:
            return cycle
    return None


class _LockRuleBase(Rule):
    def _scans(self, module: ModuleContext) -> Iterator[_ClassLockScan]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                scan = _ClassLockScan(node)
                if any(scan.acquires.values()):
                    yield scan


@register_rule
class LockOrderCycleRule(_LockRuleBase):
    code = "L401"
    name = "lock-order-cycle"
    description = ("the acquires-while-holding graph of a class must be "
                   "acyclic (cycles deadlock under the right thread "
                   "interleaving)")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for scan in self._scans(module):
            transitive = _transitive_acquires(scan)
            edges: Dict[str, Set[str]] = {}
            for held, acquired, _node in scan.nest_edges:
                edges.setdefault(held, set()).add(acquired)
            for held, callee, _node in scan.held_calls:
                for acquired in transitive.get(callee, ()):
                    if acquired != held:
                        edges.setdefault(held, set()).add(acquired)
            cycle = _find_cycle(edges)
            if cycle is not None:
                yield self.finding(
                    module, scan.cls,
                    f"lock-order cycle in class {scan.cls.name}: "
                    f"{' -> '.join(cycle)}; impose one global order")


@register_rule
class LockReacquiredRule(_LockRuleBase):
    code = "L402"
    name = "lock-reacquired"
    description = ("a non-reentrant lock must never be re-acquired on a "
                   "path that already holds it")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for scan in self._scans(module):
            for lock, node in scan.reacquired:
                yield self.finding(
                    module, node,
                    f"'{lock}' re-acquired while already held: "
                    f"threading.Lock is not reentrant, this deadlocks")
            transitive = _transitive_acquires(scan)
            for held, callee, node in scan.held_calls:
                if held in transitive.get(callee, ()):
                    yield self.finding(
                        module, node,
                        f"call to self.{callee}() while holding "
                        f"'{held}', which {callee}() (re-)acquires: "
                        f"threading.Lock is not reentrant, this deadlocks")
