"""A-rules: public-API hygiene.

``A501`` *dangling-all-export*
    Every name in a module's ``__all__`` must actually be bound at module
    top level (def / class / import / assignment).  A dangling entry
    breaks ``from module import *`` and — for ``repro.api`` — the facade
    compatibility promise itself.

``A502`` *facade-only-import*
    ``examples/`` and ``benchmarks/`` are the facade's consumers: they
    import ``repro`` **only** through ``repro.api``.  Importing an
    internal module from there couples published material to package
    layout the compatibility promise explicitly does not cover.

``A503`` *deprecated-kwarg*
    The keyword surfaces were unified on ``order=`` / ``seed=`` in PR 7;
    ``scheduler_order=`` and ``rng=`` survive only as DeprecationWarning
    shims for third-party callers.  First-party code must not use them
    (the shims are exercised by dedicated tests, where this rule is off).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .base import Finding, ModuleContext, Rule, register_rule

__all__ = [
    "DanglingAllExportRule",
    "FacadeOnlyImportRule",
    "DeprecatedKwargRule",
]

_DEPRECATED_KWARGS = frozenset({"scheduler_order", "rng"})

#: Call targets whose ``rng=`` kwarg is the deprecated seed alias.  (Other
#: functions may legitimately take a live ``rng=`` generator argument —
#: e.g. ``decode_rng(data, rng=...)`` — so ``rng=`` is only flagged on the
#: run-entry surfaces the PR 7 shim actually covers.)
_RNG_SHIM_TARGETS = frozenset({
    "run_algorithm", "make_scheduler", "run_experiment", "elect_leader",
    "elect_leader_known_boundary", "run_erosion_election",
    "run_randomized_election", "run_scaling_experiment",
    "run_table1_experiment", "Scheduler", "SequentialScheduler",
    "EventDrivenScheduler",
})


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports / fallbacks bind at runtime too.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        bound.add((alias.asname or alias.name).split(".")[0])
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                bound.add(name_node.id)
                elif isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                    bound.add(sub.name)
    return bound


def _all_entries(tree: ast.Module) -> List[ast.Constant]:
    """The string constants of a top-level ``__all__`` list/tuple."""
    entries: List[ast.Constant] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(target, ast.Name) and target.id == "__all__"
                   for target in node.targets):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    entries.append(element)
    return entries


@register_rule
class DanglingAllExportRule(Rule):
    code = "A501"
    name = "dangling-all-export"
    description = ("every __all__ entry must be bound at module top "
                   "level")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        entries = _all_entries(module.tree)
        if not entries:
            return
        bound = _top_level_bindings(module.tree)
        for entry in entries:
            if entry.value not in bound:
                yield self.finding(
                    module, entry,
                    f"__all__ exports '{entry.value}' but the module "
                    f"never binds it")


@register_rule
class FacadeOnlyImportRule(Rule):
    code = "A502"
    name = "facade-only-import"
    description = ("examples and benchmarks import repro only through "
                   "the repro.api facade")
    roles = ("examples", "benchmarks")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                origin = node.module or ""
                if (origin == "repro" and any(alias.name != "api"
                                              for alias in node.names)):
                    yield self.finding(
                        module, node,
                        "import repro internals via 'from repro.api "
                        "import ...' — only the facade is covered by "
                        "the compatibility promise")
                elif (origin.startswith("repro.")
                        and origin != "repro.api"):
                    yield self.finding(
                        module, node,
                        f"import from internal module '{origin}'; use "
                        f"'from repro.api import ...' — only the facade "
                        f"is covered by the compatibility promise")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if (alias.name.startswith("repro.")
                            and alias.name != "repro.api"):
                        yield self.finding(
                            module, node,
                            f"import of internal module '{alias.name}'; "
                            f"use 'from repro.api import ...'")


@register_rule
class DeprecatedKwargRule(Rule):
    code = "A503"
    name = "deprecated-kwarg"
    description = ("first-party code must not pass the deprecated "
                   "scheduler_order=/rng= kwargs (unified on "
                   "order=/seed= in PR 7)")
    roles = ("src", "examples", "benchmarks")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        from .base import call_name

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = call_name(node)
            tail = target.split(".")[-1] if target else ""
            for keyword in node.keywords:
                if keyword.arg == "rng" and tail not in _RNG_SHIM_TARGETS:
                    continue
                if keyword.arg in _DEPRECATED_KWARGS:
                    replacement = ("order=" if keyword.arg
                                   == "scheduler_order" else "seed=")
                    yield self.finding(
                        module, node,
                        f"deprecated keyword '{keyword.arg}='; use "
                        f"{replacement} (the shim warns and will be "
                        f"removed)")
