"""The lint runner: path walking, role assignment, reports.

:func:`lint_paths` is what ``python -m repro lint`` and the CI gate
call: walk the targets (files or directories) in sorted order — the
linter's own output is deterministic, of course — assign each file a
*role* from its location, run every registered rule that covers the
role, and return the findings plus a JSON-ready report.

Role assignment, by path segment relative to the scanned root:

* ``examples`` / ``benchmarks`` directory → that role,
* a ``tests`` directory or a ``test_*.py`` / ``conftest.py`` basename →
  ``tests``,
* everything else (the ``src/repro`` tree included) → ``src``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .base import Finding, ModuleContext, Rule, all_rules

__all__ = [
    "DEFAULT_SELF_PATHS",
    "LintReport",
    "lint_paths",
    "lint_source",
    "role_for_path",
]

#: What ``repro lint --self`` scans, relative to the repository root:
#: the package sources *and* every facade consumer, so the A-rules
#: (facade-only imports) are enforced over examples/ and benchmarks/ too.
DEFAULT_SELF_PATHS: Tuple[str, ...] = ("src", "tests", "examples",
                                       "benchmarks")

#: Schema version of the JSON report.
REPORT_VERSION = 1


class LintReport:
    """Findings plus the counts the CI artifact and humans both want."""

    def __init__(self, findings: Sequence[Finding],
                 files_checked: int) -> None:
        self.findings = list(findings)
        self.files_checked = files_checked

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "repro-lint-report",
            "version": REPORT_VERSION,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": self.counts_by_rule(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def format_human(self) -> str:
        lines = [finding.format() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(f"repro lint: {len(self.findings)} {noun} in "
                     f"{self.files_checked} files")
        return "\n".join(lines)


def role_for_path(path: Path, root: Optional[Path] = None) -> str:
    """The lint role of one file (see module docstring)."""
    try:
        relative = path.resolve().relative_to((root or Path.cwd()).resolve())
    except ValueError:
        relative = path
    parts = relative.parts
    if "examples" in parts:
        return "examples"
    if "benchmarks" in parts:
        return "benchmarks"
    name = path.name
    if "tests" in parts or name.startswith("test_") or name == "conftest.py":
        return "tests"
    return "src"


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in sorted(Path(p) for p in paths):
        if path.is_dir():
            yield from sorted(candidate for candidate in path.rglob("*.py")
                              if "__pycache__" not in candidate.parts)
        elif path.suffix == ".py":
            yield path


def _select_rules(select: Optional[Sequence[str]],
                  ignore: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [rule for rule in rules
                 if rule.code in wanted or rule.code[0] in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [rule for rule in rules
                 if rule.code not in unwanted
                 and rule.code[0] not in unwanted]
    return rules


def lint_source(source: str, path: str = "<string>", role: str = "src",
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string (the unit the fixture tests drive)."""
    try:
        module = ModuleContext(path, source, role=role)
    except SyntaxError as exc:
        return [Finding(rule="X001", path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}")]
    findings: List[Finding] = []
    for rule in _select_rules(select, ignore):
        findings.extend(rule.run(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Sequence[object], root: Optional[Path] = None,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Lint files and directories; returns a :class:`LintReport`."""
    root = Path(root) if root is not None else Path.cwd()
    findings: List[Finding] = []
    files = 0
    for file_path in _iter_python_files([Path(str(p)) for p in paths]):
        files += 1
        role = role_for_path(file_path, root=root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding(rule="X002", path=str(file_path),
                                    line=1, col=1,
                                    message=f"unreadable: {exc}"))
            continue
        findings.extend(lint_source(source, path=str(file_path), role=role,
                                    select=select, ignore=ignore))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings, files_checked=files)
