"""``repro.lint`` — determinism & state-protocol static analysis.

An AST-based analyzer enforcing, at review time, the invariants the rest
of the harness can only test after the fact: no unseeded randomness, no
hash-order leaking into traces/ledgers/digests, full
``snapshot_state``/``restore_state`` coverage, paired telemetry spans
and registered metric names, acyclic lock ordering in the threaded
coordinator, and a facade-only public API surface.

Run it as ``python -m repro lint [paths]`` (``--self`` scans the
repository's own ``src``/``tests``/``examples``/``benchmarks``), or
programmatically::

    from repro.lint import lint_paths, lint_source

    report = lint_paths(["src"])
    assert report.ok, report.format_human()

Rule families (each rule's docstring in its module has the details):

* ``D1xx`` determinism — :mod:`repro.lint.determinism`
* ``S2xx`` state protocol — :mod:`repro.lint.stateproto`
* ``T3xx`` telemetry — :mod:`repro.lint.telemetryrules`
* ``L4xx`` lock discipline — :mod:`repro.lint.locks`
* ``A5xx`` API hygiene — :mod:`repro.lint.apihygiene`

Suppress a finding in place with ``# repro: lint-ok[CODE] reason`` on
the flagged line.  New rules subclass :class:`~repro.lint.base.Rule`,
register with :func:`~repro.lint.base.register_rule`, and are picked up
by the CLI, the CI gate and ``--list-rules`` automatically.
"""

from __future__ import annotations

from .base import (
    ROLES,
    RULE_TYPES,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    register_rule,
)

# Importing the rule modules populates RULE_TYPES.
from . import apihygiene  # noqa: F401  (registration import)
from . import determinism  # noqa: F401
from . import locks  # noqa: F401
from . import stateproto  # noqa: F401
from . import telemetryrules  # noqa: F401

from .runner import (
    DEFAULT_SELF_PATHS,
    LintReport,
    lint_paths,
    lint_source,
    role_for_path,
)

__all__ = [
    "DEFAULT_SELF_PATHS",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ROLES",
    "RULE_TYPES",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "role_for_path",
]
