"""Core of the ``repro lint`` framework: findings, rules, suppression.

A *rule* is a small AST analyzer with a stable code (``D101``, ``S202``,
…) registered in :data:`RULE_TYPES` via the :func:`register_rule`
decorator.  The runner parses each target file once into a
:class:`ModuleContext` (AST + source lines + suppression table + the
file's *role*) and hands it to every rule whose ``roles`` cover that
file; rules yield :class:`Finding` values anchored to an AST node.

Roles partition the repository the way the CI gate lints it:

``src``
    First-party package code under ``src/repro`` — every family applies.
``tests``
    The pytest suites.  Determinism and telemetry rules are off (tests
    seed their own randomness and construct scratch instruments), only
    rules that explicitly opt in run here.
``examples`` / ``benchmarks``
    The facade consumers: API-hygiene rules (facade-only imports, no
    deprecated kwargs) apply, internals-oriented rules do not.

Suppression is per line and per rule::

    noisy_line()  # repro: lint-ok[D102] iteration feeds a set, order-free

``lint-ok[*]`` silences every rule on that line.  Suppressions on the
first line of a multi-line statement cover findings anchored there.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleContext",
    "ROLES",
    "RULE_TYPES",
    "Rule",
    "all_rules",
    "dotted_name",
    "register_rule",
]

#: The file roles the runner assigns (see module docstring).
ROLES: Tuple[str, ...] = ("src", "tests", "examples", "benchmarks")

#: ``# repro: lint-ok[D102]`` / ``lint-ok[D102,S203]`` / ``lint-ok[*]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``--json`` artifact schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        """The human one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleContext:
    """One parsed target file, shared by every rule that checks it."""

    def __init__(self, path: str, source: str, role: str = "src") -> None:
        if role not in ROLES:
            raise ValueError(f"unknown lint role {role!r}; known: {ROLES}")
        self.path = path
        self.source = source
        self.role = role
        self.tree = ast.parse(source, filename=path)
        self.lines: List[str] = source.splitlines()
        #: line number -> rule codes suppressed there ("*" = all).
        self.suppressions: Dict[int, Set[str]] = self._scan_suppressions()

    def _scan_suppressions(self) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is not None:
                codes = {code.strip() for code in match.group(1).split(",")}
                table[number] = {code for code in codes if code}
        return table

    def suppressed(self, rule: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and ("*" in codes or rule in codes)


class Rule:
    """Base class: subclass, set ``code``/``name``/``roles``, implement
    :meth:`check`, and decorate with :func:`register_rule`."""

    #: Stable identifier (``D101``); the suppression and --select key.
    code: str = ""
    #: Short kebab-case name shown by ``repro lint --list-rules``.
    name: str = ""
    #: One-line description of what the rule enforces.
    description: str = ""
    #: File roles the rule applies to (see :data:`ROLES`).
    roles: Sequence[str] = ("src",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """A finding anchored at ``node`` (any AST node with a lineno)."""
        return Finding(rule=self.code, path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)

    def run(self, module: ModuleContext) -> List[Finding]:
        """``check`` filtered through the module's suppression table."""
        if module.role not in self.roles:
            return []
        return [finding for finding in self.check(module)
                if not module.suppressed(self.code, finding.line)]


#: code -> rule class; populated by :func:`register_rule` at import time.
RULE_TYPES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_TYPES:
        raise ValueError(f"duplicate lint rule code {cls.code}")
    RULE_TYPES[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, in code order."""
    return [RULE_TYPES[code]() for code in sorted(RULE_TYPES)]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: Optional[ast.AST]) -> Optional[str]:
    """``a.b.c`` for nested Attribute/Name chains, else ``None``.

    The workhorse of every rule that matches call targets or lock
    attributes: ``random.shuffle`` and ``self._lock`` both resolve here.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.AST) -> Optional[str]:
    """The dotted name a Call invokes, or ``None`` for dynamic targets."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/method definition in the module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def string_keys(node: ast.Dict) -> List[Tuple[str, ast.AST]]:
    """The constant-string keys of a dict literal, with their nodes."""
    keys: List[Tuple[str, ast.AST]] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append((key.value, key))
    return keys
