"""T-rules: telemetry discipline.

``T301`` *unpaired-span*
    :meth:`EventLog.span` emits ``<event>.begin`` on entry and
    ``<event>.end`` on exit *of the context manager*.  A ``span(...)``
    call that is not the context expression of a ``with`` statement
    produces a begin line whose end is not guaranteed on every exit
    path — exactly the unbalanced-span bug the event-log consumers
    (CI schema checks, ``repro status``) cannot tolerate.

``T302`` *unknown-metric-name*
    Literal instrument names passed to ``counter(...)`` / ``gauge(...)``
    / ``histogram(...)`` (module-level helpers, ``registry.<kind>`` and
    the ``_metric`` import alias alike) must be declared in
    :mod:`repro.telemetry.names`.  The registry creates instruments on
    first use, so a typo silently splits a metric into two series; the
    static name registry is what keeps dashboards and the CI schema
    checks honest.  Dynamically composed names are checked against the
    registry's declared prefixes/suffixes where a literal fragment is
    visible, and skipped otherwise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .base import Finding, ModuleContext, Rule, call_name, register_rule

__all__ = ["UnpairedSpanRule", "UnknownMetricNameRule"]

_INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram",
                                   "_metric"})


@register_rule
class UnpairedSpanRule(Rule):
    code = "T301"
    name = "unpaired-span"
    description = ("span() must be used as a with-statement context "
                   "manager so begin/end lines always pair")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] != "span":
                continue
            if id(node) not in with_contexts:
                yield self.finding(
                    module, node,
                    "span() outside a with-statement: the .end event is "
                    "not guaranteed on every exit path")


def _literal_metric_parts(node: ast.AST) -> Optional[Set[str]]:
    """Literal fragments of a metric-name expression.

    A plain string returns ``{name}``; a ``prefix + dynamic`` /
    ``dynamic + suffix`` concatenation returns its literal fragments
    (checked against declared prefixes/suffixes); a fully dynamic name
    returns ``None`` (unchecked).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        parts: Set[str] = set()
        for side in (node.left, node.right):
            side_parts = _literal_metric_parts(side)
            if side_parts is not None:
                parts |= side_parts
        return parts or None
    if isinstance(node, ast.JoinedStr):
        parts = {value.value for value in node.values
                 if isinstance(value, ast.Constant)
                 and isinstance(value.value, str)}
        return parts or None
    return None


@register_rule
class UnknownMetricNameRule(Rule):
    code = "T302"
    name = "unknown-metric-name"
    description = ("instrument names must be declared in "
                   "repro.telemetry.names (typos silently fork a metric "
                   "into two series)")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # The registry and its name table construct instruments from
        # caller-supplied names by design.
        if module.path.replace("\\", "/").endswith(
                ("telemetry/registry.py", "telemetry/names.py")):
            return
        from ..telemetry.names import matches_known_fragment

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] not in \
                    _INSTRUMENT_FACTORIES:
                continue
            parts = _literal_metric_parts(node.args[0])
            if parts is None:
                continue  # fully dynamic: not statically checkable
            exact = (isinstance(node.args[0], ast.Constant)
                     and isinstance(node.args[0].value, str))
            for part in sorted(parts):
                if not matches_known_fragment(part, exact=exact):
                    yield self.finding(
                        module, node,
                        f"metric name fragment '{part}' is not declared "
                        f"in repro.telemetry.names; register it (or fix "
                        f"the typo)")
