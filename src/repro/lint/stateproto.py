"""S-rules: the checkpoint state protocol.

PR 7's restore ≡ continue guarantee rests on every class that implements
``snapshot_state`` covering *all* of its mutable run state.  The fuzz
suite can only catch a missing field probabilistically (the field has to
matter on the fuzzed configs); these rules catch the drift structurally,
at review time:

``S201`` *state-protocol-pair*
    A class defining only one of ``snapshot_state`` / ``restore_state``.

``S202`` *snapshot-restore-key-drift*
    The string keys of the dict literal ``snapshot_state`` returns must
    exactly match the keys ``restore_state`` reads off its state
    argument (``state["k"]`` / ``state.get("k")``).  A key written but
    never restored is silently-dropped state; a key read but never
    written is a guaranteed ``KeyError`` on resume.

``S203`` *uncovered-mutable-attr*
    A public attribute (no leading underscore) assigned in ``__init__``
    **and mutated elsewhere in the class** — i.e. genuine run state, not
    immutable configuration — must appear in ``snapshot_state`` or
    ``restore_state``.  Derived caches are exempt by the repo convention
    that caches are underscore-prefixed and rebuilt on restore.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import (
    Finding,
    ModuleContext,
    Rule,
    call_name,
    dotted_name,
    register_rule,
    string_keys,
)

__all__ = [
    "StateProtocolPairRule",
    "SnapshotKeyDriftRule",
    "UncoveredMutableAttrRule",
]

_MUTATOR_METHODS = frozenset({
    "add", "append", "extend", "insert", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "appendleft",
})


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {node.name: node for node in cls.body
            if isinstance(node, ast.FunctionDef)}


def _state_param(func: ast.FunctionDef) -> Optional[str]:
    """The name of ``restore_state``'s state argument (first after self)."""
    args = func.args.args
    if len(args) >= 2:
        return args[1].arg
    return None


def _snapshot_keys(func: ast.FunctionDef) -> Optional[Set[str]]:
    """Keys of dict literals returned by ``snapshot_state``.

    Returns ``None`` when the method returns anything other than dict
    literals (dynamic composition defeats static key matching).
    """
    keys: Set[str] = set()
    returns = [node for node in ast.walk(func) if isinstance(node, ast.Return)]
    if not returns:
        return None
    for node in returns:
        if not isinstance(node.value, ast.Dict):
            return None
        literal_keys = string_keys(node.value)
        if len(literal_keys) != len(node.value.keys):
            return None  # **spread or computed key: bail out
        keys.update(key for key, _ in literal_keys)
    return keys


def _restore_keys(func: ast.FunctionDef) -> Set[str]:
    """Keys ``restore_state`` reads from its state argument."""
    param = _state_param(func)
    keys: Set[str] = set()
    if param is None:
        return keys
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            index = node.slice
            if (base == param and isinstance(index, ast.Constant)
                    and isinstance(index.value, str)):
                keys.add(index.value)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if (name == f"{param}.get" and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                keys.add(node.args[0].value)
    return keys


@register_rule
class StateProtocolPairRule(Rule):
    code = "S201"
    name = "state-protocol-pair"
    description = ("snapshot_state and restore_state must be defined "
                   "together")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            has_snapshot = "snapshot_state" in methods
            has_restore = "restore_state" in methods
            if has_snapshot != has_restore:
                present = "snapshot_state" if has_snapshot else "restore_state"
                missing = "restore_state" if has_snapshot else "snapshot_state"
                yield self.finding(
                    module, methods[present],
                    f"class {node.name} defines {present} but not "
                    f"{missing}; the state protocol needs both")


@register_rule
class SnapshotKeyDriftRule(Rule):
    code = "S202"
    name = "snapshot-restore-key-drift"
    description = ("keys written by snapshot_state must equal the keys "
                   "restore_state reads")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            snapshot = methods.get("snapshot_state")
            restore = methods.get("restore_state")
            if snapshot is None or restore is None:
                continue
            written = _snapshot_keys(snapshot)
            if written is None:
                continue  # dynamic snapshot document: not checkable
            read = _restore_keys(restore)
            for key in sorted(written - read):
                yield self.finding(
                    module, snapshot,
                    f"{node.name}.snapshot_state writes key '{key}' that "
                    f"restore_state never reads: state is silently "
                    f"dropped on resume")
            for key in sorted(read - written):
                yield self.finding(
                    module, restore,
                    f"{node.name}.restore_state reads key '{key}' that "
                    f"snapshot_state never writes: resume will fail or "
                    f"mis-default")


def _attr_assignment_targets(node: ast.stmt) -> List[str]:
    """``self.x`` names a statement assigns (Assign/AnnAssign/AugAssign)."""
    names: List[str] = []
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Tuple):
            candidates: List[ast.AST] = list(target.elts)
        else:
            candidates = [target]
        for candidate in candidates:
            name = dotted_name(candidate)
            if name is not None and name.startswith("self."):
                parts = name.split(".")
                if len(parts) == 2:
                    names.append(parts[1])
    return names


def _mutated_attrs(func: ast.FunctionDef) -> Set[str]:
    """Attributes a method reassigns or mutates through container calls."""
    mutated: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            mutated.update(_attr_assignment_targets(node))
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (len(parts) == 3 and parts[0] == "self"
                    and parts[2] in _MUTATOR_METHODS):
                mutated.add(parts[1])
    return mutated


@register_rule
class UncoveredMutableAttrRule(Rule):
    code = "S203"
    name = "uncovered-mutable-attr"
    description = ("public attributes mutated outside __init__ must be "
                   "covered by snapshot_state/restore_state")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            snapshot = methods.get("snapshot_state")
            restore = methods.get("restore_state")
            init = methods.get("__init__")
            if snapshot is None or restore is None or init is None:
                continue
            protocol_source = (ast.dump(snapshot) + ast.dump(restore))
            init_attrs: Set[str] = set()
            for stmt in ast.walk(init):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    init_attrs.update(_attr_assignment_targets(stmt))
            mutated: Set[str] = set()
            for name, method in methods.items():
                if name in ("__init__", "snapshot_state", "restore_state"):
                    continue
                mutated |= _mutated_attrs(method)
            for attr in sorted(init_attrs & mutated):
                if attr.startswith("_"):
                    continue  # derived-cache convention: rebuilt on restore
                if f"attr='{attr}'" in protocol_source:
                    continue  # read or written by the protocol methods
                yield self.finding(
                    module, init,
                    f"{node.name}.{attr} is mutable run state (assigned "
                    f"in __init__, mutated in other methods) but appears "
                    f"in neither snapshot_state nor restore_state")
