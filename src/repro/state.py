"""Checkpointable run state: the serialization layer behind ``repro.session``.

Everything a half-finished run needs to continue *bit-identically* on
another process (or another machine) flows through here:

* :func:`encode_rng` / :func:`decode_rng` — the stdlib
  :class:`random.Random` Mersenne-Twister state as a JSON-ready document,
* :func:`write_checkpoint` / :func:`read_checkpoint` — versioned
  ``repro-checkpoint`` files published atomically via
  :mod:`repro.orchestrator.fsutil` (a reader never sees a torn file),
* :class:`CheckpointContext` — one run's checkpoint file: loads a prior
  document when the config matches, composes full documents from the
  scheduler/system/algorithm state protocol, and discards the file once
  the run finishes,
* :func:`run_checkpointed_stage` — the driver helper that restores
  system + algorithm + scheduler state and resumes a scheduler stage.

What is serialized is the *explicit state protocol* only: particle
phases and memories, algorithm-private state (actionable sets, wait
counts), RNG streams (the stdlib generator and the numpy MT19937
transplant behind the bulk ``random`` order), round/activation counters
and the event engine's parked/done sets.  Derived caches — the neighbor
index, the incremental :class:`~repro.grid.shape.Shape` snapshot, the
occupancy-version caches — are deliberately **not** serialized: restore
rebuilds them, and the fuzz tests in ``tests/test_checkpoint.py`` prove
restore ≡ continue on traces, round counts and ledger records.

This module imports only :mod:`repro.orchestrator.fsutil` and
:mod:`repro.telemetry`, so algorithm and driver modules may depend on it
without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from .telemetry import counter, get_event_log

# fsutil is imported lazily inside the I/O helpers: importing the
# ``repro.orchestrator`` package at module scope would cycle back through
# pool -> experiments -> core -> this module.

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "CheckpointContext",
    "CheckpointError",
    "checkpoint_name",
    "decode_rng",
    "encode_rng",
    "read_checkpoint",
    "run_checkpointed_stage",
    "write_checkpoint",
]

#: ``kind`` field of every checkpoint document.
CHECKPOINT_KIND = "repro-checkpoint"

#: Bump when the document layout changes incompatibly; readers refuse
#: newer versions instead of mis-restoring them.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file exists but cannot drive the requested run."""


# ---------------------------------------------------------------------------
# RNG state
# ---------------------------------------------------------------------------

def encode_rng(rng: random.Random) -> Dict[str, Any]:
    """The stdlib generator's full state as a JSON-ready document.

    ``getstate()`` is ``(version, internal, gauss_next)`` where
    ``internal`` is 625 ints (624 Mersenne-Twister key words + the
    stream position); everything is JSON-representable as-is.
    """
    version, internal, gauss_next = rng.getstate()
    return {"version": version, "state": list(internal),
            "gauss_next": gauss_next}


def decode_rng(data: Dict[str, Any],
               rng: Optional[random.Random] = None) -> random.Random:
    """Rebuild (or re-seed ``rng`` in place to) an encoded stdlib state."""
    if rng is None:
        rng = random.Random()
    try:
        rng.setstate((data["version"], tuple(data["state"]),
                      data["gauss_next"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid serialized RNG state: {exc}") from exc
    return rng


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------

def checkpoint_name(config: Dict[str, Any]) -> str:
    """Deterministic checkpoint filename for a run configuration.

    Keyed by the *config only* (not the code-version cache digest): a
    resuming worker on a different checkout must still find the file.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return f"checkpoint-{digest[:32]}.json"


def write_checkpoint(path: Union[str, Path],
                     document: Dict[str, Any]) -> Path:
    """Atomically publish ``document`` as a versioned checkpoint file."""
    path = Path(path)
    payload = dict(document)
    payload["kind"] = CHECKPOINT_KIND
    payload["version"] = CHECKPOINT_VERSION
    from .orchestrator.fsutil import write_json_atomic

    rounds = (payload.get("scheduler") or {}).get("rounds")
    with get_event_log().span("checkpoint.save", path=str(path),
                              stage=payload.get("stage"), rounds=rounds):
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json_atomic(path, payload)
    counter("checkpoint.saves").inc()
    return path


def read_checkpoint(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load a checkpoint document, or ``None`` when no usable file exists.

    Missing files and unreadable/foreign JSON return ``None`` (the run
    simply starts fresh); a *future-versioned* checkpoint raises — it
    was written deliberately and silently ignoring it would discard
    someone's work.
    """
    from .orchestrator.fsutil import read_json

    path = Path(path)
    with get_event_log().span("checkpoint.load", path=str(path)):
        document = read_json(path)
    if document is None or document.get("kind") != CHECKPOINT_KIND:
        return None
    version = document.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; this build "
            f"reads versions <= {CHECKPOINT_VERSION}")
    counter("checkpoint.loads").inc()
    return document


# ---------------------------------------------------------------------------
# One run's checkpoint lifecycle
# ---------------------------------------------------------------------------

class CheckpointContext:
    """The checkpoint file of one run, across its pipeline stages.

    Drivers thread one context through their stages: completed stages
    record a summary (``complete_stage``), the active scheduler stage
    saves full state every ``every`` rounds through :meth:`sink`, and a
    fresh process pointed at the same file resumes from whatever stage
    the document captured.  ``on_checkpoint(rounds, path)`` fires after
    every save — tests use it to simulate preemption.
    """

    def __init__(self, path: Union[str, Path], every: Optional[int],
                 config: Dict[str, Any],
                 on_checkpoint: Optional[Callable[[int, Path], None]] = None,
                 ) -> None:
        self.path = Path(path)
        self.every = int(every) if every else None
        self.config = dict(config)
        self.on_checkpoint = on_checkpoint
        #: Round the active stage resumed from (None = started fresh).
        self.resumed_round: Optional[int] = None
        self.document = self._load()
        self._completed: Dict[str, Dict[str, Any]] = dict(
            (self.document or {}).get("completed", {}))

    def _load(self) -> Optional[Dict[str, Any]]:
        document = read_checkpoint(self.path)
        if document is None:
            return None
        if document.get("config") != self.config:
            # Same path, different run: never restore foreign state.
            return None
        return document

    @property
    def resuming(self) -> bool:
        """True when a prior document for this exact config was loaded."""
        return self.document is not None

    def stage_document(self, stage: str) -> Optional[Dict[str, Any]]:
        """The loaded document iff it captured ``stage`` mid-flight."""
        if self.document is not None and self.document.get("stage") == stage:
            return self.document
        return None

    def completed_stage(self, stage: str) -> Optional[Dict[str, Any]]:
        """The recorded summary of an already-finished pipeline stage."""
        return self._completed.get(stage)

    def complete_stage(self, stage: str, summary: Dict[str, Any]) -> None:
        """Record that ``stage`` finished; later saves carry the summary."""
        self._completed[stage] = dict(summary)

    def sink(self, stage: str, algorithm: Any,
             system: Any) -> Callable[[Dict[str, Any]], None]:
        """A ``checkpoint_sink`` for :meth:`Scheduler.run`: composes the
        full document around the scheduler's own state dict and saves."""

        def save(scheduler_state: Dict[str, Any]) -> None:
            document = {
                "config": self.config,
                "every": self.every,
                "stage": stage,
                "completed": dict(self._completed),
                "scheduler": scheduler_state,
                "system": system.snapshot_state(),
                "algorithm": {
                    "name": getattr(algorithm, "name",
                                    type(algorithm).__name__),
                    "state": algorithm.snapshot_state(system),
                },
            }
            write_checkpoint(self.path, document)
            if self.on_checkpoint is not None:
                self.on_checkpoint(scheduler_state.get("rounds", 0),
                                   self.path)

        return save

    def discard(self) -> None:
        """Delete the file: the run finished, nothing left to resume."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        counter("checkpoint.discards").inc()


def run_checkpointed_stage(checkpoint: Optional[CheckpointContext],
                           stage: str, algorithm: Any, system: Any,
                           scheduler: Any, max_rounds: int,
                           round_hook: Optional[Callable[..., Any]] = None,
                           ) -> Any:
    """Run one scheduler stage under an optional checkpoint context.

    With no context this is exactly ``scheduler.run(...)``.  With one,
    the stage saves state every ``checkpoint.every`` rounds, and — when
    the loaded document captured this stage — system, algorithm and
    scheduler state are restored first so the run *continues* instead of
    restarting.
    """
    if checkpoint is None:
        return scheduler.run(algorithm, system, max_rounds=max_rounds,
                             round_hook=round_hook)
    resume_state: Optional[Dict[str, Any]] = None
    document = checkpoint.stage_document(stage)
    if document is not None:
        try:
            system.restore_state(document["system"])
            algorithm.restore_state(document["algorithm"]["state"], system)
            resume_state = document["scheduler"]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"checkpoint {checkpoint.path} is missing state for "
                f"stage {stage!r}: {exc}") from exc
        checkpoint.resumed_round = resume_state.get("rounds")
    return scheduler.run(algorithm, system, max_rounds=max_rounds,
                         round_hook=round_hook,
                         checkpoint_every=checkpoint.every,
                         checkpoint_sink=checkpoint.sink(stage, algorithm,
                                                         system),
                         resume_state=resume_state)
