"""Deterministic, seedable generators of particle-system shapes.

The paper evaluates no specific workloads (it is a theory paper), so the
benchmark harness uses the shape families below, chosen to exercise the
parameters appearing in the paper's bounds:

* hexagons and parallelograms — dense, hole-free, ``D_A = D``;
* lines and combs — elongated shapes where ``D`` is large relative to ``n``;
* random connected blobs — irregular outer boundaries;
* shapes with punched holes and annuli — ``D_A`` can be much smaller than
  ``D``, the regime where Algorithm DLE's ``O(D_A)`` bound beats the erosion
  baselines and where erosion-only algorithms are inapplicable;
* spirals — long outer boundaries (large ``L_out``) stressing the OBD
  primitive;
* articulation chains — blobs joined by 1-wide bridges where every bridge
  point is a cut vertex, the degenerate case for connectivity-preserving
  perturbation (the fault adversary can never remove a bridge point);
* random connected shapes with a controlled density of punched holes.

Every generator returns a connected :class:`~repro.grid.shape.Shape` and is a
pure function of its arguments (random generators take an explicit seed).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from .coords import Point, disk, grid_distance, line, neighbor, neighbors, ring, translate
from .shape import Shape, connected_components, is_connected

__all__ = [
    "hexagon",
    "parallelogram",
    "line_shape",
    "comb",
    "random_blob",
    "hexagon_with_holes",
    "annulus",
    "spiral",
    "random_holey_blob",
    "triangle",
    "articulation_chain",
    "random_connected",
    "SHAPE_FAMILIES",
    "make_shape",
]

ORIGIN: Point = (0, 0)


def hexagon(radius: int, center: Point = ORIGIN) -> Shape:
    """A filled hexagon of the given radius (radius 0 is a single point)."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return Shape(disk(center, radius))


def triangle(side: int, corner: Point = ORIGIN) -> Shape:
    """A filled triangular wedge with ``side`` points on each edge."""
    if side < 1:
        raise ValueError("side must be positive")
    points: List[Point] = []
    for row in range(side):
        start = translate(corner, 1, row)  # march SE row by row
        points.extend(line(start, 0, side - row))
    return Shape(points)


def parallelogram(width: int, height: int, corner: Point = ORIGIN) -> Shape:
    """A ``width x height`` parallelogram of grid points."""
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    points = [
        (corner[0] + dq, corner[1] + dr)
        for dq in range(width)
        for dr in range(height)
    ]
    return Shape(points)


def line_shape(length: int, direction: int = 0, start: Point = ORIGIN) -> Shape:
    """A straight line of ``length`` points."""
    if length < 1:
        raise ValueError("length must be positive")
    return Shape(line(start, direction, length))


def comb(teeth: int, tooth_length: int, spacing: int = 2,
         start: Point = ORIGIN) -> Shape:
    """A comb: a spine with ``teeth`` perpendicular teeth.

    Combs have small ``n`` relative to their boundary length and are a
    classical worst case for erosion processes.
    """
    if teeth < 1 or tooth_length < 1 or spacing < 1:
        raise ValueError("teeth, tooth_length and spacing must be positive")
    points: Set[Point] = set()
    spine_length = (teeth - 1) * spacing + 1
    points.update(line(start, 0, spine_length))
    for tooth in range(teeth):
        base = translate(start, 0, tooth * spacing)
        points.update(line(base, 1, tooth_length + 1))
    return Shape(points)


def random_blob(n: int, seed: int = 0, center: Point = ORIGIN) -> Shape:
    """A random connected shape of exactly ``n`` points.

    Grown by repeatedly attaching a uniformly random empty neighbour of the
    current shape (an Eden-model growth process), which produces irregular
    but compact connected shapes.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    points: Set[Point] = {center}
    frontier: Set[Point] = set(neighbors(center))
    while len(points) < n:
        candidate = rng.choice(sorted(frontier))
        points.add(candidate)
        frontier.discard(candidate)
        for u in neighbors(candidate):
            if u not in points:
                frontier.add(u)
    return Shape(points)


def hexagon_with_holes(radius: int, hole_radius: int = 1,
                       hole_spacing: int = 4, center: Point = ORIGIN) -> Shape:
    """A hexagon with a periodic pattern of hexagonal holes punched out.

    Holes never touch the outer boundary and never touch each other, so the
    resulting shape is connected with multiple holes.
    """
    if radius < hole_radius + 2:
        raise ValueError("radius too small to host holes")
    base = set(disk(center, radius))
    holes: Set[Point] = set()
    step = hole_spacing
    for hq in range(-radius, radius + 1, step):
        for hr in range(-radius, radius + 1, step):
            hole_center = (center[0] + hq, center[1] + hr)
            if hole_center == center and hq == 0 and hr == 0:
                # keep the centre solid so the shape stays visually anchored
                continue
            if grid_distance(hole_center, center) > radius - hole_radius - 2:
                continue
            holes.update(disk(hole_center, hole_radius))
    shape_points = base - holes
    # Punching holes from a hexagon with the margins above cannot disconnect
    # it, but guard against pathological parameters anyway.
    components = connected_components(shape_points)
    largest = max(components, key=len)
    return Shape(largest)


def annulus(outer_radius: int, inner_radius: int, center: Point = ORIGIN) -> Shape:
    """A hexagonal annulus: all points with inner_radius < d <= outer_radius.

    For thin annuli the diameter ``D`` (walking around the ring) is far larger
    than the area diameter ``D_A`` (cutting across the hole), which is exactly
    the regime in which the paper's ``O(D_A)`` bound is strictly better than
    ``O(D)``.
    """
    if inner_radius < 0 or outer_radius <= inner_radius:
        raise ValueError("need 0 <= inner_radius < outer_radius")
    points = [
        p for p in disk(center, outer_radius)
        if grid_distance(p, center) > inner_radius
    ]
    return Shape(points)


def spiral(arms: int, arm_length: int, start: Point = ORIGIN) -> Shape:
    """A hexagonal spiral path with a long outer boundary.

    The spiral walks outwards turning clockwise; it is simply connected, thin
    (every point is a boundary point) and has ``L_out`` proportional to ``n``.
    """
    if arms < 1 or arm_length < 1:
        raise ValueError("arms and arm_length must be positive")
    points: List[Point] = [start]
    current = start
    direction = 0
    length = arm_length
    for arm in range(arms):
        for _ in range(length):
            current = neighbor(current, direction)
            points.append(current)
        direction = (direction + 1) % 6
        if arm % 2 == 1:
            length += arm_length
    return Shape(points)


def random_holey_blob(n: int, hole_fraction: float = 0.15, seed: int = 0,
                      center: Point = ORIGIN) -> Shape:
    """A random connected blob with random interior holes.

    Starts from a random blob of roughly ``n / (1 - hole_fraction)`` points
    and removes random interior points (never disconnecting the shape and
    never opening the outer boundary), producing holes of size >= 1.
    """
    if n < 7:
        raise ValueError("n must be at least 7 to host holes")
    if not 0.0 <= hole_fraction < 0.9:
        raise ValueError("hole_fraction must be in [0, 0.9)")
    rng = random.Random(seed)
    target_total = max(n, int(round(n / max(1e-9, 1.0 - hole_fraction))))
    blob = random_blob(target_total, seed=seed ^ 0x5BD1, center=center)
    points: Set[Point] = set(blob.points)
    removable_budget = target_total - n
    interior = [
        p for p in sorted(points)
        if all(u in points for u in neighbors(p))
    ]
    rng.shuffle(interior)
    removed = 0
    for candidate in interior:
        if removed >= removable_budget:
            break
        if candidate not in points:
            continue
        if not all(u in points for u in neighbors(candidate)):
            continue  # no longer interior, removing it would touch a boundary
        trial = points - {candidate}
        if is_connected(trial):
            points = trial
            removed += 1
    return Shape(points)


def articulation_chain(blobs: int, blob_radius: int = 1,
                       bridge_length: int = 2, start: Point = ORIGIN) -> Shape:
    """A chain of hexagonal blobs joined by 1-wide bridges.

    Every bridge point is a cut vertex (articulation point) of the shape:
    removing any one of them disconnects the chain.  This is the worst
    case for connectivity-preserving shape perturbation — the fault
    adversary's remove step can never fire on a bridge — and a stress
    case for erosion, which must consume the chain blob by blob.
    """
    if blobs < 1 or blob_radius < 0 or bridge_length < 1:
        raise ValueError("need blobs >= 1, blob_radius >= 0, bridge_length >= 1")
    spacing = 2 * blob_radius + bridge_length + 1
    points: Set[Point] = set()
    for index in range(blobs):
        center = translate(start, 0, index * spacing)
        points.update(disk(center, blob_radius))
        if index + 1 < blobs:
            bridge = translate(start, 0, index * spacing + blob_radius + 1)
            points.update(line(bridge, 0, bridge_length))
    return Shape(points)


def random_connected(n: int, hole_density: float = 0.1, seed: int = 0,
                     center: Point = ORIGIN) -> Shape:
    """A random connected shape of exactly ``n`` points with a controlled
    density of single-point holes.

    Grows an Eden-style blob of ``n`` points (preferring frontier points
    touching at least two occupied points, so the blob is compact enough
    to have an interior), then repeatedly punches out a random *interior*
    point and regrows one point on the outer frontier to keep the count
    exact.  An interior point has all six neighbours
    occupied, and those six form a cycle around it, so its removal can
    never disconnect the shape; for the same reason no interior point is
    ever adjacent to an existing hole, so the punched holes stay
    isolated, permanently enclosed single-point holes.  The process
    stops at roughly ``hole_density * n`` holes (or earlier when no
    interior point remains, on very thin blobs).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= hole_density <= 0.2:
        raise ValueError("hole_density must be in [0, 0.2]")
    rng = random.Random(seed)
    points: Set[Point] = {center}
    frontier: Set[Point] = set(neighbors(center))
    holes: Set[Point] = set()

    def grow_one() -> None:
        candidates = sorted(frontier - holes)
        compact = [c for c in candidates
                   if sum(1 for u in neighbors(c) if u in points) >= 2]
        candidate = rng.choice(compact or candidates)
        points.add(candidate)
        frontier.discard(candidate)
        for u in neighbors(candidate):
            if u not in points:
                frontier.add(u)

    while len(points) < n:
        grow_one()
    target_holes = int(round(hole_density * n))
    attempts = 0
    while len(holes) < target_holes and attempts < 20 * max(1, target_holes):
        attempts += 1
        interior = [p for p in sorted(points)
                    if all(u in points for u in neighbors(p))]
        if not interior:
            break
        hole = rng.choice(interior)
        points.discard(hole)
        holes.add(hole)
        grow_one()
    return Shape(points)


#: Registry of named shape families used by the benchmark harness.  Each
#: entry maps a family name to a callable ``(size, seed) -> Shape`` where
#: ``size`` is an abstract scale parameter (not the particle count).
SHAPE_FAMILIES: Dict[str, Callable[[int, int], Shape]] = {
    "hexagon": lambda size, seed: hexagon(size),
    "parallelogram": lambda size, seed: parallelogram(2 * size, size),
    "line": lambda size, seed: line_shape(4 * size + 1),
    "comb": lambda size, seed: comb(teeth=size + 1, tooth_length=size),
    "blob": lambda size, seed: random_blob(3 * size * size + 1, seed=seed),
    "holey": lambda size, seed: hexagon_with_holes(2 * size + 3, hole_radius=1,
                                                   hole_spacing=4),
    "annulus": lambda size, seed: annulus(outer_radius=2 * size + 2,
                                          inner_radius=2 * size - 1),
    "spiral": lambda size, seed: spiral(arms=2 * size, arm_length=3),
    "holey_blob": lambda size, seed: random_holey_blob(3 * size * size + 10,
                                                       seed=seed),
    "chain": lambda size, seed: articulation_chain(blobs=size + 1,
                                                   bridge_length=size + 1),
    "random_connected": lambda size, seed: random_connected(
        3 * size * size + 7, hole_density=0.08, seed=seed),
}


def make_shape(family: str, size: int, seed: int = 0) -> Shape:
    """Instantiate a named shape family at the given scale."""
    try:
        factory = SHAPE_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown shape family {family!r}; known: {sorted(SHAPE_FAMILIES)}"
        ) from None
    shape = factory(size, seed)
    if not shape.is_connected():
        raise RuntimeError(f"generator {family!r} produced a disconnected shape")
    return shape
