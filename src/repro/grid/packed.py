"""Packed axial coordinates: single-int grid points with branch-free
neighbour arithmetic.

The tuple ``Point = (q, r)`` is the public currency of the whole package,
but hashing a tuple costs two int hashes plus a combine, and computing a
neighbour allocates a fresh tuple.  On the hot paths of the simulator
(occupancy lookups, the neighbor index, flood fills) those costs dominate,
so this module packs a point into one integer::

    packed = ((q + OFFSET) << SHIFT) | (r + OFFSET)

with ``SHIFT = 32`` and ``OFFSET = 2**31``.  Both fields stay strictly
inside their 32-bit lanes for every coordinate the package can produce
(``|q|, |r| < 2**30`` with a wide margin), which makes neighbour arithmetic
*branch-free*: moving along direction ``d`` is a single integer addition of
the precomputed delta ``(dq << SHIFT) + dr`` — no unpacking, no carries
between the lanes, no conditionals.

Two interning layers sit on top:

* :func:`packed_neighbors` returns the six neighbours of a packed point as
  one cached tuple (the *neighbor ring*), so repeated neighbourhood scans
  of the same point — the common case for a particle system whose points
  are revisited every round — allocate nothing.
* :func:`~repro.grid.coords.neighbors_interned` is the tuple-world
  equivalent in :mod:`repro.grid.coords`, used by the geometry layer.

The packed representation is **internal**: :class:`repro.amoebot.system.
ParticleSystem` uses it for its occupancy map, neighbor index and
neighbourhood-ring walks, while every public API keeps accepting and
returning tuple ``Point``\\ s (the tuple-world geometry in
:mod:`repro.grid.shape` keeps its own interned rings via
:func:`~repro.grid.coords.neighbors_interned`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .coords import DIRECTIONS, Point, direction_index

__all__ = [
    "SHIFT",
    "OFFSET",
    "PACKED_DELTAS",
    "pack",
    "pack_point",
    "pack_points",
    "unpack",
    "unpack_points",
    "packed_neighbor",
    "packed_neighbors",
    "packed_translate",
    "packed_grid_distance",
    "packed_ring",
    "clear_ring_cache",
]

SHIFT = 32
OFFSET = 1 << 31
_MASK = (1 << SHIFT) - 1

#: The six neighbour deltas in packed form, clockwise, same order as
#: :data:`repro.grid.coords.DIRECTIONS`.  ``packed + PACKED_DELTAS[d]`` is
#: the neighbour in direction ``d``.
PACKED_DELTAS: Tuple[int, ...] = tuple(
    (dq << SHIFT) + dr for dq, dr in DIRECTIONS
)

def pack(q: int, r: int) -> int:
    """Pack axial coordinates into a single int."""
    return ((q + OFFSET) << SHIFT) | (r + OFFSET)


def pack_point(point: Point) -> int:
    """Pack a tuple ``(q, r)`` point."""
    return ((point[0] + OFFSET) << SHIFT) | (point[1] + OFFSET)


def unpack(packed: int) -> Point:
    """Unpack a packed int back into the tuple ``(q, r)``."""
    return ((packed >> SHIFT) - OFFSET, (packed & _MASK) - OFFSET)


def pack_points(points: Iterable[Point]) -> Set[int]:
    """Pack an iterable of tuple points into a set of packed ints."""
    return {((q + OFFSET) << SHIFT) | (r + OFFSET) for q, r in points}


def unpack_points(packed: Iterable[int]) -> Set[Point]:
    """Unpack an iterable of packed ints into a set of tuple points."""
    return {((p >> SHIFT) - OFFSET, (p & _MASK) - OFFSET) for p in packed}


def packed_neighbor(packed: int, direction: int) -> int:
    """The neighbour of a packed point along a global direction."""
    return packed + PACKED_DELTAS[direction]


def packed_translate(packed: int, direction: int, steps: int = 1) -> int:
    """The point ``steps`` moves along ``direction`` from a packed point.

    Packed mirror of :func:`repro.grid.coords.translate`: one multiply-add,
    and the lanes cannot interfere because every reachable coordinate stays
    far inside its 32-bit field.  ``direction`` goes through the same
    :func:`~repro.grid.coords.direction_index` normalisation (names
    accepted, out-of-range indices rejected) as the tuple version.
    """
    return packed + PACKED_DELTAS[direction_index(direction)] * steps


def packed_grid_distance(a: int, b: int) -> int:
    """Triangular-grid distance between two packed points.

    Packed mirror of :func:`repro.grid.coords.grid_distance` — the axial
    deltas are read straight out of the two lanes, no tuple round trip.
    """
    dq = (a >> SHIFT) - (b >> SHIFT)
    dr = (a & _MASK) - (b & _MASK)
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def packed_ring(center: int, radius: int) -> List[int]:
    """The hexagonal ring at grid distance ``radius`` from a packed center.

    Packed mirror of :func:`repro.grid.coords.ring`, in the **same order**
    (clockwise from ``center + radius * E``) — callers that index into the
    ring, like Algorithm Collect's parking planner, rely on the two
    agreeing point for point.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        return [center]
    points: List[int] = []
    current = center + PACKED_DELTAS[0] * radius
    for direction in (2, 3, 4, 5, 0, 1):
        delta = PACKED_DELTAS[direction]
        for _ in range(radius):
            points.append(current)
            current += delta
    return points


# ---------------------------------------------------------------------------
# The interned neighbor-ring cache
# ---------------------------------------------------------------------------

#: packed point -> the tuple of its six packed neighbours, clockwise.
_RING_CACHE: Dict[int, Tuple[int, ...]] = {}

#: Safety valve for pathological workloads: the cache is cleared wholesale
#: once it holds this many rings (~50 MB).  Simulations revisit the same
#: points constantly, so in practice the cache stabilises at the size of
#: the visited region and the valve never fires.
_RING_CACHE_MAX = 1 << 20

_D0, _D1, _D2, _D3, _D4, _D5 = PACKED_DELTAS


def packed_neighbors(packed: int) -> Tuple[int, ...]:
    """The six packed neighbours of a packed point, clockwise, interned.

    The returned tuple is cached and shared between callers: after the
    first call for a given point, looking up its ring is one dict probe
    with zero allocation.
    """
    ring = _RING_CACHE.get(packed)
    if ring is None:
        if len(_RING_CACHE) >= _RING_CACHE_MAX:
            _RING_CACHE.clear()
        ring = _RING_CACHE[packed] = (
            packed + _D0, packed + _D1, packed + _D2,
            packed + _D3, packed + _D4, packed + _D5,
        )
    return ring


def clear_ring_cache() -> None:
    """Drop every interned neighbor ring (mostly useful in benchmarks)."""
    _RING_CACHE.clear()
