"""Shapes on the triangular grid (Section 2.1 of the paper).

A *shape* is a finite set of grid points.  This module provides both

* cheap, purely local predicates on an arbitrary occupied-point set
  (local boundaries, boundary counts, redundant / erodable / strictly convex
  and erodable points), used directly by the election algorithms, and
* the :class:`Shape` wrapper which additionally computes global structure:
  outer boundary, holes, the area (shape plus hole points), and the oriented
  virtual rings of v-nodes used by the outer-boundary-detection primitive.

All definitions follow Section 2.1 of Dufoulon, Kutten and Moses (2021).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..telemetry import counter as _metric
from .coords import (
    NUM_DIRECTIONS,
    Point,
    bounding_box,
    direction_between,
    grid_distance,
    neighbor,
    neighbors,
    neighbors_interned,
    rotate_cw,
)

__all__ = [
    "Shape",
    "VNode",
    "VirtualRing",
    "local_boundaries",
    "boundary_count",
    "neighbors_in",
    "occupied_direction_mask",
    "is_redundant",
    "has_single_local_boundary",
    "is_erodable_assuming_simply_connected",
    "is_sce_assuming_simply_connected",
    "connected_components",
    "is_connected",
]


# ---------------------------------------------------------------------------
# Local, set-based predicates
# ---------------------------------------------------------------------------

def neighbors_in(point: Point, occupied: AbstractSet[Point]) -> List[Point]:
    """Return the neighbours of ``point`` that belong to ``occupied``,
    in clockwise order."""
    return [u for u in neighbors(point) if u in occupied]


def occupied_direction_mask(point: Point, occupied: AbstractSet[Point]) -> List[bool]:
    """For each of the six clockwise directions, whether the neighbour in that
    direction belongs to ``occupied``."""
    return [u in occupied for u in neighbors_interned(point)]


def local_boundaries(point: Point, occupied: AbstractSet[Point]) -> List[List[int]]:
    """Return the local boundaries of ``point`` w.r.t. ``occupied``.

    A local boundary is a maximal clockwise-cyclic interval of incident edges
    leading to points *not* in ``occupied``.  Each boundary is returned as the
    list of direction indices of its edges, in clockwise order.  A point all
    of whose neighbours are occupied (an interior point) has no local
    boundary; an isolated point has a single local boundary of size six.
    """
    mask = occupied_direction_mask(point, occupied)
    empty_dirs = [d for d in range(NUM_DIRECTIONS) if not mask[d]]
    if not empty_dirs:
        return []
    if len(empty_dirs) == NUM_DIRECTIONS:
        return [list(range(NUM_DIRECTIONS))]
    boundaries: List[List[int]] = []
    # Walk clockwise starting just after an occupied direction so that each
    # maximal run of empty directions is collected exactly once.
    start = next(d for d in range(NUM_DIRECTIONS) if mask[d])
    current: List[int] = []
    for offset in range(1, NUM_DIRECTIONS + 1):
        d = (start + offset) % NUM_DIRECTIONS
        if not mask[d]:
            current.append(d)
        elif current:
            boundaries.append(current)
            current = []
    if current:
        boundaries.append(current)
    return boundaries


def boundary_count(point: Point, occupied: AbstractSet[Point],
                   boundary: Optional[Sequence[int]] = None) -> int:
    """Boundary count ``c(v, B) = |B| - 2`` of ``point`` w.r.t. one of its
    local boundaries.

    If ``boundary`` is omitted the point must have exactly one local boundary
    (otherwise a ``ValueError`` is raised), matching the paper's shorthand
    "the boundary count of ``v`` w.r.t. ``S``".
    """
    if boundary is None:
        bounds = local_boundaries(point, occupied)
        if len(bounds) != 1:
            raise ValueError(
                f"{point} has {len(bounds)} local boundaries; "
                "an explicit boundary is required"
            )
        boundary = bounds[0]
    return len(boundary) - 2


def has_single_local_boundary(point: Point, occupied: AbstractSet[Point]) -> bool:
    """True iff the point has exactly one local boundary w.r.t. ``occupied``."""
    return len(local_boundaries(point, occupied)) == 1


def is_redundant(point: Point, occupied: AbstractSet[Point]) -> bool:
    """A point is *redundant* if removing it does not disconnect its 1-hop
    neighbourhood within ``occupied`` (Section 2.1).

    By Proposition 6 of the paper, for boundary points this is equivalent to
    having a single local boundary; interior points are trivially redundant.
    """
    bounds = local_boundaries(point, occupied)
    return len(bounds) <= 1


def is_erodable_assuming_simply_connected(point: Point,
                                          occupied: AbstractSet[Point]) -> bool:
    """Erodability test valid when ``occupied`` is simply connected.

    A point is erodable iff it has a single local boundary and that boundary
    is a local *outer* boundary (Proposition 6).  When the occupied set is
    simply connected its only global boundary is the outer one, so the face
    test is unnecessary and erodability becomes a purely local predicate.
    """
    return len(local_boundaries(point, occupied)) == 1


def is_sce_assuming_simply_connected(point: Point,
                                     occupied: AbstractSet[Point]) -> bool:
    """Strictly-convex-and-erodable test valid for simply connected sets.

    The point must be erodable and strictly convex w.r.t. its unique local
    boundary, i.e. the boundary count must be strictly positive.
    """
    bounds = local_boundaries(point, occupied)
    if len(bounds) != 1:
        return False
    return len(bounds[0]) - 2 > 0


# ---------------------------------------------------------------------------
# Connectivity helpers
# ---------------------------------------------------------------------------

def connected_components(points: AbstractSet[Point]) -> List[Set[Point]]:
    """Connected components of a point set under grid adjacency."""
    remaining: Set[Point] = set(points)
    components: List[Set[Point]] = []
    while remaining:
        seed = next(iter(remaining))
        component: Set[Point] = set()
        queue = deque([seed])
        remaining.discard(seed)
        while queue:
            current = queue.popleft()
            component.add(current)
            for nxt in neighbors_interned(current):
                if nxt in remaining:
                    remaining.discard(nxt)
                    queue.append(nxt)
        components.append(component)
    return components


def is_connected(points: AbstractSet[Point]) -> bool:
    """True iff the point set is non-empty and connected on the grid."""
    if not points:
        return False
    return len(connected_components(points)) == 1


# ---------------------------------------------------------------------------
# Incremental shape maintenance
# ---------------------------------------------------------------------------
#
# A Shape memoises three expensive global facts: connectivity (one BFS), the
# outer face and the holes (a bounding-box flood fill).  The helpers below
# *patch* that memoised state through single-point deltas instead of
# discarding it, which is what makes :meth:`Shape.without`,
# :meth:`Shape.with_point`, :meth:`Shape.moved` and the batched delta replay
# behind :meth:`repro.amoebot.system.ParticleSystem.shape` cheap:
#
# * connectivity follows purely local rules — adding a point with an
#   occupied neighbour cannot disconnect a connected shape, and removing a
#   point with at most one local boundary (Proposition 6) cannot change
#   connectivity at all; only the remaining cases degrade the memo to
#   "unknown" (recomputed lazily, at most once, if anyone asks);
# * the hole list stays *exact* under every delta: removals only ever merge
#   faces (locally detectable), and additions can only shrink or split the
#   face they land in — a split is detected by counting the point's empty
#   arcs and resolved with a re-flood bounded by the faces it creates;
# * the memoised outer-face point set is maintained as a consistent subset
#   of the true outer face (``point_in_outer_face`` already falls back to
#   "empty and in no hole" for points it does not list, so the subset only
#   needs to stay disjoint from the holes and the shape).

class _ShapeState:
    """Mutable working copy of a Shape's points and memoised global state.

    Built from an existing Shape, mutated through :func:`_state_add` /
    :func:`_state_remove`, and frozen back into a new Shape with
    :meth:`Shape._from_state` (which takes ownership of the sets).
    ``faces_valid`` mirrors whether the source shape had computed its faces:
    when it had not, there is nothing to patch and the face fields stay
    empty (the derived shape recomputes lazily, exactly like today).
    """

    __slots__ = ("points", "connected", "faces_valid", "outer_empty", "holes")

    def __init__(self) -> None:
        self.points: Set[Point] = set()
        self.connected: Optional[bool] = None
        self.faces_valid = False
        self.outer_empty: Set[Point] = set()
        self.holes: List[Set[Point]] = []


def _empty_arc_count(occ_mask: Sequence[bool]) -> int:
    """Number of maximal cyclic runs of empty directions in a 6-entry
    occupancy mask (= the number of local boundaries of the point)."""
    arcs = 0
    for d in range(NUM_DIRECTIONS):
        if not occ_mask[d] and occ_mask[d - 1]:
            arcs += 1
    if arcs == 0:
        # No transition: the ring is all-occupied (0 arcs) or all-empty (1).
        return 0 if occ_mask[0] else 1
    return arcs


def _empty_arc_groups(ring: Sequence[Point],
                      occ_mask: Sequence[bool]) -> List[List[Point]]:
    """The empty neighbours of a point grouped into maximal cyclic arcs.

    Requires at least one occupied direction (callers only split when the
    point has two or more arcs, which implies one).
    """
    start = next(d for d in range(NUM_DIRECTIONS) if occ_mask[d])
    groups: List[List[Point]] = []
    current: List[Point] = []
    for offset in range(1, NUM_DIRECTIONS + 1):
        d = (start + offset) % NUM_DIRECTIONS
        if not occ_mask[d]:
            current.append(ring[d])
        elif current:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def _split_outer(state: _ShapeState, groups: List[List[Point]]) -> None:
    """Resolve a potential outer-face split after adding a point.

    One interleaved BFS per empty arc explores the empty grid around the
    added point.  Arcs whose regions touch are merged; an arc whose region
    exhausts is enclosed — it has become a new hole.  The search stops as
    soon as a single live region remains (the outer remnant), so the cost
    is bounded by the faces actually created, not by the outer face.
    """
    _metric("shape.refloods").inc()
    points = state.points
    parent = list(range(len(groups)))

    def find(g: int) -> int:
        while parent[g] != g:
            parent[g] = parent[parent[g]]
            g = parent[g]
        return g

    regions: List[Set[Point]] = [set(group) for group in groups]
    frontiers: List[deque] = [deque(group) for group in groups]
    label: Dict[Point, int] = {}
    for gid, group in enumerate(groups):
        for seed in group:
            label[seed] = gid
    alive: Set[int] = set(range(len(groups)))
    closed: List[int] = []
    while len(alive) > 1:
        for gid in sorted(alive):
            root = find(gid)
            if root != gid or root not in alive:
                continue  # merged away earlier in this pass
            frontier = frontiers[root]
            if not frontier:
                # Fully explored without reaching another arc: enclosed.
                alive.discard(root)
                closed.append(root)
                continue
            current = frontier.popleft()
            for nb in neighbors_interned(current):
                if nb in points:
                    continue
                other = label.get(nb)
                if other is None:
                    label[nb] = root
                    regions[root].add(nb)
                    frontier.append(nb)
                    continue
                other = find(other)
                if other == root:
                    continue
                # Two arcs meet: they are one face — merge small into large.
                if len(regions[other]) > len(regions[root]):
                    root, other = other, root
                parent[other] = root
                regions[root] |= regions[other]
                frontiers[root].extend(frontiers[other])
                alive.discard(other)
                # The local alias must follow the surviving root, or the
                # remaining neighbours of ``current`` would be appended to
                # the absorbed (dead) deque and never explored.
                frontier = frontiers[root]
            if len(alive) <= 1:
                break
    for root in closed:
        hole = regions[root]
        state.outer_empty -= hole
        state.holes.append(hole)


def _face_add(state: _ShapeState, point: Point, ring: Sequence[Point],
              occ_mask: Sequence[bool]) -> None:
    """Patch the face state for an added point (already in ``state.points``).

    An addition shrinks the face the point was in, and can split it when
    the point has two or more empty arcs; it can never merge faces.  The
    face of the added point is the face of *all* its empty neighbours
    (adjacent empty points always share a face).
    """
    holes = state.holes
    for index, hole in enumerate(holes):
        if point in hole:
            hole.discard(point)
            if not hole:
                del holes[index]
            elif _empty_arc_count(occ_mask) >= 2:
                _metric("shape.refloods").inc()
                parts = connected_components(hole)
                if len(parts) > 1:
                    del holes[index]
                    holes.extend(set(part) for part in parts)
            return
    # The point was on the outer face.
    state.outer_empty.discard(point)
    if _empty_arc_count(occ_mask) >= 2:
        _split_outer(state, _empty_arc_groups(ring, occ_mask))


def _face_remove(state: _ShapeState, point: Point,
                 ring: Sequence[Point]) -> None:
    """Patch the face state for a removed point (already taken out of
    ``state.points``).

    A removal turns an occupied point into empty space, which joins — and
    thereby may merge — every face adjacent to it; it can never split one.
    """
    points = state.points
    if not points:
        state.outer_empty.clear()
        state.holes.clear()
        return
    empties = [u for u in ring if u not in points]
    if not empties:
        # Entirely enclosed: the vacated point is a brand-new hole.
        state.holes.append({point})
        return
    holes = state.holes
    involved: List[int] = []
    touches_outer = False
    for u in empties:
        for index, hole in enumerate(holes):
            if u in hole:
                if index not in involved:
                    involved.append(index)
                break
        else:
            touches_outer = True
    if touches_outer:
        # Every involved hole drains into the outer face.
        state.outer_empty.add(point)
        for index in sorted(involved, reverse=True):
            state.outer_empty |= holes[index]
            del holes[index]
    elif len(involved) == 1:
        holes[involved[0]].add(point)
    else:
        merged: Set[Point] = {point}
        for index in sorted(involved, reverse=True):
            merged |= holes[index]
            del holes[index]
        holes.append(merged)


def _state_add(state: _ShapeState, point: Point) -> None:
    """Apply a single-point addition to a working state (no-op if present)."""
    points = state.points
    if point in points:
        return
    ring = neighbors_interned(point)
    occ_mask = [u in points for u in ring]
    points.add(point)
    if True not in occ_mask:
        # An isolated addition: alone it is connected, otherwise it is a
        # fresh component of its own.
        state.connected = len(points) == 1
    elif state.connected is False:
        state.connected = None  # the new point may bridge two components
    if state.faces_valid:
        _face_add(state, point, ring, occ_mask)


def _state_remove(state: _ShapeState, point: Point) -> None:
    """Apply a single-point removal to a working state (no-op if absent)."""
    points = state.points
    if point not in points:
        return
    ring = neighbors_interned(point)
    occ_mask = [u in points for u in ring]
    points.discard(point)
    if not points:
        state.connected = False
    elif True not in occ_mask:
        # The removed point was a whole component by itself; what is left
        # may or may not be connected.
        state.connected = None
    elif state.connected is not False and _empty_arc_count(occ_mask) >= 2:
        # Removing an articulation candidate: connectivity becomes unknown.
        # (With at most one local boundary the removal is *redundant* —
        # Proposition 6 — and the memoised answer survives; a removal of a
        # non-isolated point can never reconnect a disconnected shape, so
        # False also survives.)
        state.connected = None
    if state.faces_valid:
        _face_remove(state, point, ring)


# ---------------------------------------------------------------------------
# v-nodes and virtual rings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VNode:
    """A virtual node: a boundary point together with one of its local
    boundaries (Section 2.1, "Virtual Nodes and (Oriented) Rings").

    The local boundary is stored as a tuple of clockwise direction indices.
    """

    point: Point
    boundary: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Boundary count ``c(v(B)) = |B| - 2`` of this v-node."""
        return len(self.boundary) - 2

    @property
    def first_direction(self) -> int:
        return self.boundary[0]

    @property
    def last_direction(self) -> int:
        return self.boundary[-1]


@dataclass(frozen=True)
class VirtualRing:
    """An oriented virtual ring of v-nodes covering one global boundary.

    ``is_outer`` records whether the ring corresponds to the global outer
    boundary of the shape.  ``vnodes`` lists the v-nodes in clockwise
    successor order (the first of the two rings defined in the paper).
    """

    vnodes: Tuple[VNode, ...]
    is_outer: bool

    def __len__(self) -> int:
        return len(self.vnodes)

    @property
    def total_count(self) -> int:
        """Sum of the boundary counts of the ring's v-nodes.

        By Observation 4, this equals 6 for the outer boundary and -6 for an
        inner boundary.
        """
        return sum(v.count for v in self.vnodes)

    @property
    def points(self) -> FrozenSet[Point]:
        """The set of distinct shape points visited by the ring."""
        return frozenset(v.point for v in self.vnodes)


# ---------------------------------------------------------------------------
# Shape
# ---------------------------------------------------------------------------

class Shape:
    """A finite set of triangular-grid points with derived global structure.

    The constructor accepts any iterable of ``(q, r)`` points.  A shape may be
    disconnected or empty; most of the geometric accessors require a
    non-empty shape and raise ``ValueError`` otherwise.
    """

    def __init__(self, points: Iterable[Point]):
        self._points: FrozenSet[Point] = frozenset((int(q), int(r)) for q, r in points)
        self._faces_computed = False
        self._outer_empty: Set[Point] = set()
        self._holes: List[FrozenSet[Point]] = []
        self._rings: Optional[List[VirtualRing]] = None
        self._connected: Optional[bool] = None
        self._area_points: Optional[FrozenSet[Point]] = None

    # -- basic protocol ----------------------------------------------------

    @property
    def points(self) -> FrozenSet[Point]:
        """The occupied points of the shape."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(sorted(self._points))

    def __contains__(self, point: Point) -> bool:
        return point in self._points

    def __eq__(self, other) -> bool:
        if isinstance(other, Shape):
            return self._points == other._points
        if isinstance(other, (set, frozenset)):
            return self._points == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"Shape(n={len(self._points)})"

    # -- derived shapes ----------------------------------------------------
    #
    # The three delta constructors below patch whatever global state this
    # shape has already memoised (connectivity, outer face, holes) instead
    # of discarding it — see the "Incremental shape maintenance" section.
    # State this shape never computed is simply left uncomputed on the
    # derived shape, so the constructors are never *more* expensive than a
    # plain rebuild.

    def _working_state(self) -> _ShapeState:
        """A mutable copy of this shape's points and memoised state."""
        state = _ShapeState()
        state.points = set(self._points)
        state.connected = self._connected
        state.faces_valid = self._faces_computed
        if state.faces_valid:
            state.outer_empty = set(self._outer_empty)
            state.holes = [set(hole) for hole in self._holes]
        return state

    @classmethod
    def _from_state(cls, state: _ShapeState) -> "Shape":
        """Freeze a working state into a Shape.  Takes ownership of the
        state's sets — the caller must not touch the state afterwards."""
        shape = cls.__new__(cls)
        shape._points = frozenset(state.points)
        shape._faces_computed = state.faces_valid
        if state.faces_valid:
            shape._outer_empty = state.outer_empty
            holes = [frozenset(hole) for hole in state.holes]
            holes.sort(key=min)
            shape._holes = holes
        else:
            shape._outer_empty = set()
            shape._holes = []
        shape._rings = None
        shape._connected = state.connected
        shape._area_points = None
        return shape

    def without(self, point: Point) -> "Shape":
        """Return a new shape with ``point`` removed, patching the memoised
        connectivity and face state instead of recomputing it."""
        point = (int(point[0]), int(point[1]))
        if point not in self._points:
            return self  # no-op delta; shapes are immutable
        state = self._working_state()
        _state_remove(state, point)
        return Shape._from_state(state)

    def with_point(self, point: Point) -> "Shape":
        """Return a new shape with ``point`` added, patching the memoised
        connectivity and face state instead of recomputing it."""
        point = (int(point[0]), int(point[1]))
        if point in self._points:
            return self  # no-op delta; shapes are immutable
        state = self._working_state()
        _state_add(state, point)
        return Shape._from_state(state)

    def moved(self, old: Point, new: Point) -> "Shape":
        """Return a new shape with ``old`` vacated and ``new`` occupied —
        the single-particle movement delta — patching the memoised state
        through both updates at once."""
        old = (int(old[0]), int(old[1]))
        new = (int(new[0]), int(new[1]))
        if old == new or old not in self._points or new in self._points:
            raise ValueError(
                f"moved() needs a distinct occupied source and empty target; "
                f"got {old} -> {new}"
            )
        state = self._working_state()
        _state_remove(state, old)
        _state_add(state, new)
        return Shape._from_state(state)

    def _apply_deltas(self, deltas: Sequence[Tuple[Point, bool]]) -> "Shape":
        """Replay an ordered ``(point, added)`` delta stream into a new
        shape, patching the memoised state through every step.  Used by
        :meth:`repro.amoebot.system.ParticleSystem.shape` to refresh its
        snapshot from the occupancy changes since the previous one."""
        state = self._working_state()
        for point, added in deltas:
            if added:
                _state_add(state, point)
            else:
                _state_remove(state, point)
        _metric("shape.delta_replays").inc()
        _metric("shape.deltas_applied").inc(len(deltas))
        return Shape._from_state(state)

    # -- connectivity -------------------------------------------------------

    def is_connected(self) -> bool:
        """True iff the shape is non-empty and connected.

        Memoised: the shape is immutable, so the BFS runs at most once."""
        if self._connected is None:
            self._connected = is_connected(self._points)
        return self._connected

    def connected_components(self) -> List[Set[Point]]:
        return connected_components(self._points)

    # -- faces: outer face and holes ----------------------------------------

    def _compute_faces(self) -> None:
        if self._faces_computed:
            return
        self._faces_computed = True
        _metric("shape.face_floods").inc()
        if not self._points:
            self._outer_empty = set()
            self._holes = []
            return
        min_q, min_r, max_q, max_r = bounding_box(self._points)
        # Pad the bounding box by one so the outer face is connected around
        # the shape within the scanned region.
        min_q -= 1
        min_r -= 1
        max_q += 1
        max_r += 1

        def in_box(p: Point) -> bool:
            return min_q <= p[0] <= max_q and min_r <= p[1] <= max_r

        start = (min_q, min_r)
        outer: Set[Point] = set()
        queue = deque([start])
        outer.add(start)
        while queue:
            current = queue.popleft()
            for nxt in neighbors_interned(current):
                # Cheapest test first: most neighbours were already visited,
                # so the set probes short-circuit before the bounds call.
                if nxt not in outer and nxt not in self._points and in_box(nxt):
                    outer.add(nxt)
                    queue.append(nxt)
        self._outer_empty = outer

        box_cells = (max_q - min_q + 1) * (max_r - min_r + 1)
        if len(outer) + len(self._points) >= box_cells:
            # The outer flood reached every empty cell of the padded box:
            # hole-free, no need to scan the box for leftovers.
            self._holes = []
            return
        remaining: Set[Point] = set()
        for q in range(min_q, max_q + 1):
            for r in range(min_r, max_r + 1):
                p = (q, r)
                if p not in self._points and p not in outer:
                    remaining.add(p)
        self._holes = [frozenset(c) for c in connected_components(remaining)]
        self._holes.sort(key=lambda hole: sorted(hole)[0])

    @property
    def holes(self) -> List[FrozenSet[Point]]:
        """The holes of the shape: one frozenset of hole points per hole."""
        self._compute_faces()
        return list(self._holes)

    @property
    def hole_points(self) -> FrozenSet[Point]:
        """All points lying in some hole of the shape."""
        self._compute_faces()
        result: Set[Point] = set()
        for hole in self._holes:
            result |= hole
        return frozenset(result)

    def is_simply_connected(self) -> bool:
        """True iff the shape is connected and has no holes."""
        return self.is_connected() and not self.holes

    @property
    def area_points(self) -> FrozenSet[Point]:
        """The area of the shape: its points plus all of its hole points.

        Memoised: the shape is immutable, so the union is built at most
        once."""
        if self._area_points is None:
            self._area_points = self._points | self.hole_points
        return self._area_points

    def point_in_outer_face(self, point: Point) -> bool:
        """True iff ``point`` is an empty point lying on the outer face.

        Points far outside the padded bounding box are trivially in the outer
        face; occupied points are never in the outer face.
        """
        if point in self._points:
            return False
        self._compute_faces()
        if point in self._outer_empty:
            return True
        return all(point not in hole for hole in self._holes)

    def point_in_hole(self, point: Point) -> bool:
        """True iff ``point`` lies inside one of the shape's holes."""
        if point in self._points:
            return False
        self._compute_faces()
        return any(point in hole for hole in self._holes)

    # -- boundaries ----------------------------------------------------------

    @property
    def boundary_points(self) -> FrozenSet[Point]:
        """Points of the shape having at least one empty neighbour."""
        return frozenset(
            p for p in self._points
            if any(u not in self._points for u in neighbors_interned(p))
        )

    @property
    def interior_points(self) -> FrozenSet[Point]:
        """Points of the shape all of whose neighbours are occupied."""
        return self._points - self.boundary_points

    @property
    def outer_boundary(self) -> FrozenSet[Point]:
        """Points of the shape adjacent to the outer face."""
        self._compute_faces()
        return frozenset(
            p for p in self._points
            if any(self.point_in_outer_face(u) for u in neighbors_interned(p)
                   if u not in self._points)
        )

    def inner_boundary(self, hole_index: int) -> FrozenSet[Point]:
        """Points of the shape adjacent to the given hole."""
        hole = self.holes[hole_index]
        return frozenset(
            p for p in self._points
            if any(u in hole for u in neighbors_interned(p))
        )

    @property
    def inner_boundaries(self) -> List[FrozenSet[Point]]:
        """One boundary point set per hole, in the order of :attr:`holes`."""
        return [self.inner_boundary(i) for i in range(len(self.holes))]

    @property
    def outer_boundary_length(self) -> int:
        """``L_out``: the number of points on the outer boundary."""
        return len(self.outer_boundary)

    @property
    def max_boundary_length(self) -> int:
        """``L_max``: the maximum number of points over all boundaries."""
        lengths = [self.outer_boundary_length]
        lengths.extend(len(b) for b in self.inner_boundaries)
        return max(lengths) if lengths else 0

    # -- local structure ------------------------------------------------------

    def local_boundaries(self, point: Point) -> List[List[int]]:
        """Local boundaries of an occupied point (see module-level function)."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return local_boundaries(point, self._points)

    def boundary_count(self, point: Point,
                       boundary: Optional[Sequence[int]] = None) -> int:
        """Boundary count of an occupied point w.r.t. one of its boundaries."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return boundary_count(point, self._points, boundary)

    def is_redundant(self, point: Point) -> bool:
        """True iff removing the point keeps its 1-hop neighbourhood connected."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return is_redundant(point, self._points)

    def is_erodable(self, point: Point) -> bool:
        """True iff the point is redundant and on the outer boundary.

        Equivalently (Proposition 6): it has a single local boundary and that
        boundary is a local outer boundary.
        """
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        bounds = local_boundaries(point, self._points)
        if len(bounds) != 1:
            return False
        # The unique local boundary must border the outer face.
        boundary = bounds[0]
        return any(
            self.point_in_outer_face(neighbor(point, d)) for d in boundary
        )

    def is_sce(self, point: Point) -> bool:
        """True iff the point is strictly convex and erodable (SCE) w.r.t.
        the shape."""
        if not self.is_erodable(point):
            return False
        bounds = local_boundaries(point, self._points)
        return len(bounds[0]) - 2 > 0

    def sce_points(self) -> List[Point]:
        """All SCE points of the shape, sorted."""
        return sorted(p for p in self.boundary_points if self.is_sce(p))

    def erodable_points(self) -> List[Point]:
        """All erodable points of the shape, sorted."""
        return sorted(p for p in self.boundary_points if self.is_erodable(p))

    # -- v-nodes and virtual rings --------------------------------------------

    def vnodes_of(self, point: Point) -> List[VNode]:
        """The v-nodes associated with an occupied boundary point."""
        return [VNode(point, tuple(b)) for b in self.local_boundaries(point)]

    def all_vnodes(self) -> List[VNode]:
        """All v-nodes of the shape, sorted by point then first direction."""
        result: List[VNode] = []
        for point in sorted(self.boundary_points):
            result.extend(self.vnodes_of(point))
        return result

    def clockwise_successor(self, vnode: VNode) -> Tuple[VNode, Point]:
        """Return the clockwise successor v-node of ``vnode`` and their common
        (unoccupied) point, following Observation 3."""
        if len(self._points) < 2:
            raise ValueError("successor v-nodes require a shape with >= 2 points")
        last_dir = vnode.last_direction
        common = neighbor(vnode.point, last_dir)
        successor_point = neighbor(vnode.point, rotate_cw(last_dir, 1))
        if successor_point not in self._points:
            raise RuntimeError(
                "inconsistent local boundary: clockwise successor point "
                f"{successor_point} of {vnode.point} is unoccupied"
            )
        wanted_dir = direction_between(successor_point, common)
        for candidate in self.vnodes_of(successor_point):
            if wanted_dir in candidate.boundary:
                return candidate, common
        raise RuntimeError(
            f"no v-node of {successor_point} contains the common point {common}"
        )

    def virtual_rings(self) -> List[VirtualRing]:
        """All oriented virtual rings of the shape, one per global boundary.

        The first ring in the returned list is always the outer one.  Rings
        are built by following clockwise successors (Observation 3); by
        Observation 4 the outer ring's counts sum to 6 and every inner ring's
        counts sum to -6.
        """
        if self._rings is not None:
            return list(self._rings)
        if len(self._points) < 2:
            raise ValueError("virtual rings require a shape with >= 2 points")
        self._compute_faces()
        unvisited: Set[VNode] = set(self.all_vnodes())
        rings: List[VirtualRing] = []
        while unvisited:
            start = min(unvisited, key=lambda v: (v.point, v.boundary))
            ordered: List[VNode] = []
            is_outer = False
            current = start
            while True:
                ordered.append(current)
                unvisited.discard(current)
                nxt, common = self.clockwise_successor(current)
                if self.point_in_outer_face(common):
                    is_outer = True
                if nxt == start:
                    break
                current = nxt
            rings.append(VirtualRing(tuple(ordered), is_outer))
        rings.sort(key=lambda ring: (not ring.is_outer, sorted(ring.points)[0]))
        self._rings = rings
        return list(rings)

    def outer_ring(self) -> VirtualRing:
        """The virtual ring of the global outer boundary."""
        for ring in self.virtual_rings():
            if ring.is_outer:
                return ring
        raise RuntimeError("shape has no outer ring")

    def inner_rings(self) -> List[VirtualRing]:
        """The virtual rings of the inner boundaries (one per hole boundary)."""
        return [ring for ring in self.virtual_rings() if not ring.is_outer]

    # -- misc -------------------------------------------------------------

    def centroid_point(self) -> Point:
        """An occupied point closest to the Euclidean centroid of the shape.

        Useful as a deterministic reference point for generators and tests.
        """
        if not self._points:
            raise ValueError("empty shape has no centroid")
        mean_q = sum(q for q, _ in self._points) / len(self._points)
        mean_r = sum(r for _, r in self._points) / len(self._points)
        return min(
            self._points,
            key=lambda p: (abs(p[0] - mean_q) + abs(p[1] - mean_r), p),
        )

    def translated(self, dq: int, dr: int) -> "Shape":
        """Return a copy of the shape translated by ``(dq, dr)``."""
        return Shape((q + dq, r + dr) for q, r in self._points)
