"""Shapes on the triangular grid (Section 2.1 of the paper).

A *shape* is a finite set of grid points.  This module provides both

* cheap, purely local predicates on an arbitrary occupied-point set
  (local boundaries, boundary counts, redundant / erodable / strictly convex
  and erodable points), used directly by the election algorithms, and
* the :class:`Shape` wrapper which additionally computes global structure:
  outer boundary, holes, the area (shape plus hole points), and the oriented
  virtual rings of v-nodes used by the outer-boundary-detection primitive.

All definitions follow Section 2.1 of Dufoulon, Kutten and Moses (2021).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .coords import (
    NUM_DIRECTIONS,
    Point,
    bounding_box,
    direction_between,
    grid_distance,
    neighbor,
    neighbors,
    rotate_cw,
)

__all__ = [
    "Shape",
    "VNode",
    "VirtualRing",
    "local_boundaries",
    "boundary_count",
    "neighbors_in",
    "occupied_direction_mask",
    "is_redundant",
    "has_single_local_boundary",
    "is_erodable_assuming_simply_connected",
    "is_sce_assuming_simply_connected",
    "connected_components",
    "is_connected",
]


# ---------------------------------------------------------------------------
# Local, set-based predicates
# ---------------------------------------------------------------------------

def neighbors_in(point: Point, occupied: AbstractSet[Point]) -> List[Point]:
    """Return the neighbours of ``point`` that belong to ``occupied``,
    in clockwise order."""
    return [u for u in neighbors(point) if u in occupied]


def occupied_direction_mask(point: Point, occupied: AbstractSet[Point]) -> List[bool]:
    """For each of the six clockwise directions, whether the neighbour in that
    direction belongs to ``occupied``."""
    return [neighbor(point, d) in occupied for d in range(NUM_DIRECTIONS)]


def local_boundaries(point: Point, occupied: AbstractSet[Point]) -> List[List[int]]:
    """Return the local boundaries of ``point`` w.r.t. ``occupied``.

    A local boundary is a maximal clockwise-cyclic interval of incident edges
    leading to points *not* in ``occupied``.  Each boundary is returned as the
    list of direction indices of its edges, in clockwise order.  A point all
    of whose neighbours are occupied (an interior point) has no local
    boundary; an isolated point has a single local boundary of size six.
    """
    mask = occupied_direction_mask(point, occupied)
    empty_dirs = [d for d in range(NUM_DIRECTIONS) if not mask[d]]
    if not empty_dirs:
        return []
    if len(empty_dirs) == NUM_DIRECTIONS:
        return [list(range(NUM_DIRECTIONS))]
    boundaries: List[List[int]] = []
    # Walk clockwise starting just after an occupied direction so that each
    # maximal run of empty directions is collected exactly once.
    start = next(d for d in range(NUM_DIRECTIONS) if mask[d])
    current: List[int] = []
    for offset in range(1, NUM_DIRECTIONS + 1):
        d = (start + offset) % NUM_DIRECTIONS
        if not mask[d]:
            current.append(d)
        elif current:
            boundaries.append(current)
            current = []
    if current:
        boundaries.append(current)
    return boundaries


def boundary_count(point: Point, occupied: AbstractSet[Point],
                   boundary: Optional[Sequence[int]] = None) -> int:
    """Boundary count ``c(v, B) = |B| - 2`` of ``point`` w.r.t. one of its
    local boundaries.

    If ``boundary`` is omitted the point must have exactly one local boundary
    (otherwise a ``ValueError`` is raised), matching the paper's shorthand
    "the boundary count of ``v`` w.r.t. ``S``".
    """
    if boundary is None:
        bounds = local_boundaries(point, occupied)
        if len(bounds) != 1:
            raise ValueError(
                f"{point} has {len(bounds)} local boundaries; "
                "an explicit boundary is required"
            )
        boundary = bounds[0]
    return len(boundary) - 2


def has_single_local_boundary(point: Point, occupied: AbstractSet[Point]) -> bool:
    """True iff the point has exactly one local boundary w.r.t. ``occupied``."""
    return len(local_boundaries(point, occupied)) == 1


def is_redundant(point: Point, occupied: AbstractSet[Point]) -> bool:
    """A point is *redundant* if removing it does not disconnect its 1-hop
    neighbourhood within ``occupied`` (Section 2.1).

    By Proposition 6 of the paper, for boundary points this is equivalent to
    having a single local boundary; interior points are trivially redundant.
    """
    bounds = local_boundaries(point, occupied)
    return len(bounds) <= 1


def is_erodable_assuming_simply_connected(point: Point,
                                          occupied: AbstractSet[Point]) -> bool:
    """Erodability test valid when ``occupied`` is simply connected.

    A point is erodable iff it has a single local boundary and that boundary
    is a local *outer* boundary (Proposition 6).  When the occupied set is
    simply connected its only global boundary is the outer one, so the face
    test is unnecessary and erodability becomes a purely local predicate.
    """
    return len(local_boundaries(point, occupied)) == 1


def is_sce_assuming_simply_connected(point: Point,
                                     occupied: AbstractSet[Point]) -> bool:
    """Strictly-convex-and-erodable test valid for simply connected sets.

    The point must be erodable and strictly convex w.r.t. its unique local
    boundary, i.e. the boundary count must be strictly positive.
    """
    bounds = local_boundaries(point, occupied)
    if len(bounds) != 1:
        return False
    return len(bounds[0]) - 2 > 0


# ---------------------------------------------------------------------------
# Connectivity helpers
# ---------------------------------------------------------------------------

def connected_components(points: AbstractSet[Point]) -> List[Set[Point]]:
    """Connected components of a point set under grid adjacency."""
    remaining: Set[Point] = set(points)
    components: List[Set[Point]] = []
    while remaining:
        seed = next(iter(remaining))
        component: Set[Point] = set()
        queue = deque([seed])
        remaining.discard(seed)
        while queue:
            current = queue.popleft()
            component.add(current)
            for nxt in neighbors(current):
                if nxt in remaining:
                    remaining.discard(nxt)
                    queue.append(nxt)
        components.append(component)
    return components


def is_connected(points: AbstractSet[Point]) -> bool:
    """True iff the point set is non-empty and connected on the grid."""
    if not points:
        return False
    return len(connected_components(points)) == 1


# ---------------------------------------------------------------------------
# v-nodes and virtual rings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VNode:
    """A virtual node: a boundary point together with one of its local
    boundaries (Section 2.1, "Virtual Nodes and (Oriented) Rings").

    The local boundary is stored as a tuple of clockwise direction indices.
    """

    point: Point
    boundary: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Boundary count ``c(v(B)) = |B| - 2`` of this v-node."""
        return len(self.boundary) - 2

    @property
    def first_direction(self) -> int:
        return self.boundary[0]

    @property
    def last_direction(self) -> int:
        return self.boundary[-1]


@dataclass(frozen=True)
class VirtualRing:
    """An oriented virtual ring of v-nodes covering one global boundary.

    ``is_outer`` records whether the ring corresponds to the global outer
    boundary of the shape.  ``vnodes`` lists the v-nodes in clockwise
    successor order (the first of the two rings defined in the paper).
    """

    vnodes: Tuple[VNode, ...]
    is_outer: bool

    def __len__(self) -> int:
        return len(self.vnodes)

    @property
    def total_count(self) -> int:
        """Sum of the boundary counts of the ring's v-nodes.

        By Observation 4, this equals 6 for the outer boundary and -6 for an
        inner boundary.
        """
        return sum(v.count for v in self.vnodes)

    @property
    def points(self) -> FrozenSet[Point]:
        """The set of distinct shape points visited by the ring."""
        return frozenset(v.point for v in self.vnodes)


# ---------------------------------------------------------------------------
# Shape
# ---------------------------------------------------------------------------

class Shape:
    """A finite set of triangular-grid points with derived global structure.

    The constructor accepts any iterable of ``(q, r)`` points.  A shape may be
    disconnected or empty; most of the geometric accessors require a
    non-empty shape and raise ``ValueError`` otherwise.
    """

    def __init__(self, points: Iterable[Point]):
        self._points: FrozenSet[Point] = frozenset((int(q), int(r)) for q, r in points)
        self._faces_computed = False
        self._outer_empty: Set[Point] = set()
        self._holes: List[FrozenSet[Point]] = []
        self._rings: Optional[List[VirtualRing]] = None
        self._connected: Optional[bool] = None
        self._area_points: Optional[FrozenSet[Point]] = None

    # -- basic protocol ----------------------------------------------------

    @property
    def points(self) -> FrozenSet[Point]:
        """The occupied points of the shape."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(sorted(self._points))

    def __contains__(self, point: Point) -> bool:
        return point in self._points

    def __eq__(self, other) -> bool:
        if isinstance(other, Shape):
            return self._points == other._points
        if isinstance(other, (set, frozenset)):
            return self._points == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"Shape(n={len(self._points)})"

    # -- derived shapes ----------------------------------------------------

    def without(self, point: Point) -> "Shape":
        """Return a new shape with ``point`` removed."""
        return Shape(self._points - {point})

    def with_point(self, point: Point) -> "Shape":
        """Return a new shape with ``point`` added."""
        return Shape(self._points | {point})

    # -- connectivity -------------------------------------------------------

    def is_connected(self) -> bool:
        """True iff the shape is non-empty and connected.

        Memoised: the shape is immutable, so the BFS runs at most once."""
        if self._connected is None:
            self._connected = is_connected(self._points)
        return self._connected

    def connected_components(self) -> List[Set[Point]]:
        return connected_components(self._points)

    # -- faces: outer face and holes ----------------------------------------

    def _compute_faces(self) -> None:
        if self._faces_computed:
            return
        self._faces_computed = True
        if not self._points:
            self._outer_empty = set()
            self._holes = []
            return
        min_q, min_r, max_q, max_r = bounding_box(self._points)
        # Pad the bounding box by one so the outer face is connected around
        # the shape within the scanned region.
        min_q -= 1
        min_r -= 1
        max_q += 1
        max_r += 1

        def in_box(p: Point) -> bool:
            return min_q <= p[0] <= max_q and min_r <= p[1] <= max_r

        start = (min_q, min_r)
        outer: Set[Point] = set()
        queue = deque([start])
        outer.add(start)
        while queue:
            current = queue.popleft()
            for nxt in neighbors(current):
                if in_box(nxt) and nxt not in self._points and nxt not in outer:
                    outer.add(nxt)
                    queue.append(nxt)
        self._outer_empty = outer

        remaining: Set[Point] = set()
        for q in range(min_q, max_q + 1):
            for r in range(min_r, max_r + 1):
                p = (q, r)
                if p not in self._points and p not in outer:
                    remaining.add(p)
        self._holes = [frozenset(c) for c in connected_components(remaining)]
        self._holes.sort(key=lambda hole: sorted(hole)[0])

    @property
    def holes(self) -> List[FrozenSet[Point]]:
        """The holes of the shape: one frozenset of hole points per hole."""
        self._compute_faces()
        return list(self._holes)

    @property
    def hole_points(self) -> FrozenSet[Point]:
        """All points lying in some hole of the shape."""
        self._compute_faces()
        result: Set[Point] = set()
        for hole in self._holes:
            result |= hole
        return frozenset(result)

    def is_simply_connected(self) -> bool:
        """True iff the shape is connected and has no holes."""
        return self.is_connected() and not self.holes

    @property
    def area_points(self) -> FrozenSet[Point]:
        """The area of the shape: its points plus all of its hole points.

        Memoised: the shape is immutable, so the union is built at most
        once."""
        if self._area_points is None:
            self._area_points = self._points | self.hole_points
        return self._area_points

    def point_in_outer_face(self, point: Point) -> bool:
        """True iff ``point`` is an empty point lying on the outer face.

        Points far outside the padded bounding box are trivially in the outer
        face; occupied points are never in the outer face.
        """
        if point in self._points:
            return False
        self._compute_faces()
        if point in self._outer_empty:
            return True
        return all(point not in hole for hole in self._holes)

    def point_in_hole(self, point: Point) -> bool:
        """True iff ``point`` lies inside one of the shape's holes."""
        if point in self._points:
            return False
        self._compute_faces()
        return any(point in hole for hole in self._holes)

    # -- boundaries ----------------------------------------------------------

    @property
    def boundary_points(self) -> FrozenSet[Point]:
        """Points of the shape having at least one empty neighbour."""
        return frozenset(
            p for p in self._points
            if any(u not in self._points for u in neighbors(p))
        )

    @property
    def interior_points(self) -> FrozenSet[Point]:
        """Points of the shape all of whose neighbours are occupied."""
        return self._points - self.boundary_points

    @property
    def outer_boundary(self) -> FrozenSet[Point]:
        """Points of the shape adjacent to the outer face."""
        self._compute_faces()
        return frozenset(
            p for p in self._points
            if any(self.point_in_outer_face(u) for u in neighbors(p)
                   if u not in self._points)
        )

    def inner_boundary(self, hole_index: int) -> FrozenSet[Point]:
        """Points of the shape adjacent to the given hole."""
        hole = self.holes[hole_index]
        return frozenset(
            p for p in self._points
            if any(u in hole for u in neighbors(p))
        )

    @property
    def inner_boundaries(self) -> List[FrozenSet[Point]]:
        """One boundary point set per hole, in the order of :attr:`holes`."""
        return [self.inner_boundary(i) for i in range(len(self.holes))]

    @property
    def outer_boundary_length(self) -> int:
        """``L_out``: the number of points on the outer boundary."""
        return len(self.outer_boundary)

    @property
    def max_boundary_length(self) -> int:
        """``L_max``: the maximum number of points over all boundaries."""
        lengths = [self.outer_boundary_length]
        lengths.extend(len(b) for b in self.inner_boundaries)
        return max(lengths) if lengths else 0

    # -- local structure ------------------------------------------------------

    def local_boundaries(self, point: Point) -> List[List[int]]:
        """Local boundaries of an occupied point (see module-level function)."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return local_boundaries(point, self._points)

    def boundary_count(self, point: Point,
                       boundary: Optional[Sequence[int]] = None) -> int:
        """Boundary count of an occupied point w.r.t. one of its boundaries."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return boundary_count(point, self._points, boundary)

    def is_redundant(self, point: Point) -> bool:
        """True iff removing the point keeps its 1-hop neighbourhood connected."""
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        return is_redundant(point, self._points)

    def is_erodable(self, point: Point) -> bool:
        """True iff the point is redundant and on the outer boundary.

        Equivalently (Proposition 6): it has a single local boundary and that
        boundary is a local outer boundary.
        """
        if point not in self._points:
            raise ValueError(f"{point} is not in the shape")
        bounds = local_boundaries(point, self._points)
        if len(bounds) != 1:
            return False
        # The unique local boundary must border the outer face.
        boundary = bounds[0]
        return any(
            self.point_in_outer_face(neighbor(point, d)) for d in boundary
        )

    def is_sce(self, point: Point) -> bool:
        """True iff the point is strictly convex and erodable (SCE) w.r.t.
        the shape."""
        if not self.is_erodable(point):
            return False
        bounds = local_boundaries(point, self._points)
        return len(bounds[0]) - 2 > 0

    def sce_points(self) -> List[Point]:
        """All SCE points of the shape, sorted."""
        return sorted(p for p in self.boundary_points if self.is_sce(p))

    def erodable_points(self) -> List[Point]:
        """All erodable points of the shape, sorted."""
        return sorted(p for p in self.boundary_points if self.is_erodable(p))

    # -- v-nodes and virtual rings --------------------------------------------

    def vnodes_of(self, point: Point) -> List[VNode]:
        """The v-nodes associated with an occupied boundary point."""
        return [VNode(point, tuple(b)) for b in self.local_boundaries(point)]

    def all_vnodes(self) -> List[VNode]:
        """All v-nodes of the shape, sorted by point then first direction."""
        result: List[VNode] = []
        for point in sorted(self.boundary_points):
            result.extend(self.vnodes_of(point))
        return result

    def clockwise_successor(self, vnode: VNode) -> Tuple[VNode, Point]:
        """Return the clockwise successor v-node of ``vnode`` and their common
        (unoccupied) point, following Observation 3."""
        if len(self._points) < 2:
            raise ValueError("successor v-nodes require a shape with >= 2 points")
        last_dir = vnode.last_direction
        common = neighbor(vnode.point, last_dir)
        successor_point = neighbor(vnode.point, rotate_cw(last_dir, 1))
        if successor_point not in self._points:
            raise RuntimeError(
                "inconsistent local boundary: clockwise successor point "
                f"{successor_point} of {vnode.point} is unoccupied"
            )
        wanted_dir = direction_between(successor_point, common)
        for candidate in self.vnodes_of(successor_point):
            if wanted_dir in candidate.boundary:
                return candidate, common
        raise RuntimeError(
            f"no v-node of {successor_point} contains the common point {common}"
        )

    def virtual_rings(self) -> List[VirtualRing]:
        """All oriented virtual rings of the shape, one per global boundary.

        The first ring in the returned list is always the outer one.  Rings
        are built by following clockwise successors (Observation 3); by
        Observation 4 the outer ring's counts sum to 6 and every inner ring's
        counts sum to -6.
        """
        if self._rings is not None:
            return list(self._rings)
        if len(self._points) < 2:
            raise ValueError("virtual rings require a shape with >= 2 points")
        self._compute_faces()
        unvisited: Set[VNode] = set(self.all_vnodes())
        rings: List[VirtualRing] = []
        while unvisited:
            start = min(unvisited, key=lambda v: (v.point, v.boundary))
            ordered: List[VNode] = []
            is_outer = False
            current = start
            while True:
                ordered.append(current)
                unvisited.discard(current)
                nxt, common = self.clockwise_successor(current)
                if self.point_in_outer_face(common):
                    is_outer = True
                if nxt == start:
                    break
                current = nxt
            rings.append(VirtualRing(tuple(ordered), is_outer))
        rings.sort(key=lambda ring: (not ring.is_outer, sorted(ring.points)[0]))
        self._rings = rings
        return list(rings)

    def outer_ring(self) -> VirtualRing:
        """The virtual ring of the global outer boundary."""
        for ring in self.virtual_rings():
            if ring.is_outer:
                return ring
        raise RuntimeError("shape has no outer ring")

    def inner_rings(self) -> List[VirtualRing]:
        """The virtual rings of the inner boundaries (one per hole boundary)."""
        return [ring for ring in self.virtual_rings() if not ring.is_outer]

    # -- misc -------------------------------------------------------------

    def centroid_point(self) -> Point:
        """An occupied point closest to the Euclidean centroid of the shape.

        Useful as a deterministic reference point for generators and tests.
        """
        if not self._points:
            raise ValueError("empty shape has no centroid")
        mean_q = sum(q for q, _ in self._points) / len(self._points)
        mean_r = sum(r for _, r in self._points) / len(self._points)
        return min(
            self._points,
            key=lambda p: (abs(p[0] - mean_q) + abs(p[1] - mean_r), p),
        )

    def translated(self, dq: int, dr: int) -> "Shape":
        """Return a copy of the shape translated by ``(dq, dr)``."""
        return Shape((q + dq, r + dr) for q, r in self._points)
