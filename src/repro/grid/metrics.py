"""Exact shape metrics used by the paper's bounds.

All quantities are defined in Section 2 of the paper:

* ``n``      — number of particles / occupied points,
* ``n_A``    — number of points of the area (shape plus holes),
* ``D``      — diameter of the shape w.r.t. shortest paths inside the shape,
* ``D_A``    — diameter of the shape w.r.t. shortest paths inside the area,
* ``D_G``    — diameter of the shape w.r.t. the full triangular grid,
* ``L_out``  — number of points on the outer boundary,
* ``L_max``  — maximum boundary length over all boundaries,
* ``eps_G(v)`` — eccentricity of ``v`` w.r.t. the grid (greatest grid
  distance from ``v`` to any shape point).

Distances within a point set are computed by breadth-first search; the grid
metric has the closed form of :func:`repro.grid.coords.grid_distance`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

from .coords import Point, grid_distance, neighbors_interned
from .shape import Shape

__all__ = [
    "bfs_distances",
    "eccentricity_within",
    "diameter_within",
    "grid_eccentricity",
    "grid_diameter",
    "ShapeMetrics",
    "compute_metrics",
]


def bfs_distances(source: Point, allowed: AbstractSet[Point],
                  targets: Optional[AbstractSet[Point]] = None) -> Dict[Point, int]:
    """Shortest-path distances from ``source`` to points of ``allowed``.

    Paths may only use points of ``allowed``.  If ``targets`` is given the
    search stops once all targets have been reached (distances to some other
    points may be missing from the result).
    """
    if source not in allowed:
        raise ValueError("source must belong to the allowed set")
    distances: Dict[Point, int] = {source: 0}
    remaining = set(targets) - {source} if targets is not None else None
    queue = deque([source])
    while queue:
        current = queue.popleft()
        d = distances[current]
        for nxt in neighbors_interned(current):
            if nxt in allowed and nxt not in distances:
                distances[nxt] = d + 1
                queue.append(nxt)
                if remaining is not None:
                    remaining.discard(nxt)
        if remaining is not None and not remaining:
            break
    return distances


def eccentricity_within(source: Point, shape_points: AbstractSet[Point],
                        allowed: AbstractSet[Point]) -> int:
    """Eccentricity of ``source``: the greatest distance (within ``allowed``)
    from ``source`` to any point of ``shape_points``."""
    distances = bfs_distances(source, allowed, targets=shape_points)
    missing = [p for p in shape_points if p not in distances]
    if missing:
        raise ValueError(
            f"{len(missing)} shape points are unreachable from {source} "
            "within the allowed set"
        )
    return max(distances[p] for p in shape_points)


def diameter_within(shape_points: AbstractSet[Point],
                    allowed: AbstractSet[Point]) -> int:
    """Diameter of ``shape_points`` w.r.t. shortest paths within ``allowed``.

    This is the greatest eccentricity over the shape's points (Section 2.1).
    """
    if not shape_points:
        raise ValueError("diameter of an empty point set")
    return max(
        eccentricity_within(p, shape_points, allowed) for p in shape_points
    )


def grid_eccentricity(source: Point, shape_points: AbstractSet[Point]) -> int:
    """Eccentricity of ``source`` w.r.t. the full grid metric."""
    if not shape_points:
        raise ValueError("eccentricity w.r.t. an empty point set")
    return max(grid_distance(source, p) for p in shape_points)


def grid_diameter(shape_points: AbstractSet[Point]) -> int:
    """Diameter of the point set w.r.t. the full grid metric (``D_G``)."""
    if not shape_points:
        raise ValueError("diameter of an empty point set")
    points = sorted(shape_points)
    return max(
        grid_distance(a, b)
        for i, a in enumerate(points)
        for b in points[i + 1:]
    ) if len(points) > 1 else 0


@dataclass(frozen=True)
class ShapeMetrics:
    """The bundle of parameters appearing in the paper's complexity bounds."""

    n: int
    n_area: int
    diameter: int
    area_diameter: int
    grid_diam: int
    l_out: int
    l_max: int
    num_holes: int

    def as_dict(self) -> Dict[str, int]:
        """Dictionary view with the paper's notation as keys."""
        return {
            "n": self.n,
            "n_A": self.n_area,
            "D": self.diameter,
            "D_A": self.area_diameter,
            "D_G": self.grid_diam,
            "L_out": self.l_out,
            "L_max": self.l_max,
            "holes": self.num_holes,
        }


def compute_metrics(shape: Shape) -> ShapeMetrics:
    """Compute all metrics of a connected shape.

    The computation is exact (all-sources BFS); it is intended for the shape
    sizes used in tests and benchmarks (up to a few thousand points).
    """
    if not shape.is_connected():
        raise ValueError("metrics are defined for connected shapes only")
    points = shape.points
    area = shape.area_points
    diameter = diameter_within(points, points)
    area_diameter = diameter_within(points, area)
    return ShapeMetrics(
        n=len(points),
        n_area=len(area),
        diameter=diameter,
        area_diameter=area_diameter,
        grid_diam=grid_diameter(points),
        l_out=shape.outer_boundary_length,
        l_max=shape.max_boundary_length,
        num_holes=len(shape.holes),
    )
