"""Axial coordinates on the infinite triangular grid.

The particles of the amoebot model live on the triangular grid ``G`` (the
infinite lattice in which every point has exactly six neighbours).  We
represent grid points with axial coordinates ``(q, r)`` and fix a global
clockwise ordering of the six directions, matching the paper's convention
that all particles share clockwise chirality (Section 2.2 of the paper).

Under the standard planar embedding used throughout this package the point
``(q, r)`` sits at Cartesian position ``(q + r / 2, r * sqrt(3) / 2)`` with
the y axis pointing *down* (screen coordinates), so the directions below are
listed in clockwise order as seen on screen.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

Point = Tuple[int, int]

#: The six neighbour offsets in clockwise order.  Index ``i`` is the global
#: direction ``i``; a particle's port ``p`` maps to the global direction
#: ``(p + orientation_offset) % 6``.
DIRECTIONS: Tuple[Point, ...] = (
    (1, 0),    # E
    (0, 1),    # SE
    (-1, 1),   # SW
    (-1, 0),   # W
    (0, -1),   # NW
    (1, -1),   # NE
)

#: Human readable names for the six directions, same order as DIRECTIONS.
DIRECTION_NAMES: Tuple[str, ...] = ("E", "SE", "SW", "W", "NW", "NE")

NUM_DIRECTIONS = 6


def direction_index(name_or_index) -> int:
    """Normalise a direction given by name (``"E"``) or index (``0``)."""
    if isinstance(name_or_index, str):
        try:
            return DIRECTION_NAMES.index(name_or_index.upper())
        except ValueError:
            raise ValueError(f"unknown direction name: {name_or_index!r}") from None
    index = int(name_or_index)
    if not 0 <= index < NUM_DIRECTIONS:
        raise ValueError(f"direction index out of range: {index}")
    return index


def opposite_direction(direction: int) -> int:
    """Return the direction pointing the other way (``E`` -> ``W``)."""
    return (direction_index(direction) + 3) % NUM_DIRECTIONS


def rotate_cw(direction: int, steps: int = 1) -> int:
    """Rotate a direction clockwise by ``steps`` sixths of a turn."""
    return (direction_index(direction) + steps) % NUM_DIRECTIONS


def rotate_ccw(direction: int, steps: int = 1) -> int:
    """Rotate a direction counter-clockwise by ``steps`` sixths of a turn."""
    return (direction_index(direction) - steps) % NUM_DIRECTIONS


def neighbor(point: Point, direction: int) -> Point:
    """Return the neighbour of ``point`` in the given global direction."""
    # Hot path of every activation: index directly for the canonical int
    # case, fall back to the normalising lookup for names / out-of-range.
    if type(direction) is int and 0 <= direction < NUM_DIRECTIONS:
        dq, dr = DIRECTIONS[direction]
    else:
        dq, dr = DIRECTIONS[direction_index(direction)]
    return (point[0] + dq, point[1] + dr)


def neighbors(point: Point) -> List[Point]:
    """Return the six neighbours of ``point`` in clockwise order."""
    q, r = point
    return [(q + dq, r + dr) for dq, dr in DIRECTIONS]


#: point -> the tuple of its six neighbours, clockwise (see
#: :func:`neighbors_interned`).  Cleared wholesale at the safety cap; real
#: workloads revisit the same points constantly, so the cache stabilises at
#: the size of the visited region.
_RING_CACHE: dict = {}
_RING_CACHE_MAX = 1 << 20


def neighbors_interned(point: Point) -> Tuple[Point, ...]:
    """The six neighbours of ``point`` in clockwise order, interned.

    Unlike :func:`neighbors` the returned tuple is cached and shared, so
    repeated neighbourhood scans of the same point (flood fills, BFS, the
    incremental shape maintenance) allocate nothing after the first visit.
    Callers must treat the result as immutable.
    """
    ring = _RING_CACHE.get(point)
    if ring is None:
        if len(_RING_CACHE) >= _RING_CACHE_MAX:
            _RING_CACHE.clear()
        q, r = point
        ring = _RING_CACHE[point] = tuple(
            (q + dq, r + dr) for dq, dr in DIRECTIONS
        )
    return ring


_DELTA_TO_DIRECTION = {delta: index for index, delta in enumerate(DIRECTIONS)}


def direction_between(src: Point, dst: Point) -> int:
    """Return the global direction index from ``src`` to its neighbour ``dst``.

    Raises ``ValueError`` if the two points are not adjacent.
    """
    direction = _DELTA_TO_DIRECTION.get((dst[0] - src[0], dst[1] - src[1]))
    if direction is None:
        raise ValueError(f"{src} and {dst} are not adjacent grid points")
    return direction



def are_adjacent(a: Point, b: Point) -> bool:
    """Return True iff the two grid points are neighbours."""
    return (b[0] - a[0], b[1] - a[1]) in DIRECTIONS


def grid_distance(a: Point, b: Point) -> int:
    """Shortest-path distance between two points on the full triangular grid.

    This is the classical hex/axial distance
    ``(|dq| + |dr| + |dq + dr|) / 2``.
    """
    dq = a[0] - b[0]
    dr = a[1] - b[1]
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def to_cartesian(point: Point) -> Tuple[float, float]:
    """Planar embedding of a grid point (y axis pointing down)."""
    q, r = point
    return (q + r / 2.0, r * math.sqrt(3.0) / 2.0)


def translate(point: Point, direction: int, steps: int = 1) -> Point:
    """Return the point reached from ``point`` after ``steps`` moves along
    ``direction``."""
    dq, dr = DIRECTIONS[direction_index(direction)]
    return (point[0] + dq * steps, point[1] + dr * steps)


def line(start: Point, direction: int, length: int) -> List[Point]:
    """Return ``length`` collinear points starting at ``start`` and marching
    along ``direction`` (the start point is included)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    dq, dr = DIRECTIONS[direction_index(direction)]
    q, r = start
    return [(q + dq * i, r + dr * i) for i in range(length)]


def ring(center: Point, radius: int) -> List[Point]:
    """Return the hexagonal ring of points at grid distance exactly ``radius``
    from ``center``, listed in clockwise order starting from the point at
    ``center + radius * E``.

    ``radius == 0`` returns ``[center]``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        return [center]
    points: List[Point] = []
    # Start on the E axis and walk clockwise.  From the easternmost point the
    # first clockwise side of the hexagon heads SW, then W, NW, NE, E, SE.
    current = translate(center, 0, radius)
    side_directions = [2, 3, 4, 5, 0, 1]
    for direction in side_directions:
        for _ in range(radius):
            points.append(current)
            current = neighbor(current, direction)
    return points


def disk(center: Point, radius: int) -> List[Point]:
    """Return all points at grid distance at most ``radius`` from ``center``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    points: List[Point] = []
    for rad in range(radius + 1):
        points.extend(ring(center, rad))
    return points


def bounding_box(points: Iterable[Point]) -> Tuple[int, int, int, int]:
    """Return ``(min_q, min_r, max_q, max_r)`` for a non-empty point set."""
    iterator: Iterator[Point] = iter(points)
    try:
        q0, r0 = next(iterator)
    except StopIteration:
        raise ValueError("bounding_box of an empty point collection") from None
    min_q = max_q = q0
    min_r = max_r = r0
    for q, r in iterator:
        min_q = min(min_q, q)
        max_q = max(max_q, q)
        min_r = min(min_r, r)
        max_r = max(max_r, r)
    return (min_q, min_r, max_q, max_r)


def normalize(points: Sequence[Point]) -> List[Point]:
    """Translate a point set so its bounding box starts at the origin and
    return the points sorted.  Useful for canonical comparisons in tests."""
    if not points:
        return []
    min_q, min_r, _, _ = bounding_box(points)
    return sorted((q - min_q, r - min_r) for q, r in points)
