"""Shared filesystem primitives for the orchestrator's on-disk state.

The result cache, the task queue and the ledger all coordinate concurrent
processes — possibly on different machines — through plain files, so they
share one publication idiom: write to a hidden temp file in the target
directory, ``fsync``, then ``os.replace``.  Readers see either nothing or
the complete payload, never a torn write, and the data is on stable
storage before the name becomes visible (a bare rename can survive a crash
that the unsynced data behind it does not).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["read_json", "write_json_atomic", "write_text_atomic"]


def write_text_atomic(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` atomically and durably.

    The dashboard's ``--watch`` loop republishes through this, so a
    browser (or a tailing script) always reads a complete page, never a
    half-rendered one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    """Publish ``payload`` at ``path`` atomically and durably."""
    write_text_atomic(path, json.dumps(payload))


def read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse ``path`` as a JSON object; ``None`` if missing or unreadable."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
