"""Append-only JSONL run ledger: the durable record of a sweep.

Every finished run — executed, cache-served or failed — is appended to the
ledger as one self-contained JSON line, so the file is valid after a crash
at any byte boundary except possibly its final line (which the reader
tolerantly skips).  Resuming an interrupted sweep is then just "skip every
config whose digest already has a ``done`` line".

The ledger is safe for **concurrent writers on a shared filesystem**: each
entry is encoded once and emitted with a single ``os.write`` on an
``O_APPEND`` descriptor (atomic with respect to the file offset), under an
advisory ``fcntl`` lock where the platform provides one so that appends
from different machines cannot interleave even on filesystems with weaker
append semantics.  This is what lets the queue transport's coordinator and
any number of concurrent sweeps share one ledger file.

The ledger stores full :class:`ExperimentRecord` payloads (via the
:mod:`repro.io` dictionary form), so a finished ledger doubles as the raw
data file behind a table or figure: ``RunLedger(path).records()`` feeds
straight into :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

from ..telemetry import counter as _metric
from .spec import RunConfig

try:  # advisory locking is POSIX-only; the O_APPEND write stands alone
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["LEDGER_KIND", "LedgerReader", "RunLedger"]

PathLike = Union[str, Path]

LEDGER_KIND = "sweep-run"


class LedgerReader:
    """Single-pass, torn-tail-tolerant stream over one ledger file.

    Iterating yields parsed ledger entries one line at a time — O(1)
    memory regardless of ledger size, which is what lets the streaming
    analysis layer (:mod:`repro.analysis.stream`) fold million-line
    ledgers without materialising them.

    Only lines terminated by a newline are consumed: a torn final line
    (a writer crashed mid-append — or is still appending right now) is
    left unread and :attr:`offset` stops just before it.  Iterating the
    same reader again resumes from :attr:`offset`, so the reader doubles
    as the follow-tail primitive: poll, drain, sleep, repeat, and the
    once-torn line is picked up whole on a later pass.

    Complete-but-unparseable lines and entries of a foreign ``kind`` are
    skipped (they belong to other tooling), but do advance the offset.
    """

    def __init__(self, path: PathLike, start: int = 0) -> None:
        self.path = Path(path)
        #: Byte position after the last *complete* line consumed.
        self.offset = int(start)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        try:
            handle = open(self.path, "rb")
        except OSError:
            return  # no ledger yet: a follow-tail simply polls again
        try:
            handle.seek(self.offset)
            while True:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    return  # EOF, or a torn tail: do not advance offset
                self.offset += len(line)
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    entry = json.loads(stripped)
                except ValueError:
                    continue  # complete but corrupt: skip, keep streaming
                if isinstance(entry, dict) and entry.get("kind") == LEDGER_KIND:
                    yield entry
        finally:
            handle.close()


class RunLedger:
    """Durable, append-only record of every run a sweep has finished."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    # -- writing ------------------------------------------------------------

    def append(self, digest: str, config: RunConfig, status: str,
               record_dict: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None,
               elapsed: float = 0.0,
               attempts: Optional[int] = None) -> None:
        """Append one finished run; ``status`` is ``"done"`` or ``"failed"``.

        ``attempts`` records how many times this config has failed so far
        (cumulative across resumed sweeps); :func:`~repro.orchestrator.pool.
        run_sweep` uses it to cap retries on ``--resume``.
        """
        if status not in ("done", "failed"):
            raise ValueError(f"status must be 'done' or 'failed', got {status!r}")
        entry: Dict[str, Any] = {
            "kind": LEDGER_KIND,
            "digest": digest,
            "config": config.to_dict(),
            "status": status,
            "elapsed": round(float(elapsed), 6),
        }
        if record_dict is not None:
            entry["record"] = record_dict
        if error is not None:
            entry["error"] = error
        if attempts is not None:
            entry["attempts"] = int(attempts)
        line = (json.dumps(entry) + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One write() call on an O_APPEND descriptor: the kernel advances
        # the offset and writes atomically, so two processes appending at
        # once can never tear each other's lines on a local filesystem.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:
                    pass  # locking unsupported (some network mounts)
            os.write(fd, line)
        finally:
            os.close(fd)  # closing the descriptor releases the lock
        _metric("ledger.appends").inc()

    # -- reading ------------------------------------------------------------

    def iter_entries(self, start: int = 0) -> LedgerReader:
        """A streaming, torn-tail-tolerant :class:`LedgerReader` over the
        ledger, beginning at byte offset ``start``.

        Every reading method of this class goes through it, so no
        analysis path materialises the whole file; re-iterating the
        returned reader resumes where the previous pass stopped (the
        follow-tail idiom behind :func:`repro.analysis.stream.
        follow_entries`).
        """
        return LedgerReader(self.path, start=start)

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Parsed ledger lines, skipping blank or truncated ones."""
        return iter(self.iter_entries())

    def completed_digests(self) -> Set[str]:
        """Digests of configs that finished successfully (``done`` lines).

        Failed runs are deliberately excluded so a resumed sweep retries
        them.
        """
        return {entry["digest"] for entry in self.entries()
                if entry.get("status") == "done" and "digest" in entry}

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Map digest → latest ``done`` entry (with its record payload)."""
        done: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries():
            if entry.get("status") == "done" and "digest" in entry:
                done[entry["digest"]] = entry
        return done

    def failures(self) -> Dict[str, Dict[str, Any]]:
        """Map digest → latest ``failed`` entry, with an ``attempts`` count.

        ``attempts`` is the larger of the count recorded on the entry and
        the number of failed lines seen for the digest, so ledgers written
        before attempts were recorded still count correctly.
        """
        failed: Dict[str, Dict[str, Any]] = {}
        seen: Dict[str, int] = {}
        for entry in self.entries():
            if entry.get("status") == "failed" and entry.get("digest"):
                digest = entry["digest"]
                seen[digest] = seen.get(digest, 0) + 1
                latest = dict(entry)
                latest["attempts"] = max(int(entry.get("attempts", 0)),
                                         seen[digest])
                failed[digest] = latest
        return failed

    def records(self) -> List:
        """All successfully-recorded :class:`ExperimentRecord` values, in
        first-completion order.

        Deduplicated by digest: a config that was completed in one sweep and
        served from the result cache in a later one appears in the ledger
        twice but counts as one measurement.  Entries with no digest (e.g.
        written by external tooling) cannot be identified as duplicates of
        anything, so each one is kept as its own measurement rather than
        silently collapsed.
        """
        from ..io import records_from_dicts

        dicts: Dict[str, Dict[str, Any]] = {}
        for position, entry in enumerate(self.entries()):
            if entry.get("status") == "done" and "record" in entry:
                key = entry.get("digest") or f"__undigested-{position}"
                dicts.setdefault(key, entry["record"])
        return records_from_dicts(dicts.values())

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
