"""Append-only JSONL run ledger: the durable record of a sweep.

Every finished run — executed, cache-served or failed — is appended to the
ledger as one self-contained JSON line and flushed immediately, so the file
is valid after a crash at any byte boundary except possibly its final line
(which the reader tolerantly skips).  Resuming an interrupted sweep is then
just "skip every config whose digest already has a ``done`` line".

The ledger stores full :class:`ExperimentRecord` payloads (via the
:mod:`repro.io` dictionary form), so a finished ledger doubles as the raw
data file behind a table or figure: ``RunLedger(path).records()`` feeds
straight into :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

from .spec import RunConfig

__all__ = ["LEDGER_KIND", "RunLedger"]

PathLike = Union[str, Path]

LEDGER_KIND = "sweep-run"


class RunLedger:
    """Durable, append-only record of every run a sweep has finished."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    # -- writing ------------------------------------------------------------

    def append(self, digest: str, config: RunConfig, status: str,
               record_dict: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None,
               elapsed: float = 0.0) -> None:
        """Append one finished run; ``status`` is ``"done"`` or ``"failed"``."""
        if status not in ("done", "failed"):
            raise ValueError(f"status must be 'done' or 'failed', got {status!r}")
        entry: Dict[str, Any] = {
            "kind": LEDGER_KIND,
            "digest": digest,
            "config": config.to_dict(),
            "status": status,
            "elapsed": round(float(elapsed), 6),
        }
        if record_dict is not None:
            entry["record"] = record_dict
        if error is not None:
            entry["error"] = error
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()

    # -- reading ------------------------------------------------------------

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Parsed ledger lines, skipping blank or truncated ones."""
        if not self.path.is_file():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # interrupted mid-write; the run will re-run
                if isinstance(entry, dict) and entry.get("kind") == LEDGER_KIND:
                    yield entry

    def completed_digests(self) -> Set[str]:
        """Digests of configs that finished successfully (``done`` lines).

        Failed runs are deliberately excluded so a resumed sweep retries
        them.
        """
        return {entry["digest"] for entry in self.entries()
                if entry.get("status") == "done" and "digest" in entry}

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Map digest → latest ``done`` entry (with its record payload)."""
        done: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries():
            if entry.get("status") == "done" and "digest" in entry:
                done[entry["digest"]] = entry
        return done

    def records(self) -> List:
        """All successfully-recorded :class:`ExperimentRecord` values, in
        first-completion order.

        Deduplicated by digest: a config that was completed in one sweep and
        served from the result cache in a later one appears in the ledger
        twice but counts as one measurement.
        """
        from ..io import records_from_dicts

        dicts: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries():
            if entry.get("status") == "done" and "record" in entry:
                dicts.setdefault(entry.get("digest", ""), entry["record"])
        return records_from_dicts(dicts.values())

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
