"""TCP coordinator/worker transport: distribute a sweep with no shared state.

The :mod:`~repro.orchestrator.queue` transport needs a shared filesystem;
this module needs only a network.  A **coordinator** process
(``python -m repro serve``) owns the task set in memory — pending tasks,
leases with heartbeat deadlines, stale-lease reclamation and per-task retry
budgets, the exact semantics of :class:`~repro.orchestrator.queue.
FileTaskQueue` — and speaks a JSON-lines protocol over TCP to two kinds of
clients:

* **workers** (``python -m repro worker --connect HOST:PORT``) claim tasks,
  heartbeat their leases while the simulation runs, stream back the
  :func:`~repro.orchestrator.transport.execute_payload` outcome, and
  reconnect with exponential backoff after coordinator or link failures;
* **submitters** (:class:`TcpTransport`, behind ``repro sweep --transport
  tcp --coordinator HOST:PORT``) enqueue the sweep's pending configs and
  poll for their results.  The transport survives a coordinator restart:
  on reconnect it re-submits every still-pending task (submission is
  idempotent — a result the restarted coordinator already holds is served
  immediately, anything lost is simply re-run).

Because task payloads and result payloads use the **same dialect as the
filesystem queue** (``kind``/``id``/``digest``/``config``/``attempt``/
``record``-or-``error``), :func:`~repro.orchestrator.pool.run_sweep` treats
both distributed backends identically: results are re-ordered into spec
order, cache and ledger writes are unchanged, and a TCP sweep's ledger is
byte-comparable with a ``--jobs 1`` run of the same spec.

Wire protocol (one JSON object per line, UTF-8):

* the server greets each connection with ``{"server": ..., "proto": 1,
  "nonce": ...}``;
* the client answers ``{"op": "hello", "role": "worker"|"submitter", ...}``
  carrying ``auth = HMAC-SHA256(secret, nonce)`` when the coordinator was
  started with a shared secret (the secret itself never crosses the wire);
* every subsequent line is one request → one ``{"ok": ...}`` response:
  ``submit`` / ``collect`` / ``workers`` for submitters, ``claim`` /
  ``heartbeat`` / ``result`` for workers, ``ping`` for everyone.
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import socketserver
import threading
import time
import uuid
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..telemetry import summarize_ages
from .queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_POLL,
    DEFAULT_TASK_ATTEMPTS,
    RESULT_KIND,
    TASK_KIND,
    WorkerSummary,
    _budget,
)
from .transport import TransportItem, execute_payload

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "CoordinatorClient",
    "CoordinatorServer",
    "HandshakeError",
    "TaskBoard",
    "TcpTransport",
    "fetch_status",
    "parse_address",
    "run_server",
    "run_tcp_worker",
]

#: Default port ``python -m repro serve`` listens on.
DEFAULT_PORT = 7643
#: Bumped when the wire protocol changes incompatibly.
PROTOCOL_VERSION = 1
#: How many tasks/result-ids travel in one protocol line (bounds line size).
_BATCH = 256
#: Reconnect backoff: first delay and cap, seconds.
_BACKOFF_FIRST = 0.2
_BACKOFF_MAX = 5.0

#: Seconds an uncollected result stays on the board before it is pruned —
#: the in-memory analog of ``repro queue-gc --ttl``.  Must be comfortably
#: larger than any sweep's duration: a submitter whose result is pruned
#: under it simply re-enqueues the task (wasteful, never incorrect).
DEFAULT_RESULT_TTL = 24 * 3600.0

SERVER_NAME = "repro-coordinator"


class HandshakeError(ConnectionError):
    """The coordinator rejected the handshake (bad secret, bad protocol).

    Deliberately **not** retried by workers or transports: reconnecting
    with the same credentials can never succeed, so surfacing the
    rejection immediately beats a silent backoff loop.
    """


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``:PORT`` / ``PORT``) into a pair."""
    text = str(address).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"invalid coordinator address {address!r}; expected HOST:PORT"
        ) from None


def _auth_token(secret: str, nonce: str) -> str:
    return hmac.new(secret.encode("utf-8"), nonce.encode("utf-8"),
                    "sha256").hexdigest()


# ---------------------------------------------------------------------------
# The coordinator-side task set
# ---------------------------------------------------------------------------

class TaskBoard:
    """In-memory task set with the filesystem queue's lease/retry semantics.

    Thread-safe: every protocol handler thread goes through one lock.  The
    state machine per task id mirrors the queue directory layout — a task
    is *pending* (claimable), *leased* (owned by a worker, with a heartbeat
    deadline), or *done* (a result payload exists).  Reclamation, budget
    accounting and the "a failure never overwrites a successful result"
    rule are copied from :class:`~repro.orchestrator.queue.FileTaskQueue`
    so the two distributed backends stay behaviorally interchangeable.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL,
                 result_ttl: float = DEFAULT_RESULT_TTL) -> None:
        self.lease_ttl = float(lease_ttl)
        self.result_ttl = float(result_ttl)
        self._lock = threading.Lock()
        #: task id -> task payload (kind/id/digest/config/attempt/...).
        self._tasks: Dict[str, Dict[str, Any]] = {}
        #: claimable task ids (subset of ``_tasks``).
        self._pending: set = set()
        #: task id -> (worker id, heartbeat deadline, leased-at stamp) —
        #: the last entry feeds the lease-age percentiles in ``stats()``.
        self._leases: Dict[str, Tuple[str, float, float]] = {}
        #: task id -> finished result payload (record or terminal error).
        self._results: Dict[str, Dict[str, Any]] = {}
        #: task id -> when its result was published / last collected, on
        #: the same monotonic clock as the lease deadlines.  Results older
        #: than ``result_ttl`` are pruned so a long-lived coordinator's
        #: memory is bounded by its active campaigns, not its history.
        self._result_times: Dict[str, float] = {}
        #: Lifetime op counters for ``stats()`` / the ``status`` op.
        self._counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()
        #: Monotonic stamps of recent completions (rolling throughput).
        self._completions: deque = deque(maxlen=4096)

    def note(self, name: str, amount: int = 1) -> None:
        """Bump a lifetime counter (safe with or without the board lock)."""
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    # -- submitter side -----------------------------------------------------

    def enqueue(self, task_id: str, config_dict: Dict[str, Any], digest: str,
                max_attempts: Optional[int] = DEFAULT_TASK_ATTEMPTS,
                options: Optional[Dict[str, Any]] = None) -> str:
        """Make ``task_id`` runnable; same contract as the queue's enqueue:
        ``"result-exists"`` / ``"pending"`` / ``"enqueued"``.  A lingering
        failed result is discarded and retried from a zeroed attempt count.
        ``options`` (``checkpoint_every``/``checkpoint_dir``) travels in
        the task so every worker — including one resuming a reclaimed
        task — runs it the same way.
        """
        with self._lock:
            result = self._results.get(task_id)
            if result is not None and "record" in result:
                return "result-exists"
            if result is not None:
                del self._results[task_id]
                self._result_times.pop(task_id, None)
            if task_id in self._tasks:
                return "pending"
            task = {
                "kind": TASK_KIND,
                "id": task_id,
                "digest": digest,
                "config": config_dict,
                "attempt": 0,
                "max_attempts": _budget(max_attempts),
                "enqueued_at": time.time(),
            }
            if options:
                task["options"] = dict(options)
            self._tasks[task_id] = task
            self._pending.add(task_id)
        self.note("enqueued")
        return "enqueued"

    def collect(self, task_ids: Sequence[str]) -> List[Dict[str, Any]]:
        """Finished result payloads among ``task_ids`` (stateless: results
        stay on the board, so a reconnecting submitter can ask again)."""
        now = time.monotonic()
        with self._lock:
            found = [task_id for task_id in task_ids
                     if task_id in self._results]
            for task_id in found:
                self._result_times[task_id] = now
            return [dict(self._results[task_id]) for task_id in found]

    # -- worker side --------------------------------------------------------

    def claim(self, worker_id: str,
              now: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Lease the lowest-id pending task to ``worker_id``, or ``None``."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self._pending:
                return None
            task_id = min(self._pending)
            self._pending.discard(task_id)
            self._leases[task_id] = (worker_id, now + self.lease_ttl, now)
            task = dict(self._tasks[task_id])
        self.note("claims")
        return task

    def heartbeat(self, worker_id: str, task_id: str,
                  now: Optional[float] = None) -> bool:
        """Extend the lease deadline; ``False`` if the lease is no longer
        this worker's (reclaimed, completed, or never claimed)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease[0] != worker_id:
                return False
            # The leased-at stamp survives heartbeats: a lease's age is
            # measured from its claim, not its last proof of life.
            self._leases[task_id] = (worker_id, now + self.lease_ttl,
                                     lease[2])
        self.note("heartbeats")
        return True

    def complete(self, worker_id: str, task_id: str,
                 outcome: Dict[str, Any]) -> str:
        """Consume a worker's ``execute_payload`` outcome.

        Returns the fate of the task: ``"done"`` (result published — a
        record, or an error that exhausted the retry budget), ``"retry"``
        (failure re-enqueued with the attempt counter bumped) or
        ``"ignored"`` (stale: the lease was reclaimed and someone else owns
        the task now, or a successful result already exists).
        """
        with self._lock:
            existing = self._results.get(task_id)
            if existing is not None and "record" in existing:
                return "ignored"
            task = self._tasks.get(task_id)
            lease = self._leases.get(task_id)
            owns = lease is not None and lease[0] == worker_id
            if task is None:
                # Unknown task (board restarted): accept a success so the
                # work is not wasted, drop anything else.
                if "record" in outcome:
                    self._publish(task_id, self._result_payload(
                        task_id, {}, worker_id, 1, outcome))
                    self.note("completed")
                    return "done"
                return "ignored"
            if "record" in outcome:
                attempt = int(task.get("attempt", 0)) + 1
                self._publish(task_id, self._result_payload(
                    task_id, task, worker_id, attempt, outcome))
                self._drop_task(task_id)
                self.note("completed")
                return "done"
            if not owns:
                # A reclaimed lease already consumed this attempt; a late
                # failure from the presumed-dead worker must not burn more
                # budget (mirrors the queue's duplicate-run rule).
                return "ignored"
            attempt = int(task.get("attempt", 0)) + 1
            task["attempt"] = attempt
            budget = _budget(task.get("max_attempts"))
            if budget is not None and attempt >= budget:
                self._publish(task_id, self._result_payload(
                    task_id, task, worker_id, attempt, outcome))
                self._drop_task(task_id)
                self.note("completed")
                self.note("exhausted")
                return "done"
            del self._leases[task_id]
            self._pending.add(task_id)
            self.note("retries")
            return "retry"

    # -- shared: stale-lease recovery ---------------------------------------

    def reclaim_stale(self, now: Optional[float] = None) -> List[str]:
        """Recover leases whose heartbeat deadline passed.

        Each reclaim consumes one attempt; a task out of attempts becomes
        a terminal failed result, otherwise it returns to the pending set
        for any live worker to claim.
        """
        now = time.monotonic() if now is None else now
        reclaimed: List[str] = []
        with self._lock:
            for task_id, (_worker, deadline, _leased_at) in \
                    list(self._leases.items()):
                if deadline > now:
                    continue
                task = self._tasks[task_id]
                attempt = int(task.get("attempt", 0)) + 1
                task["attempt"] = attempt
                budget = _budget(task.get("max_attempts"))
                del self._leases[task_id]
                if budget is not None and attempt >= budget:
                    self._publish(task_id, {
                        "kind": RESULT_KIND,
                        "id": task_id,
                        "digest": task.get("digest", ""),
                        "config": task.get("config", {}),
                        "error": (f"worker lease expired and the task is out "
                                  f"of attempts ({attempt}/{budget})"),
                        "attempt": attempt,
                    }, now=now)
                    self._tasks.pop(task_id, None)
                    self.note("exhausted")
                else:
                    self._pending.add(task_id)
                reclaimed.append(task_id)
                self.note("reclaims")
            # Bounded memory for long-lived coordinators: results nobody
            # published or collected within result_ttl are dropped (the
            # in-memory analog of ``repro queue-gc``).
            for task_id, stamp in list(self._result_times.items()):
                if now - stamp > self.result_ttl:
                    self._results.pop(task_id, None)
                    del self._result_times[task_id]
        return reclaimed

    # -- introspection ------------------------------------------------------

    def stats(self, now: Optional[float] = None,
              window: float = 60.0) -> Dict[str, Any]:
        """Board depth plus lease ages, lifetime counters and throughput.

        The historical ``pending`` / ``leased`` / ``done`` tallies stay
        top-level (callers index them directly); everything added for
        ``repro status`` nests beside them.  ``now`` is on the monotonic
        clock and injectable for tests.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            leases = [{"id": task_id, "worker": worker,
                       "age": round(max(0.0, now - leased_at), 3)}
                      for task_id, (worker, _deadline, leased_at)
                      in sorted(self._leases.items())]
            completed_in_window = sum(1 for stamp in self._completions
                                      if now - stamp <= window)
            depth = {
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._results),
            }
        with self._counter_lock:
            counters = dict(self._counters)
        depth["counters"] = counters
        depth["lease_ages"] = summarize_ages([l["age"] for l in leases])
        depth["leases"] = leases
        depth["throughput"] = {
            "window": window,
            "completed": completed_in_window,
            "per_second": round(completed_in_window / window, 4)
                          if window > 0 else 0.0,
        }
        return depth

    # -- internals (call with the lock held) --------------------------------

    def _publish(self, task_id: str, payload: Dict[str, Any],
                 now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        self._results[task_id] = payload
        self._result_times[task_id] = now
        self._completions.append(now)

    def _drop_task(self, task_id: str) -> None:
        self._tasks.pop(task_id, None)
        self._pending.discard(task_id)
        self._leases.pop(task_id, None)

    @staticmethod
    def _result_payload(task_id: str, task: Dict[str, Any], worker_id: str,
                        attempt: int, outcome: Dict[str, Any]
                        ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": RESULT_KIND,
            "id": task_id,
            "digest": task.get("digest", ""),
            "config": task.get("config", outcome.get("config", {})),
            "elapsed": outcome.get("elapsed", 0.0),
            "worker": worker_id,
            "attempt": attempt,
        }
        if "record" in outcome:
            payload["record"] = outcome["record"]
        else:
            payload["error"] = outcome.get("error", "unknown error")
        return payload


# ---------------------------------------------------------------------------
# The coordinator server
# ---------------------------------------------------------------------------

class _Handler(socketserver.StreamRequestHandler):
    """One connection: greeting, handshake, then request/response lines."""

    server: "_TcpServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        board = self.server.board
        nonce = uuid.uuid4().hex
        self._send({"server": SERVER_NAME, "proto": PROTOCOL_VERSION,
                    "nonce": nonce, "lease_ttl": board.lease_ttl})
        hello = self._recv()
        if hello is None or hello.get("op") != "hello":
            self._send({"ok": False, "error": "expected a hello"})
            return
        if int(hello.get("proto", 0)) != PROTOCOL_VERSION:
            self._send({"ok": False,
                        "error": f"protocol mismatch: coordinator speaks "
                                 f"{PROTOCOL_VERSION}"})
            return
        secret = self.server.secret
        if secret is not None:
            auth = str(hello.get("auth", ""))
            if not hmac.compare_digest(auth, _auth_token(secret, nonce)):
                self._send({"ok": False, "error": "handshake rejected: "
                                                  "bad shared secret"})
                return
        role = hello.get("role", "worker")
        worker_id = str(hello.get("worker") or f"tcp-{nonce[:8]}")
        self._send({"ok": True, "server": SERVER_NAME,
                    "proto": PROTOCOL_VERSION, "lease_ttl": board.lease_ttl})
        if role == "worker":
            self.server.worker_connected(worker_id)
        try:
            while True:
                request = self._recv()
                if request is None:
                    return
                try:
                    response = self._dispatch(role, worker_id, request)
                except Exception as exc:  # defensive: never kill the server
                    response = {"ok": False, "error": repr(exc)}
                self._send(response)
        finally:
            if role == "worker":
                self.server.worker_gone(worker_id)

    # -- framing ------------------------------------------------------------

    def _send(self, payload: Dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")

    def _recv(self) -> Optional[Dict[str, Any]]:
        try:
            line = self.rfile.readline()
        except OSError:
            return None
        if not line:
            return None
        try:
            data = json.loads(line)
        except ValueError:
            return None
        return data if isinstance(data, dict) else None

    # -- request dispatch ---------------------------------------------------

    def _dispatch(self, role: str, worker_id: str,
                  request: Dict[str, Any]) -> Dict[str, Any]:
        board = self.server.board
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "stats": board.stats()}
        if op == "workers":
            return {"ok": True, "workers": self.server.live_workers()}
        if op == "status":
            # One self-describing snapshot for ``repro status``: board
            # depth + lease ages + counters + throughput, plus the
            # connection-level worker view the board cannot see.
            board.reclaim_stale()
            return {"ok": True, "status": {
                "server": SERVER_NAME,
                "proto": PROTOCOL_VERSION,
                "lease_ttl": board.lease_ttl,
                "board": board.stats(),
                "workers": self.server.live_workers(),
                "stop": self.server.stop_workers_flag.is_set(),
            }}
        if op == "submit":
            board.reclaim_stale()
            statuses = {}
            for task in request.get("tasks", []):
                task_id = str(task["id"])
                statuses[task_id] = board.enqueue(
                    task_id, task.get("config", {}),
                    str(task.get("digest", "")),
                    max_attempts=task.get("max_attempts",
                                          DEFAULT_TASK_ATTEMPTS),
                    options=task.get("options"))
            return {"ok": True, "statuses": statuses}
        if op == "collect":
            board.reclaim_stale()
            results = board.collect([str(i) for i in request.get("ids", [])])
            return {"ok": True, "results": results}
        if op == "claim":
            if self.server.stop_workers_flag.is_set():
                # The TCP analog of the queue directory's STOP file:
                # workers exit at their next claim instead of idling out.
                board.note("stops_served")
                return {"ok": True, "task": None, "stop": True}
            board.reclaim_stale()
            task = board.claim(worker_id)
            return {"ok": True, "task": task}
        if op == "heartbeat":
            known = board.heartbeat(worker_id, str(request.get("id", "")))
            return {"ok": True, "known": known}
        if op == "result":
            status = board.complete(worker_id, str(request.get("id", "")),
                                    request.get("outcome", {}))
            return {"ok": True, "status": status}
        return {"ok": False, "error": f"unknown op {op!r}"}


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], board: TaskBoard,
                 secret: Optional[str]) -> None:
        super().__init__(address, _Handler)
        self.board = board
        self.secret = secret
        self.stop_workers_flag = threading.Event()
        self._workers_lock = threading.Lock()
        #: worker id -> number of open connections (connection liveness).
        self._worker_connections: Dict[str, int] = {}
        #: every open connection socket, so a stopping server can sever
        #: them — ``shutdown()`` alone only stops *accepting*; established
        #: connections would keep talking to a ghost coordinator.
        self._connections: set = set()

    def process_request(self, request, client_address) -> None:
        with self._workers_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._workers_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        with self._workers_lock:
            # Socket teardown order is immaterial: nothing downstream
            # observes it, and sockets are not sortable anyway.
            connections = list(self._connections)  # repro: lint-ok[D102]
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def worker_connected(self, worker_id: str) -> None:
        with self._workers_lock:
            self._worker_connections[worker_id] = (
                self._worker_connections.get(worker_id, 0) + 1)

    def worker_gone(self, worker_id: str) -> None:
        with self._workers_lock:
            count = self._worker_connections.get(worker_id, 0) - 1
            if count <= 0:
                self._worker_connections.pop(worker_id, None)
            else:
                self._worker_connections[worker_id] = count

    def live_workers(self) -> List[str]:
        with self._workers_lock:
            return sorted(self._worker_connections)


class CoordinatorServer:
    """The coordinator behind ``python -m repro serve``.

    Owns a :class:`TaskBoard` and serves it over TCP from a background
    thread; ``start()`` binds (``port=0`` picks a free port — read the
    actual one back from :attr:`address`), ``stop()`` shuts down.  Usable
    as a context manager, which is how the tests drive restart scenarios.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 secret: Optional[str] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 result_ttl: float = DEFAULT_RESULT_TTL) -> None:
        self.host = host
        self.port = int(port)
        self.secret = secret
        self.board = TaskBoard(lease_ttl=lease_ttl, result_ttl=result_ttl)
        self._server: Optional[_TcpServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            return (self.host, self.port)
        return self._server.server_address[:2]

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "CoordinatorServer":
        if self._server is not None:
            raise RuntimeError("coordinator already started")
        self._server = _TcpServer((self.host, self.port), self.board,
                                  self.secret)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        # Sever live worker/submitter connections too: their reconnect
        # logic must kick in, exactly as after a coordinator crash.
        self._server.close_connections()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._server = None
        self._thread = None

    def live_workers(self) -> List[str]:
        return self._server.live_workers() if self._server else []

    def stop_workers(self) -> None:
        """Tell every connected worker to exit at its next claim (the TCP
        analog of touching ``STOP`` in a queue directory)."""
        if self._server is not None:
            self._server.stop_workers_flag.set()

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
               secret: Optional[str] = None,
               lease_ttl: float = DEFAULT_LEASE_TTL,
               result_ttl: float = DEFAULT_RESULT_TTL,
               ready: Optional[Callable[[str], None]] = None) -> int:
    """Blocking entry point for ``python -m repro serve``.

    Serves until interrupted (Ctrl-C / SIGTERM); ``ready`` is called once
    with the bound ``host:port`` endpoint.
    """
    server = CoordinatorServer(host=host, port=port, secret=secret,
                               lease_ttl=lease_ttl, result_ttl=result_ttl)
    server.start()
    if ready is not None:
        ready(server.endpoint)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 130
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# The protocol client
# ---------------------------------------------------------------------------

class CoordinatorClient:
    """One authenticated JSON-lines connection to a coordinator.

    ``request()`` is serialised by a lock, so a heartbeat thread can share
    the connection with the main loop — requests never interleave on the
    wire.  Connection-level failures surface as ``OSError`` for callers to
    retry; a rejected handshake raises :class:`HandshakeError` (terminal).
    """

    def __init__(self, address: Any, secret: Optional[str] = None,
                 role: str = "submitter", worker_id: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.address = (parse_address(address)
                        if isinstance(address, str) else tuple(address))
        self.secret = secret
        self.role = role
        self.worker_id = worker_id
        self.timeout = float(timeout)
        self.lease_ttl = DEFAULT_LEASE_TTL
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._file: Any = None

    def connect(self) -> "CoordinatorClient":
        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handle = sock.makefile("rwb")
            greeting = json.loads(handle.readline() or b"null")
            if (not isinstance(greeting, dict)
                    or greeting.get("server") != SERVER_NAME):
                raise HandshakeError(
                    f"{self.address[0]}:{self.address[1]} is not a repro "
                    f"coordinator")
            hello: Dict[str, Any] = {"op": "hello", "proto": PROTOCOL_VERSION,
                                     "role": self.role}
            if self.worker_id:
                hello["worker"] = self.worker_id
            if self.secret is not None:
                hello["auth"] = _auth_token(self.secret,
                                            str(greeting.get("nonce", "")))
            handle.write(json.dumps(hello).encode("utf-8") + b"\n")
            handle.flush()
            reply = json.loads(handle.readline() or b"null")
            if not isinstance(reply, dict) or not reply.get("ok"):
                error = (reply or {}).get("error", "connection closed")
                raise HandshakeError(f"coordinator refused the handshake: "
                                     f"{error}")
            self.lease_ttl = float(reply.get("lease_ttl", DEFAULT_LEASE_TTL))
        except Exception:
            sock.close()
            raise
        self._sock, self._file = sock, handle
        return self

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request → one response; raises ``OSError`` on link failure."""
        with self._lock:
            if self._file is None:
                raise OSError("not connected")
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
            if not line:
                raise OSError("coordinator closed the connection")
            response = json.loads(line)
        if not isinstance(response, dict):
            raise OSError("malformed coordinator response")
        if not response.get("ok"):
            raise RuntimeError(f"coordinator error: "
                               f"{response.get('error', 'unknown')}")
        return response

    def close(self) -> None:
        with self._lock:
            for closer in (self._file, self._sock):
                try:
                    if closer is not None:
                        closer.close()
                except OSError:
                    pass
            self._file = self._sock = None

    def __enter__(self) -> "CoordinatorClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def fetch_status(address: Any, secret: Optional[str] = None,
                 timeout: float = 10.0) -> Dict[str, Any]:
    """One-shot ``status`` query against a live coordinator.

    Returns the coordinator's status document (board depth, lease ages,
    counters, throughput, connected workers); raises ``OSError`` /
    :class:`HandshakeError` like any other client operation.
    """
    client = CoordinatorClient(address, secret=secret, role="status",
                               timeout=timeout)
    client.connect()
    try:
        return client.request({"op": "status"})["status"]
    finally:
        client.close()


# ---------------------------------------------------------------------------
# The network worker — ``python -m repro worker --connect HOST:PORT``
# ---------------------------------------------------------------------------

def run_tcp_worker(address: Any,
                   secret: Optional[str] = None,
                   worker_id: Optional[str] = None,
                   poll: float = DEFAULT_POLL,
                   max_idle: Optional[float] = None,
                   max_tasks: Optional[int] = None,
                   progress: Optional[Callable[[str, Dict[str, Any]], None]]
                   = None,
                   checkpoint_dir: Optional[str] = None,
                   checkpoint_every: Optional[int] = None) -> WorkerSummary:
    """Pull-and-execute loop against a TCP coordinator; returns a
    :class:`~repro.orchestrator.queue.WorkerSummary` (which compares equal
    to the number of tasks processed).

    The body mirrors :func:`~repro.orchestrator.queue.run_worker`: claim,
    execute through the shared :func:`execute_payload`, heartbeat from a
    background thread while the simulation runs, publish the outcome.  Two
    differences are inherent to the transport: retry/budget decisions live
    on the coordinator (it owns the task set), and any link failure —
    coordinator restart included — is answered by reconnecting with
    exponential backoff, re-sending an unpublished result first.  A
    rejected handshake (:class:`HandshakeError`) is terminal, never
    retried.

    ``checkpoint_dir`` / ``checkpoint_every`` override the task-carried
    checkpoint options — TCP workers share nothing with the coordinator,
    so the directory a sweep names is usually only meaningful when the
    worker fleet re-points it at storage the *workers* share.

    Exit conditions: a stop broadcast from the coordinator
    (:meth:`CoordinatorServer.stop_workers`), ``max_idle`` seconds without
    work (time spent disconnected counts as idle) or ``max_tasks``
    processed.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    summary = WorkerSummary(worker_id)
    idle_since = time.monotonic()
    backoff = _BACKOFF_FIRST
    connected_before = False
    client: Optional[CoordinatorClient] = None
    #: (task_id, outcome) that could not be delivered before a disconnect.
    unsent: Optional[Tuple[str, Dict[str, Any]]] = None

    def drop_connection() -> None:
        nonlocal client
        if client is not None:
            client.close()
            client = None

    try:
        while True:
            if max_idle is not None and \
                    time.monotonic() - idle_since >= max_idle:
                break
            if client is None:
                try:
                    client = CoordinatorClient(
                        address, secret=secret, role="worker",
                        worker_id=worker_id).connect()
                    backoff = _BACKOFF_FIRST
                    if connected_before:
                        summary.reconnects += 1
                    connected_before = True
                except HandshakeError:
                    raise
                except OSError:
                    time.sleep(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX)
                    continue
            try:
                if unsent is not None:
                    task_id, outcome = unsent
                    client.request({"op": "result", "id": task_id,
                                    "outcome": outcome})
                    unsent = None
                    summary.replayed += 1
                    if max_tasks is not None \
                            and summary.processed >= max_tasks:
                        break
                    continue
                response = client.request({"op": "claim"})
            except OSError:
                drop_connection()
                continue
            if response.get("stop"):
                break
            task = response.get("task")
            if task is None:
                time.sleep(poll)
                continue
            task_id = str(task["id"])

            heartbeat_every = max(min(client.lease_ttl / 4.0, 5.0), 0.05)
            stop_beat = threading.Event()
            beat_client = client

            def beat() -> None:
                while not stop_beat.wait(heartbeat_every):
                    try:
                        beat_client.request({"op": "heartbeat",
                                             "id": task_id})
                        summary.heartbeats += 1
                    except (OSError, RuntimeError):
                        return  # main loop will notice on publish

            task_options = dict(task.get("options") or {})
            if checkpoint_dir is not None:
                task_options["checkpoint_dir"] = str(checkpoint_dir)
            if checkpoint_every is not None:
                task_options["checkpoint_every"] = int(checkpoint_every)

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
            try:
                outcome = execute_payload(task.get("config", {}),
                                          task_options or None)
            finally:
                stop_beat.set()
                beater.join()

            result: Dict[str, Any] = {
                "id": task_id,
                "digest": task.get("digest", ""),
                "worker": worker_id,
                "elapsed": outcome.get("elapsed", 0.0),
                "attempt": int(task.get("attempt", 0)) + 1,
            }
            if "resumed_round" in outcome:
                result["resumed_round"] = outcome["resumed_round"]
            try:
                reply = client.request({"op": "result", "id": task_id,
                                        "outcome": outcome})
                result["status"] = reply.get("status", "done")
            except OSError:
                unsent = (task_id, outcome)
                drop_connection()
                result["status"] = "undelivered"
            if "record" in outcome:
                result["record"] = outcome["record"]
                summary.done += 1
                summary.last_task_failed = False
            else:
                result["error"] = outcome.get("error", "unknown error")
                if result["status"] == "retry":
                    summary.retried += 1
                    summary.last_task_failed = False
                else:
                    # Terminal: the coordinator published the failure (or
                    # the link dropped with a failure outcome in hand).
                    summary.failed += 1
                    summary.last_task_failed = True
            summary.processed += 1
            # The idle clock restarts when a task *finishes*: a long task
            # must never count toward --max-idle.
            idle_since = time.monotonic()
            if progress is not None:
                progress(task_id, result)
            # Honouring --max-tasks waits for an undelivered result: the
            # reconnect loop above must get a chance to re-send it, or the
            # completed work would be thrown away (``--max-idle`` still
            # bounds how long that redelivery is attempted).
            if max_tasks is not None and summary.processed >= max_tasks \
                    and unsent is None:
                break
    finally:
        drop_connection()
    return summary


# ---------------------------------------------------------------------------
# The coordinator-side transport
# ---------------------------------------------------------------------------

class TcpTransport:
    """Execute pending configs through a TCP coordinator.

    Construct with the coordinator's ``HOST:PORT`` and pass to
    :func:`~repro.orchestrator.pool.run_sweep` (or use ``repro sweep
    --transport tcp --coordinator HOST:PORT``).  ``workers_expected`` makes
    the sweep wait until that many workers hold live connections before
    enqueueing, so a sweep against an idle coordinator fails fast instead
    of hanging; ``timeout`` bounds the whole wait for results.  A dropped
    connection — a coordinator restart included — is retried with backoff,
    and every still-pending task is re-submitted after the reconnect.
    """

    name = "tcp"

    def __init__(self, coordinator: Any,
                 secret: Optional[str] = None,
                 poll: float = DEFAULT_POLL,
                 max_attempts: Optional[int] = DEFAULT_TASK_ATTEMPTS,
                 workers_expected: int = 0,
                 worker_timeout: float = 60.0,
                 timeout: Optional[float] = None) -> None:
        self.coordinator = coordinator
        self.secret = secret
        self.poll = float(poll)
        self.max_attempts = _budget(max_attempts)
        self.workers_expected = int(workers_expected)
        self.worker_timeout = float(worker_timeout)
        self.timeout = timeout

    def run(self, items: Sequence[TransportItem],
            options: Optional[Dict[str, Any]] = None
            ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        from .queue import FileTaskQueue

        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        client = self._connect(deadline, first=True)
        try:
            if self.workers_expected > 0:
                self._await_workers(client)
            pending: Dict[str, int] = {
                FileTaskQueue.task_id(index, digest): index
                for index, _config, digest in items}
            tasks = [{
                "id": FileTaskQueue.task_id(index, digest),
                "digest": digest,
                "config": config.to_dict(),
                "max_attempts": self.max_attempts,
                **({"options": dict(options)} if options else {}),
            } for index, config, digest in items]
            self._submit(client, tasks)
            while pending:
                try:
                    ready = self._collect(client, sorted(pending))
                except OSError:
                    client.close()
                    client = self._connect(deadline)
                    # The coordinator may have restarted and lost the
                    # board: re-submitting is idempotent and revives
                    # anything that was pending or in flight.
                    self._submit(client, [t for t in tasks
                                          if t["id"] in pending])
                    continue
                for payload in ready:
                    index = pending.pop(str(payload["id"]), None)
                    if index is not None:
                        yield index, payload
                if not pending:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"tcp sweep timed out after {self.timeout}s with "
                        f"{len(pending)} task(s) unfinished (live workers: "
                        f"{self._workers(client) or 'none'})")
                if not ready:
                    time.sleep(self.poll)
        finally:
            client.close()

    # -- protocol helpers ---------------------------------------------------

    def _connect(self, deadline: Optional[float],
                 first: bool = False) -> CoordinatorClient:
        backoff = _BACKOFF_FIRST
        while True:
            try:
                return CoordinatorClient(self.coordinator, secret=self.secret,
                                         role="submitter").connect()
            except HandshakeError:
                raise
            except OSError as exc:
                if first:
                    host, port = (parse_address(self.coordinator)
                                  if isinstance(self.coordinator, str)
                                  else self.coordinator)
                    raise ConnectionError(
                        f"cannot reach the coordinator at {host}:{port} "
                        f"({exc}); start it with 'python -m repro serve "
                        f"--port {port}'") from exc
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"tcp sweep timed out after {self.timeout}s while "
                        f"reconnecting to the coordinator") from exc
                time.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_MAX)

    def _submit(self, client: CoordinatorClient,
                tasks: Sequence[Dict[str, Any]]) -> None:
        for start in range(0, len(tasks), _BATCH):
            client.request({"op": "submit",
                            "tasks": list(tasks[start:start + _BATCH])})

    def _collect(self, client: CoordinatorClient,
                 task_ids: Sequence[str]) -> List[Dict[str, Any]]:
        results: List[Dict[str, Any]] = []
        for start in range(0, len(task_ids), _BATCH):
            response = client.request(
                {"op": "collect", "ids": list(task_ids[start:start + _BATCH])})
            results.extend(response.get("results", []))
        return results

    def _workers(self, client: CoordinatorClient) -> List[str]:
        try:
            return list(client.request({"op": "workers"}).get("workers", []))
        except (OSError, RuntimeError):
            return []

    def _await_workers(self, client: CoordinatorClient) -> None:
        deadline = time.monotonic() + self.worker_timeout
        while True:
            alive = self._workers(client)
            if len(alive) >= self.workers_expected:
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"only {len(alive)} of {self.workers_expected} expected "
                    f"worker(s) connected to the coordinator within "
                    f"{self.worker_timeout:.0f}s — start them with "
                    f"'python -m repro worker --connect HOST:PORT'")
            time.sleep(min(self.poll, 0.5))
