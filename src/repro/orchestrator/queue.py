"""Filesystem task queue: distribute a sweep across machines.

Any number of ``python -m repro worker <queue-dir>`` daemons on machines
that share a filesystem pull tasks from one queue directory; the sweep
coordinator (:class:`QueueTransport`) enqueues the pending configs, waits
for their result files, and feeds them back through the normal
:func:`~repro.orchestrator.pool.run_sweep` bookkeeping — so cache,
ledger, ordering and aggregation behave exactly as in a local run.

The queue needs nothing but POSIX rename semantics:

* **Claiming is an atomic rename** of ``tasks/<id>.json`` into
  ``leases/<id>.json``.  Exactly one worker wins; losers get ``ENOENT``
  and move on.
* **Leases are heartbeats**: the owning worker re-touches its lease file
  while it executes.  A lease whose mtime is older than ``lease_ttl`` is
  presumed dead and *reclaimed* — renamed away under a private name (again
  atomic, so only one reclaimer wins) and re-enqueued with its attempt
  counter bumped.
* **Results are atomic too**: workers write ``results/<id>.json`` via a
  temp file + ``os.replace``, so the coordinator never reads a torn
  result.
* **Retries are budgeted**: each task carries ``attempt``/``max_attempts``;
  a task that keeps failing (or whose workers keep dying) becomes a failed
  result instead of looping forever.

Directory layout under the queue root::

    tasks/<id>.json     pending work, claimable
    leases/<id>.json    claimed work; mtime is the owner's heartbeat
    results/<id>.json   finished work (a record or an error payload)
    workers/<id>.json   live worker registrations; mtime is the heartbeat
    STOP                sentinel: workers exit at the next loop turn
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..telemetry import counter as _metric, summarize_ages
from .fsutil import read_json as _read_json
from .fsutil import write_json_atomic as _write_json_atomic
from .transport import TransportItem, execute_payload

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_POLL",
    "STATUS_FILENAME",
    "FileTaskQueue",
    "QueueTransport",
    "WorkerSummary",
    "run_worker",
]

PathLike = Union[str, Path]

TASK_KIND = "sweep-task"
RESULT_KIND = "sweep-task-result"
WORKER_KIND = "sweep-worker"
STOP_FILENAME = "STOP"
#: Coordinator-published live status snapshot (atomic write, JSON).
STATUS_FILENAME = "status.json"

#: Seconds without a heartbeat after which a lease is presumed dead.
DEFAULT_LEASE_TTL = 60.0
#: Seconds between idle polls (workers) and result scans (coordinator).
DEFAULT_POLL = 0.2
#: Default per-task execution budget (first try included).
DEFAULT_TASK_ATTEMPTS = 3


def _touch(path: Path) -> None:
    try:
        os.utime(path, None)
    except OSError:
        pass  # raced a reclaim/cleanup; the owner will find out shortly


def _budget(value: Any) -> Optional[int]:
    """Normalise a retry budget: ``None`` / ``<= 0`` mean unlimited."""
    if value is None:
        return None
    value = int(value)
    return value if value > 0 else None


def _payload_budget(payload: Dict[str, Any]) -> Optional[int]:
    return _budget(payload.get("max_attempts", DEFAULT_TASK_ATTEMPTS))


class WorkerSummary:
    """What one worker did over its lifetime, for the shutdown summary.

    Returned by :func:`run_worker` and
    :func:`~repro.orchestrator.net.run_tcp_worker`.  Compares equal to an
    ``int`` as the number of tasks processed, so the historical
    ``run_worker(...) == N`` contract (and every caller written against
    it) keeps working.
    """

    __slots__ = ("worker_id", "processed", "done", "failed", "retried",
                 "heartbeats", "reconnects", "replayed", "last_task_failed")

    def __init__(self, worker_id: str = "") -> None:
        self.worker_id = worker_id
        self.processed = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.heartbeats = 0
        self.reconnects = 0
        self.replayed = 0
        #: Whether the most recent task ended in a *terminal* failure (a
        #: retry that stays on the queue does not count) — the CLI exits
        #: nonzero on it.
        self.last_task_failed = False

    def __int__(self) -> int:
        return self.processed

    def __index__(self) -> int:
        return self.processed

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, bool):
            return NotImplemented
        if isinstance(other, int):
            return self.processed == other
        if isinstance(other, WorkerSummary):
            return all(getattr(self, slot) == getattr(other, slot)
                       for slot in self.__slots__)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"WorkerSummary(worker_id={self.worker_id!r}, "
                f"processed={self.processed}, done={self.done}, "
                f"failed={self.failed}, retried={self.retried})")

    def describe(self) -> str:
        """The one-line shutdown summary the worker CLI logs."""
        line = (f"worker {self.worker_id or '?'} done: "
                f"{self.processed} task(s) "
                f"({self.done} ok, {self.failed} failed, "
                f"{self.retried} retried), "
                f"{self.heartbeats} heartbeat(s) sent")
        if self.reconnects or self.replayed:
            line += (f", {self.reconnects} reconnect(s), "
                     f"{self.replayed} result(s) replayed")
        return line


class FileTaskQueue:
    """The on-disk queue shared by the coordinator and the workers."""

    def __init__(self, root: PathLike,
                 lease_ttl: float = DEFAULT_LEASE_TTL) -> None:
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.tasks = self.root / "tasks"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.workers = self.root / "workers"

    def ensure_layout(self) -> None:
        for directory in (self.tasks, self.leases, self.results, self.workers):
            directory.mkdir(parents=True, exist_ok=True)

    # -- identities ---------------------------------------------------------

    @staticmethod
    def task_id(index: int, digest: str) -> str:
        """Stable id: the spec index keeps claim order ≈ spec order, the
        digest makes concurrent coordinators running the same spec share
        (rather than duplicate) tasks."""
        return f"{index:06d}-{digest}"

    def task_path(self, task_id: str) -> Path:
        return self.tasks / f"{task_id}.json"

    def lease_path(self, task_id: str) -> Path:
        return self.leases / f"{task_id}.json"

    def result_path(self, task_id: str) -> Path:
        return self.results / f"{task_id}.json"

    # -- coordinator side ---------------------------------------------------

    def enqueue(self, task_id: str, config_dict: Dict[str, Any], digest: str,
                max_attempts: Optional[int] = DEFAULT_TASK_ATTEMPTS,
                options: Optional[Dict[str, Any]] = None) -> str:
        """Make ``task_id`` runnable; returns how it was handled.

        ``"result-exists"``: a previous (identical) run already finished it
        and the result can be consumed immediately.  ``"pending"``: some
        coordinator already enqueued it and it is waiting or running.
        ``"enqueued"``: a fresh task file was written.  A lingering *failed*
        result is deleted and retried — failures are never treated as
        cached.  ``options`` (e.g. ``checkpoint_every``/``checkpoint_dir``)
        rides along in the task file so any worker — including the one
        that resumes after the original owner dies — runs it the same way.
        """
        self.ensure_layout()
        result = self.result_path(task_id)
        payload = _read_json(result)
        if payload is not None and "record" in payload:
            return "result-exists"
        if payload is not None:
            try:
                result.unlink()
            except OSError:
                pass
        if self.task_path(task_id).exists() or self.lease_path(task_id).exists():
            return "pending"
        task = {
            "kind": TASK_KIND,
            "id": task_id,
            "digest": digest,
            "config": config_dict,
            "attempt": 0,
            "max_attempts": _budget(max_attempts),
            "enqueued_at": time.time(),
        }
        if options:
            task["options"] = dict(options)
        _write_json_atomic(self.task_path(task_id), task)
        _metric("queue.enqueued").inc()
        return "enqueued"

    def live_workers(self, ttl: Optional[float] = None) -> List[str]:
        """Ids of workers whose registration heartbeat is fresh."""
        ttl = self.lease_ttl if ttl is None else float(ttl)
        now = time.time()
        alive = []
        for path in self.workers.glob("*.json"):
            try:
                if now - path.stat().st_mtime <= ttl:
                    alive.append(path.stem)
            except OSError:
                continue
        return sorted(alive)

    def status_snapshot(self, window: float = 60.0,
                        now: Optional[float] = None) -> Dict[str, Any]:
        """A JSON-ready snapshot of the board for ``repro status``.

        Computed purely from directory listings and mtimes, so any process
        that can see the queue directory — coordinator, worker, or an
        operator's shell — gets the same answer without coordination.
        ``window`` bounds the rolling-throughput estimate (results whose
        mtime falls inside the last ``window`` seconds).
        """
        now = time.time() if now is None else now
        self.ensure_layout()
        pending = sum(1 for _ in self.tasks.glob("*.json"))
        leases: List[Dict[str, Any]] = []
        for path in sorted(self.leases.glob("*.json")):
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue  # completed or reclaimed while we looked
            payload = _read_json(path) or {}
            leases.append({"id": path.stem,
                           "worker": payload.get("worker"),
                           "age": round(age, 3)})
        done = 0
        completed_in_window = 0
        for path in self.results.glob("*.json"):
            done += 1
            try:
                if now - path.stat().st_mtime <= window:
                    completed_in_window += 1
            except OSError:
                continue
        workers: List[Dict[str, Any]] = []
        for path in sorted(self.workers.glob("*.json")):
            try:
                beat_age = max(0.0, now - path.stat().st_mtime)
            except OSError:
                continue
            payload = _read_json(path) or {}
            workers.append({"id": path.stem,
                            "heartbeat_age": round(beat_age, 3),
                            "host": payload.get("host"),
                            "pid": payload.get("pid")})
        return {
            "kind": "queue-status",
            "root": str(self.root),
            "lease_ttl": self.lease_ttl,
            "board": {
                "pending": pending,
                "leased": len(leases),
                "done": done,
                "lease_ages": summarize_ages([l["age"] for l in leases]),
                "leases": leases,
                "throughput": {
                    "window": window,
                    "completed": completed_in_window,
                    "per_second": round(completed_in_window / window, 4)
                                  if window > 0 else 0.0,
                },
            },
            "workers": workers,
            "stop": (self.root / STOP_FILENAME).exists(),
        }

    # -- worker side --------------------------------------------------------

    def claim(self, worker_id: Optional[str] = None
              ) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Atomically claim the lowest-id pending task, or ``None``.

        When ``worker_id`` is given, the lease file is rewritten with a
        ``"worker"`` field so status readers can attribute the lease to
        its owner.
        """
        for task_path in sorted(self.tasks.glob("*.json")):
            lease_path = self.leases / task_path.name
            try:
                os.rename(task_path, lease_path)
            except OSError:
                continue  # another worker won the rename
            # rename() preserves the task file's mtime; refresh it so the
            # lease clock starts at claim time, not enqueue time —
            # otherwise a task that waited longer than the TTL would be
            # born stale and reclaimed out from under its live owner.
            _touch(lease_path)
            payload = _read_json(lease_path)
            if payload is None or payload.get("kind") != TASK_KIND:
                # An unreadable task must still terminate: publishing a
                # failed result (rather than silently dropping the file)
                # keeps the coordinator from waiting on it forever.
                self.complete(task_path.stem, {
                    "error": (f"unreadable task payload for "
                              f"{task_path.stem!r}"),
                    "attempt": 1,
                })
                continue
            if worker_id is not None:
                payload["worker"] = worker_id
                # The atomic rewrite also refreshes the lease mtime.
                _write_json_atomic(lease_path, payload)
            _metric("queue.claims").inc()
            return task_path.stem, payload
        return None

    def touch_lease(self, task_id: str) -> None:
        """Heartbeat: prove the lease owner is still alive."""
        _touch(self.lease_path(task_id))
        _metric("queue.heartbeats").inc()

    def complete(self, task_id: str, result_payload: Dict[str, Any]) -> None:
        """Publish a result (record or terminal error) and drop the lease.

        A failure never overwrites an existing *successful* result: a
        reclaimer that presumed a slow-but-alive worker dead (or a worker
        whose duplicate run lost a race) must not turn a finished task
        back into a failed one.
        """
        result_payload.setdefault("kind", RESULT_KIND)
        result_payload.setdefault("id", task_id)
        existing = _read_json(self.result_path(task_id))
        if not (existing is not None and "record" in existing
                and "record" not in result_payload):
            _write_json_atomic(self.result_path(task_id), result_payload)
        _metric("queue.completes").inc()
        try:
            self.lease_path(task_id).unlink()
        except OSError:
            pass  # already reclaimed; the duplicate run wrote the same result

    def release_for_retry(self, task_id: str, payload: Dict[str, Any]) -> None:
        """Put a failed-but-retryable task back on the queue."""
        _metric("queue.retries").inc()
        _write_json_atomic(self.task_path(task_id), payload)
        try:
            self.lease_path(task_id).unlink()
        except OSError:
            pass

    # -- maintenance: long-lived queue directories ---------------------------

    def gc(self, ttl: float = 24 * 3600.0, now: Optional[float] = None,
           reclaim: bool = True) -> Dict[str, int]:
        """Prune a long-lived queue directory; returns per-category counts.

        * stale **leases** are first recovered through
          :meth:`reclaim_stale` (re-enqueued, or turned into failed results
          when out of attempts) so no work is lost;
        * **results** — completed and failed task files alike — older than
          ``ttl`` seconds are deleted (a coordinator consumes its results
          within one sweep, so anything older belongs to a finished
          campaign);
        * dead **worker registrations** (no heartbeat for ``ttl`` seconds)
          are deleted;
        * a leftover ``STOP`` sentinel older than ``ttl`` is removed so the
          directory can serve a new campaign.

        Run it between campaigns, or periodically with a ``ttl`` larger
        than any sweep's duration — deleting a result file a live
        coordinator still waits for would make it re-enqueue the task.
        """
        now = time.time() if now is None else now
        self.ensure_layout()
        counts = {"reclaimed": 0, "results": 0, "workers": 0, "stop": 0}
        if reclaim:
            counts["reclaimed"] = len(self.reclaim_stale(now))
        for category, directory in (("results", self.results),
                                    ("workers", self.workers)):
            for path in directory.glob("*.json"):
                try:
                    if now - path.stat().st_mtime <= ttl:
                        continue
                    path.unlink()
                except OSError:
                    continue  # raced another janitor / consumer
                counts[category] += 1
        stop = self.root / STOP_FILENAME
        try:
            if stop.exists() and now - stop.stat().st_mtime > ttl:
                stop.unlink()
                counts["stop"] = 1
        except OSError:
            pass
        return counts

    # -- shared: stale-lease recovery ---------------------------------------

    def reclaim_stale(self, now: Optional[float] = None) -> List[str]:
        """Recover leases whose owner stopped heartbeating.

        Both workers and the coordinator call this opportunistically, so a
        sweep finishes even if the machine that claimed a task died.  Each
        reclaim consumes one attempt; a task out of attempts becomes a
        failed result.  ``.reclaim`` files orphaned by a reclaimer that
        itself died mid-recovery are swept by the same pass, so a task can
        never be stranded under a name nothing scans.
        """
        now = time.time() if now is None else now
        reclaimed: List[str] = []
        candidates = list(self.leases.glob("*.json"))
        candidates += list(self.leases.glob(".*.reclaim"))
        for path in candidates:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # completed or reclaimed while we looked
            if age <= self.lease_ttl:
                continue
            task_id = self._reclaim_one(path)
            if task_id is not None:
                reclaimed.append(task_id)
                _metric("queue.reclaims").inc()
        return reclaimed

    def _reclaim_one(self, path: Path) -> Optional[str]:
        """Recover one stale lease (or orphaned reclaim file).

        Crash-safe ordering: the stale file is first renamed to a fresh
        private name (atomic — exactly one reclaimer wins, and the file
        keeps a scannable ``.reclaim`` suffix in case *this* process dies
        next), then the re-enqueued task or terminal failure is written,
        and only then is the private file removed.
        """
        if path.suffix == ".json":
            fallback_id = path.stem
        else:  # ".<task-id>.<nonce>.reclaim" left by a dead reclaimer
            fallback_id = path.name.lstrip(".").rsplit(".", 2)[0]
        private = self.leases / f".{fallback_id}.{uuid.uuid4().hex}.reclaim"
        try:
            os.rename(path, private)
        except OSError:
            return None  # lost the race to another reclaimer / completion
        payload = _read_json(private)
        if payload is None or payload.get("kind") != TASK_KIND:
            # Same liveness rule as claim(): an unreadable task becomes a
            # failed result instead of vanishing.
            self.complete(fallback_id, {
                "error": f"unreadable task payload for {fallback_id!r}",
                "attempt": 1,
            })
            try:
                private.unlink()
            except OSError:
                pass
            return fallback_id
        task_id = payload.get("id") or fallback_id
        # If the task turned out to be alive after all — its result was
        # published, it was re-enqueued, or it is leased again — recovering
        # would resurrect finished work; just drop the stale copy.
        alive = (self.task_path(task_id).exists()
                 or self.lease_path(task_id).exists())
        result = _read_json(self.result_path(task_id))
        if alive or (result is not None and "record" in result):
            try:
                private.unlink()
            except OSError:
                pass
            return None
        payload["attempt"] = int(payload.get("attempt", 0)) + 1
        budget = _payload_budget(payload)
        if budget is not None and payload["attempt"] >= budget:
            self.complete(task_id, {
                "kind": RESULT_KIND,
                "id": task_id,
                "digest": payload.get("digest", ""),
                "config": payload.get("config", {}),
                "error": (f"worker lease expired and the task is out of "
                          f"attempts ({payload['attempt']}/{budget})"),
                "attempt": payload["attempt"],
            })
        else:
            _write_json_atomic(self.task_path(task_id), payload)
        try:
            private.unlink()
        except OSError:
            pass
        return task_id


# ---------------------------------------------------------------------------
# The worker daemon — ``python -m repro worker <queue-dir>``
# ---------------------------------------------------------------------------

def run_worker(queue_dir: PathLike,
               worker_id: Optional[str] = None,
               lease_ttl: float = DEFAULT_LEASE_TTL,
               poll: float = DEFAULT_POLL,
               max_idle: Optional[float] = None,
               max_tasks: Optional[int] = None,
               progress: Optional[Callable[[str, Dict[str, Any]], None]] = None,
               checkpoint_dir: Optional[PathLike] = None,
               checkpoint_every: Optional[int] = None,
               ) -> WorkerSummary:
    """Pull-and-execute loop; returns a :class:`WorkerSummary` (which
    compares equal to the number of tasks processed).

    The worker claims tasks, executes them through the same
    :func:`~repro.orchestrator.transport.execute_payload` body the process
    pool uses, heartbeats its lease from a background thread while the
    simulation runs, and publishes the outcome.  A task that raises is
    retried (by this or any other worker) until its attempt budget is
    spent, then published as a failed result.

    Checkpointing: each task's own ``options`` (set by the enqueueing
    coordinator) apply by default; ``checkpoint_dir`` / ``checkpoint_every``
    override them for this worker — e.g. to point at a directory that is
    shared between workers when the coordinator's path is not.  A task
    resumed from a checkpoint reports ``"resumed_round"`` in its result.

    Exit conditions: a ``STOP`` file in the queue root, ``max_idle``
    seconds without finding work, or ``max_tasks`` processed.
    """
    queue = FileTaskQueue(queue_dir, lease_ttl=lease_ttl)
    queue.ensure_layout()
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    worker_file = queue.workers / f"{worker_id}.json"
    _write_json_atomic(worker_file, {
        "kind": WORKER_KIND,
        "id": worker_id,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "started_at": time.time(),
    })
    heartbeat_every = max(min(lease_ttl / 4.0, 5.0), 0.05)
    reclaim_every = max(lease_ttl / 4.0, poll)
    summary = WorkerSummary(worker_id)
    idle_since = time.monotonic()
    last_beat = last_reclaim = float("-inf")
    try:
        while True:
            if (queue.root / STOP_FILENAME).exists():
                break
            now = time.monotonic()
            if now - last_beat >= heartbeat_every:
                _touch(worker_file)
                summary.heartbeats += 1
                last_beat = now
            if now - last_reclaim >= reclaim_every:
                queue.reclaim_stale()
                last_reclaim = now
            claimed = queue.claim(worker_id)
            if claimed is None:
                if (max_idle is not None
                        and time.monotonic() - idle_since >= max_idle):
                    break
                time.sleep(poll)
                continue
            task_id, payload = claimed

            stop_beat = threading.Event()

            def beat() -> None:
                while not stop_beat.wait(heartbeat_every):
                    queue.touch_lease(task_id)
                    _touch(worker_file)
                    summary.heartbeats += 1

            task_options = dict(payload.get("options") or {})
            if checkpoint_dir is not None:
                task_options["checkpoint_dir"] = str(checkpoint_dir)
            if checkpoint_every is not None:
                task_options["checkpoint_every"] = int(checkpoint_every)

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
            try:
                outcome = execute_payload(payload.get("config", {}),
                                          task_options or None)
            finally:
                stop_beat.set()
                beater.join()

            attempt = int(payload.get("attempt", 0)) + 1
            budget = _payload_budget(payload)
            result: Dict[str, Any] = {
                "kind": RESULT_KIND,
                "id": task_id,
                "digest": payload.get("digest", ""),
                "config": payload.get("config", {}),
                "elapsed": outcome.get("elapsed", 0.0),
                "worker": worker_id,
                "attempt": attempt,
            }
            if "resumed_round" in outcome:
                result["resumed_round"] = outcome["resumed_round"]
            if "record" in outcome:
                result["record"] = outcome["record"]
                queue.complete(task_id, result)
                summary.done += 1
                summary.last_task_failed = False
            elif budget is not None and attempt >= budget:
                result["error"] = outcome.get("error", "unknown error")
                queue.complete(task_id, result)
                summary.failed += 1
                summary.last_task_failed = True
            else:
                payload["attempt"] = attempt
                queue.release_for_retry(task_id, payload)
                result["retrying"] = True
                result["error"] = outcome.get("error", "unknown error")
                summary.retried += 1
                summary.last_task_failed = False
            summary.processed += 1
            # The idle clock starts when the task *finishes* — a long task
            # must not count toward --max-idle.
            idle_since = time.monotonic()
            if progress is not None:
                progress(task_id, result)
            if max_tasks is not None and summary.processed >= max_tasks:
                break
    finally:
        try:
            worker_file.unlink()
        except OSError:
            pass
    return summary


# ---------------------------------------------------------------------------
# The coordinator-side transport
# ---------------------------------------------------------------------------

class QueueTransport:
    """Execute pending configs through a shared filesystem task queue.

    Construct with the queue directory the workers watch and pass to
    :func:`~repro.orchestrator.pool.run_sweep` (or use
    ``repro sweep --transport queue --queue-dir DIR``).  ``workers_expected``
    makes the sweep wait (up to ``worker_timeout`` seconds) until that many
    live workers are registered before enqueueing, so a sweep against an
    empty queue directory fails fast instead of hanging silently;
    ``timeout`` bounds the whole wait for results.
    """

    name = "queue"

    def __init__(self, queue_dir: PathLike,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll: float = DEFAULT_POLL,
                 max_attempts: Optional[int] = DEFAULT_TASK_ATTEMPTS,
                 workers_expected: int = 0,
                 worker_timeout: float = 60.0,
                 timeout: Optional[float] = None) -> None:
        self.queue_dir = Path(queue_dir)
        self.lease_ttl = float(lease_ttl)
        self.poll = float(poll)
        self.max_attempts = _budget(max_attempts)
        self.workers_expected = int(workers_expected)
        self.worker_timeout = float(worker_timeout)
        self.timeout = timeout

    def run(self, items: Sequence[TransportItem],
            options: Optional[Dict[str, Any]] = None
            ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        queue = FileTaskQueue(self.queue_dir, lease_ttl=self.lease_ttl)
        queue.ensure_layout()
        if self.workers_expected > 0:
            self._await_workers(queue)
        pending: Dict[str, int] = {}
        for index, config, digest in items:
            task_id = queue.task_id(index, digest)
            queue.enqueue(task_id, config.to_dict(), digest,
                          max_attempts=self.max_attempts, options=options)
            pending[task_id] = index
        total = len(pending)

        def publish_status() -> None:
            """Drop a live snapshot next to the queue for ``repro status``.

            Best-effort: a sweep must never die because the status file
            could not be written.
            """
            try:
                snapshot = queue.status_snapshot()
                snapshot["coordinator"] = {
                    "enqueued": total,
                    "collected": total - len(pending),
                    "outstanding": len(pending),
                    "published_at": time.time(),
                }
                _write_json_atomic(self.queue_dir / STATUS_FILENAME, snapshot)
            except OSError:
                pass

        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        reclaim_every = max(self.lease_ttl / 4.0, self.poll)
        last_reclaim = float("-inf")
        while pending:
            if time.monotonic() - last_reclaim >= reclaim_every:
                queue.reclaim_stale()
                publish_status()
                last_reclaim = time.monotonic()
            progressed = False
            # One directory listing per poll instead of one stat per
            # pending task — kinder to the network filesystems this
            # transport is designed for.
            try:
                ready = {entry[:-5] for entry in os.listdir(queue.results)
                         if entry.endswith(".json")}
            except OSError:
                ready = set()
            for task_id in sorted(pending.keys() & ready):
                payload = _read_json(queue.result_path(task_id))
                if payload is None:
                    continue
                index = pending.pop(task_id)
                progressed = True
                yield index, payload
            if not pending:
                publish_status()
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"queue sweep timed out after {self.timeout}s with "
                    f"{len(pending)} task(s) unfinished "
                    f"(live workers: {queue.live_workers() or 'none'})")
            if not progressed:
                time.sleep(self.poll)

    def _await_workers(self, queue: FileTaskQueue) -> None:
        deadline = time.monotonic() + self.worker_timeout
        while True:
            alive = queue.live_workers()
            if len(alive) >= self.workers_expected:
                return
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"only {len(alive)} of {self.workers_expected} expected "
                    f"worker(s) registered under {queue.root} within "
                    f"{self.worker_timeout:.0f}s — start them with "
                    f"'python -m repro worker {queue.root}'")
            time.sleep(min(self.poll, 0.5))
