"""repro.orchestrator — the parallel sweep execution subsystem.

Everything that turns a declarative experiment grid into records:

* :mod:`~repro.orchestrator.spec` — :class:`SweepSpec` → hashable
  :class:`RunConfig` lists,
* :mod:`~repro.orchestrator.cache` — content-addressed on-disk result cache,
* :mod:`~repro.orchestrator.pool` — :func:`run_sweep`, the cache-aware
  execution engine,
* :mod:`~repro.orchestrator.transport` — pluggable executors: in-process,
  local ``multiprocessing`` pool, a distributed filesystem queue, or a
  TCP coordinator for machines without any shared filesystem,
* :mod:`~repro.orchestrator.queue` — the filesystem task queue behind
  ``--transport queue`` and the ``python -m repro worker`` daemon,
* :mod:`~repro.orchestrator.net` — the TCP coordinator/worker layer behind
  ``--transport tcp``, ``python -m repro serve`` and
  ``python -m repro worker --connect``,
* :mod:`~repro.orchestrator.store` — the append-only JSONL
  :class:`RunLedger` that makes interrupted sweeps resumable (and safe for
  concurrent writers on a shared filesystem),
* :mod:`~repro.orchestrator.report` — aggregation back into
  :mod:`repro.analysis.tables` / :mod:`repro.analysis.fitting`.

Typical use (what ``python -m repro sweep`` does)::

    from repro.orchestrator import SweepSpec, run_sweep

    spec = SweepSpec(algorithms=["dle", "erosion"],
                     families=["hexagon", "holey"],
                     sizes=[2, 4, 6], seeds=[0, 1, 2])
    result = run_sweep(spec, jobs=4, cache="results/cache",
                       ledger="results/ledger.jsonl", resume=True)
    records = result.records
"""

from .cache import ResultCache, config_digest, default_code_version
from .pool import (
    DEFAULT_JOBS,
    DEFAULT_MAX_ATTEMPTS,
    RunResult,
    SweepResult,
    execute_config,
    run_sweep,
)
from .net import (
    CoordinatorClient,
    CoordinatorServer,
    TcpTransport,
    fetch_status,
    run_server,
    run_tcp_worker,
)
from .queue import FileTaskQueue, QueueTransport, WorkerSummary, run_worker
from .report import (
    format_sweep_scaling,
    format_sweep_summary,
    group_records,
    scaling_summaries,
)
from .spec import (
    ENGINES,
    SCHEDULER_ORDERS,
    RunConfig,
    SweepSpec,
    scaling_spec,
    table1_spec,
)
from .store import LedgerReader, RunLedger
from .transport import (
    TRANSPORT_HELP,
    TRANSPORTS,
    InlineTransport,
    ProcessTransport,
    resolve_transport,
)

__all__ = [
    "DEFAULT_JOBS",
    "DEFAULT_MAX_ATTEMPTS",
    "ENGINES",
    "SCHEDULER_ORDERS",
    "TRANSPORTS",
    "TRANSPORT_HELP",
    "CoordinatorClient",
    "CoordinatorServer",
    "FileTaskQueue",
    "InlineTransport",
    "ProcessTransport",
    "QueueTransport",
    "ResultCache",
    "RunConfig",
    "LedgerReader",
    "RunLedger",
    "RunResult",
    "SweepResult",
    "SweepSpec",
    "TcpTransport",
    "WorkerSummary",
    "config_digest",
    "default_code_version",
    "execute_config",
    "fetch_status",
    "format_sweep_scaling",
    "format_sweep_summary",
    "group_records",
    "resolve_transport",
    "run_server",
    "run_sweep",
    "run_tcp_worker",
    "run_worker",
    "scaling_spec",
    "scaling_summaries",
    "table1_spec",
]
