"""repro.orchestrator — the parallel sweep execution subsystem.

Everything that turns a declarative experiment grid into records:

* :mod:`~repro.orchestrator.spec` — :class:`SweepSpec` → hashable
  :class:`RunConfig` lists,
* :mod:`~repro.orchestrator.cache` — content-addressed on-disk result cache,
* :mod:`~repro.orchestrator.pool` — :func:`run_sweep`, the cache-aware
  multiprocessing execution engine,
* :mod:`~repro.orchestrator.store` — the append-only JSONL
  :class:`RunLedger` that makes interrupted sweeps resumable,
* :mod:`~repro.orchestrator.report` — aggregation back into
  :mod:`repro.analysis.tables` / :mod:`repro.analysis.fitting`.

Typical use (what ``python -m repro sweep`` does)::

    from repro.orchestrator import SweepSpec, run_sweep

    spec = SweepSpec(algorithms=["dle", "erosion"],
                     families=["hexagon", "holey"],
                     sizes=[2, 4, 6], seeds=[0, 1, 2])
    result = run_sweep(spec, jobs=4, cache="results/cache",
                       ledger="results/ledger.jsonl", resume=True)
    records = result.records
"""

from .cache import ResultCache, config_digest, default_code_version
from .pool import (
    DEFAULT_JOBS,
    RunResult,
    SweepResult,
    execute_config,
    run_sweep,
)
from .report import (
    format_sweep_scaling,
    format_sweep_summary,
    group_records,
    scaling_summaries,
)
from .spec import (
    ENGINES,
    SCHEDULER_ORDERS,
    RunConfig,
    SweepSpec,
    scaling_spec,
    table1_spec,
)
from .store import RunLedger

__all__ = [
    "DEFAULT_JOBS",
    "ENGINES",
    "SCHEDULER_ORDERS",
    "ResultCache",
    "RunConfig",
    "RunLedger",
    "RunResult",
    "SweepResult",
    "SweepSpec",
    "config_digest",
    "default_code_version",
    "execute_config",
    "format_sweep_scaling",
    "format_sweep_summary",
    "group_records",
    "run_sweep",
    "scaling_spec",
    "scaling_summaries",
    "table1_spec",
]
