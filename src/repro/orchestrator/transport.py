"""Pluggable sweep executors: where a config actually runs.

:func:`~repro.orchestrator.pool.run_sweep` resolves every config it can
from the ledger and the result cache first; whatever remains is handed to a
*transport*, an object with one method::

    run(items) -> iterator of (index, payload)

``items`` is a sequence of ``(index, config, digest)`` triples in spec
order; the transport may yield results in any completion order — the pool
reassembles spec order from the indices.  A payload is the JSON-safe
outcome dictionary produced by :func:`execute_payload` (either a
``"record"`` or an ``"error"`` key, plus ``"elapsed"``), which is exactly
what queue workers write to result files and what pool workers return over
the process boundary.

Four backends ship with the orchestrator:

* :class:`InlineTransport` — in the calling process, zero overhead, keeps
  the original exception object (the historical ``jobs=1`` path),
* :class:`ProcessTransport` — a ``multiprocessing`` pool on this machine
  (the historical ``jobs>1`` path),
* :class:`~repro.orchestrator.queue.QueueTransport` — a filesystem task
  queue served by ``python -m repro worker`` daemons on any machines that
  share the filesystem,
* :class:`~repro.orchestrator.net.TcpTransport` — a TCP coordinator
  (``python -m repro serve``) serving ``python -m repro worker --connect``
  daemons on machines that share nothing but a network.

:data:`TRANSPORTS` is the single registry behind all of this: its keys are
the names ``run_sweep(transport=...)`` and the CLI's ``--transport`` accept,
its values build the backend.  Registering a new transport here is all it
takes for the CLI choices, the error messages and :func:`resolve_transport`
to pick it up.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "TRANSPORTS",
    "TRANSPORT_HELP",
    "InlineTransport",
    "ProcessTransport",
    "TransportItem",
    "execute_payload",
    "resolve_transport",
]

#: ``(spec index, config, digest)`` — the unit of work a transport executes.
TransportItem = Tuple[int, Any, str]


def execute_payload(config_dict: Dict[str, Any],
                    options: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Run one serialised config; never raises.

    The shared worker body: process-pool workers call it across a pickle
    boundary, queue workers call it and write the returned payload to a
    result file.  Both sides therefore speak the same dialect.

    ``options`` carries execution options that are not part of the run's
    identity — ``checkpoint_every`` / ``checkpoint_dir`` — so a worker
    killed mid-run leaves a checkpoint the next lease holder resumes.  A
    resumed run reports the round it continued from as ``"resumed_round"``
    in the payload (ledger records ignore the extra key).
    """
    from ..io import records_to_dicts
    from ..session import Session

    options = options or {}
    started = time.perf_counter()
    try:
        session = Session(
            config_dict,
            checkpoint_every=options.get("checkpoint_every"),
            checkpoint_dir=options.get("checkpoint_dir"))
        record = session.execute()
        payload: Dict[str, Any] = {
            "config": config_dict,
            "record": records_to_dicts([record])[0],
            "elapsed": time.perf_counter() - started,
        }
        if session.resumed_round is not None:
            payload["resumed_round"] = session.resumed_round
        return payload
    except Exception:
        return {
            "config": config_dict,
            "error": traceback.format_exc(),
            "elapsed": time.perf_counter() - started,
        }


def _indexed_payload(
        item: Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]],
) -> Tuple[int, Dict[str, Any]]:
    """Pool worker: pairs each payload with the caller's index so results
    can be matched up regardless of completion order (top-level so it is
    picklable)."""
    index, config_dict, options = item
    return index, execute_payload(config_dict, options)


class InlineTransport:
    """Execute configs in the calling process, one at a time.

    The payloads additionally carry the live ``"exception"`` object so
    ``SweepResult.raise_failures`` can re-raise the original type —
    behaviour the serial front-ends rely on and process boundaries cannot
    provide.
    """

    name = "inline"

    def run(self, items: Sequence[TransportItem],
            options: Optional[Dict[str, Any]] = None
            ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        from ..io import records_to_dicts
        from ..session import Session

        options = options or {}
        for index, config, _digest in items:
            started = time.perf_counter()
            try:
                session = Session(
                    config,
                    checkpoint_every=options.get("checkpoint_every"),
                    checkpoint_dir=options.get("checkpoint_dir"))
                record = session.execute()
                payload: Dict[str, Any] = {
                    "record": records_to_dicts([record])[0],
                    "elapsed": time.perf_counter() - started,
                }
                if session.resumed_round is not None:
                    payload["resumed_round"] = session.resumed_round
            except Exception as exc:
                payload = {
                    "error": traceback.format_exc(),
                    "exception": exc,
                    "elapsed": time.perf_counter() - started,
                }
            yield index, payload


class ProcessTransport:
    """Execute configs on a ``multiprocessing`` pool on this machine."""

    name = "process"

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, int(jobs))

    def run(self, items: Sequence[TransportItem],
            options: Optional[Dict[str, Any]] = None
            ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        payloads = [(index, config.to_dict(), options)
                    for index, config, _ in items]
        with multiprocessing.Pool(
                processes=min(self.jobs, len(payloads))) as pool:
            results = pool.imap_unordered(_indexed_payload, payloads,
                                          chunksize=1)
            try:
                for index, payload in results:
                    yield index, payload
            except KeyboardInterrupt:
                pool.terminate()
                raise


# ---------------------------------------------------------------------------
# The transport registry
# ---------------------------------------------------------------------------

def _make_inline(jobs: int, **_options: Any) -> InlineTransport:
    return InlineTransport()


def _make_process(jobs: int, **_options: Any) -> ProcessTransport:
    return ProcessTransport(jobs=jobs)


def _make_queue(jobs: int, queue_dir: Any = None,
                **queue_options: Any) -> Any:
    if queue_dir is None:
        raise ValueError(
            "transport='queue' needs a queue directory: pass queue_dir= "
            "or construct repro.orchestrator.queue.QueueTransport directly")
    from .queue import QueueTransport

    return QueueTransport(queue_dir, **queue_options)


def _make_tcp(jobs: int, coordinator: Any = None,
              **tcp_options: Any) -> Any:
    if coordinator is None:
        raise ValueError(
            "transport='tcp' needs a coordinator address: pass "
            "coordinator='HOST:PORT' or construct "
            "repro.orchestrator.net.TcpTransport directly")
    from .net import TcpTransport

    return TcpTransport(coordinator, **tcp_options)


#: Name -> factory: the single source of truth for every transport the
#: orchestrator knows.  ``list(TRANSPORTS)`` (iteration yields the names)
#: is what the CLI exposes as ``--transport`` choices.
TRANSPORTS: Dict[str, Callable[..., Any]] = {
    "inline": _make_inline,
    "process": _make_process,
    "queue": _make_queue,
    "tcp": _make_tcp,
}

#: One-line description per transport, used to build the CLI help text.
TRANSPORT_HELP: Dict[str, str] = {
    "inline": "this process (the --jobs 1 default)",
    "process": "local multiprocessing pool (the --jobs N default)",
    "queue": "worker daemons watching a shared --queue-dir",
    "tcp": "worker daemons connected to a --coordinator HOST:PORT",
}


def resolve_transport(transport: Any = None, jobs: int = 1,
                      **options: Any) -> Any:
    """Turn a transport name (or ``None``) into a transport object.

    ``None`` preserves the historical behaviour: in-process for
    ``jobs <= 1``, a local worker pool otherwise.  Objects that already
    look like transports (anything with a ``run`` method) pass through, so
    callers can hand :func:`~repro.orchestrator.pool.run_sweep` a
    pre-configured :class:`~repro.orchestrator.queue.QueueTransport` or
    :class:`~repro.orchestrator.net.TcpTransport`.

    Unknown names raise ``ValueError`` up front, before any backend is
    constructed — a typo can never leave a half-built pool or an opened
    socket behind.  Backend-specific keywords (``queue_dir=``,
    ``coordinator=``, ``lease_ttl=`` …) are forwarded to the factory.
    """
    if transport is not None and not isinstance(transport, str):
        if hasattr(transport, "run"):
            return transport
        raise TypeError(f"not a transport: {transport!r}")
    name = transport or ("inline" if jobs <= 1 else "process")
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r}; known: {list(TRANSPORTS)}")
    return TRANSPORTS[name](jobs=jobs, **options)
