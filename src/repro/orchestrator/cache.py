"""On-disk content-addressed cache of experiment results.

Every run is a pure function of its :class:`~repro.orchestrator.spec.RunConfig`
and the code that executes it, so results can be cached under a digest of
exactly those two inputs: ``sha256(canonical-json(config) + code version)``.
A warm cache turns a repeated sweep into a directory scan — re-generating a
table after editing only its formatting costs no simulation time — while a
version bump (or an explicit ``code_version`` override) invalidates every
entry at once without deleting anything.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one JSON envelope per entry
(the two-character shard keeps directories small for multi-thousand-config
sweeps).  Entries are written atomically (temp file + ``os.replace``) so a
killed sweep never leaves a truncated entry behind; unreadable entries are
treated as misses.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..telemetry import counter as _metric
from .fsutil import write_json_atomic
from .spec import RunConfig

__all__ = ["config_digest", "default_code_version", "ResultCache"]

PathLike = Union[str, Path]


def default_code_version() -> str:
    """The package version, the default cache-invalidation token."""
    from .. import __version__  # local import: repro/__init__ imports us

    return __version__


def config_digest(config: RunConfig, code_version: str) -> str:
    """Stable hex digest identifying one (config, code version) result."""
    payload = {"config": config.to_dict(), "code": code_version}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of :class:`ExperimentRecord` results."""

    def __init__(self, root: PathLike, code_version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_version = code_version or default_code_version()
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------------

    def digest(self, config: RunConfig) -> str:
        """The digest this cache files ``config`` under."""
        return config_digest(config, self.code_version)

    def path_for(self, config: RunConfig) -> Path:
        """Where ``config``'s result lives (whether or not it exists yet)."""
        digest = self.digest(config)
        return self.root / digest[:2] / f"{digest}.json"

    # -- lookup -------------------------------------------------------------

    def __contains__(self, config: RunConfig) -> bool:
        return self.path_for(config).is_file()

    def get(self, config: RunConfig):
        """The cached record for ``config``, or ``None`` on a miss.

        Corrupt or mismatched entries count as misses: the sweep simply
        re-runs the config and overwrites them.
        """
        from ..io import records_from_dicts

        path = self.path_for(config)
        try:
            envelope = json.loads(path.read_text())
            if envelope.get("kind") != "sweep-cache-entry":
                raise ValueError("not a cache entry")
            record = records_from_dicts([envelope["record"]])[0]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            _metric("cache.misses").inc()
            return None
        self.hits += 1
        _metric("cache.hits").inc()
        return record

    def put(self, config: RunConfig, record) -> Path:
        """Store ``record`` under ``config``'s digest; returns the path."""
        from ..io import records_to_dicts

        path = self.path_for(config)
        envelope: Dict[str, Any] = {
            "kind": "sweep-cache-entry",
            "digest": self.digest(config),
            "code": self.code_version,
            "config": config.to_dict(),
            "record": records_to_dicts([record])[0],
        }
        # Atomic and durable (temp file + fsync + os.replace): on a shared
        # filesystem another machine may read the entry the moment it
        # appears.
        if path.is_file():
            # A concurrent writer beat us to this digest; the replace below
            # is still safe (both wrote the same pure-function result).
            _metric("cache.races").inc()
        _metric("cache.puts").inc()
        write_json_atomic(path, envelope)
        return path

    # -- bookkeeping --------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for this cache object's lifetime."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
