"""Parallel execution of sweep configs with caching and resumability.

:func:`run_sweep` is the single entry point the CLI, the benchmark harness,
the examples and the thin :mod:`repro.analysis.experiments` front-ends all
share.  It takes a :class:`~repro.orchestrator.spec.SweepSpec` (or an
explicit config list) and, per config, resolves the result from the cheapest
available source:

1. the run ledger, when ``resume`` is set and a previous sweep already
   finished the config,
2. the content-addressed :class:`~repro.orchestrator.cache.ResultCache`,
3. actual execution through a pluggable
   :mod:`~repro.orchestrator.transport`: in-process for ``jobs=1`` (zero
   overhead, easiest to debug and to monkeypatch in tests), a
   ``multiprocessing`` pool for ``jobs>1``, a filesystem task queue
   served by ``python -m repro worker`` daemons on machines sharing the
   filesystem, or a TCP coordinator (``python -m repro serve``) serving
   ``python -m repro worker --connect`` daemons that share nothing but a
   network.

A run that raises is captured as a failed :class:`RunResult` instead of
killing the sweep; failures are appended to the ledger with a cumulative
attempt count (so resume can retry them — up to ``max_attempts``, after
which the sweep *gives up* on the config and reports it) but never cached.
Results always come back in spec order, no matter which worker finished
first, and the ledger is written in spec order too, so ``jobs=1``,
``jobs=8`` and a queue sweep over many machines produce identical ledgers.
"""

from __future__ import annotations

import inspect
import os
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import ExperimentRecord, run_experiment
from ..grid.generators import make_shape
from ..grid.metrics import ShapeMetrics, compute_metrics
from ..grid.shape import Shape
from ..telemetry import counter as _metric, get_event_log
from .cache import ResultCache
from .spec import RunConfig, SweepSpec
from .store import RunLedger
from .transport import resolve_transport

__all__ = [
    "DEFAULT_JOBS",
    "DEFAULT_MAX_ATTEMPTS",
    "RunResult",
    "SweepResult",
    "execute_config",
    "run_sweep",
]

#: Shared default for every ``--jobs`` flag.
DEFAULT_JOBS = 1

#: How many times a failing config is attempted (first run + resumes)
#: before ``--resume`` gives up on it.  ``None`` retries forever.
DEFAULT_MAX_ATTEMPTS = 3

PathOrCache = Union[str, "os.PathLike[str]", "ResultCache", None]
PathOrLedger = Union[str, "os.PathLike[str]", "RunLedger", None]
ProgressFn = Callable[[int, int, "RunResult"], None]

#: How a result was obtained.
SOURCE_EXECUTED = "executed"
SOURCE_CACHED = "cached"
SOURCE_RESUMED = "resumed"
#: A resumed config whose retry budget is exhausted: not re-run, not ok.
SOURCE_GAVE_UP = "gave-up"


@dataclass
class RunResult:
    """Outcome of one config: a record, or a captured failure."""

    config: RunConfig
    record: Optional[ExperimentRecord] = None
    error: Optional[str] = None
    source: str = SOURCE_EXECUTED
    elapsed: float = 0.0
    #: The original exception object, available only for in-process
    #: (``jobs=1``) execution — worker-pool failures cross a process
    #: boundary and survive as the ``error`` traceback string only.
    exception: Optional[BaseException] = None
    #: How many executions this outcome consumed.  1 except for queue
    #: results, where the workers may already have retried the task up to
    #: its per-task budget; the ledger's cumulative attempt count advances
    #: by this much so the resume retry cap counts real executions.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.record is not None and self.error is None

    @property
    def gave_up(self) -> bool:
        return self.source == SOURCE_GAVE_UP


@dataclass
class SweepResult:
    """Everything a sweep produced, in spec order."""

    results: List[RunResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def records(self) -> List[ExperimentRecord]:
        """Successful records, in spec order (failures omitted)."""
        return [r.record for r in self.results if r.ok]

    @property
    def failures(self) -> List[RunResult]:
        return [r for r in self.results if not r.ok]

    def counts(self) -> Dict[str, int]:
        """How each config's result was obtained, plus the failure count.

        ``"failed"`` counts every unsuccessful config; ``"gave-up"`` is the
        subset that a resumed sweep refused to retry because the attempt
        budget was exhausted.
        """
        counts = {"total": len(self.results), SOURCE_EXECUTED: 0,
                  SOURCE_CACHED: 0, SOURCE_RESUMED: 0, "failed": 0,
                  SOURCE_GAVE_UP: 0}
        for result in self.results:
            if result.ok:
                counts[result.source] += 1
            else:
                counts["failed"] += 1
                if result.gave_up:
                    counts[SOURCE_GAVE_UP] += 1
        return counts

    def raise_failures(self) -> "SweepResult":
        """Re-raise the first captured failure (serial-path semantics).

        In-process failures re-raise the original exception object;
        worker-pool failures raise ``RuntimeError`` carrying the worker's
        traceback text.
        """
        for result in self.results:
            if not result.ok:
                if result.exception is not None:
                    raise result.exception
                raise RuntimeError(
                    f"sweep run failed for {result.config.describe()}:\n"
                    f"{result.error}"
                )
        return self


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@lru_cache(maxsize=128)
def _shape_and_metrics(family: str, size: int,
                       seed: int) -> Tuple[Shape, ShapeMetrics]:
    """Shape construction and metrics are pure and shared by every algorithm
    of a sweep on the same (family, size, seed) — build them once per
    process, like the old serial table1 loop did."""
    shape = make_shape(family, size, seed=seed)
    return shape, compute_metrics(shape)


def execute_config(config: RunConfig,
                   checkpoint_every: Optional[int] = None,
                   checkpoint_dir: Optional[str] = None) -> ExperimentRecord:
    """Run one config from scratch (no cache involved).

    Thin front-end over :class:`repro.session.Session`, kept for callers
    that want the record without the session bookkeeping.
    """
    from ..session import Session

    return Session.run(config, checkpoint_every=checkpoint_every,
                       checkpoint_dir=checkpoint_dir).record


def _accepts_options(transport: Any) -> bool:
    """Whether the transport's ``run`` takes the execution-options dict.

    Custom transports predating checkpointing only accept ``run(items)``;
    they keep working, merely without checkpoint support.
    """
    try:
        signature = inspect.signature(transport.run)
    except (TypeError, ValueError):
        return False
    if len(signature.parameters) >= 2:
        return True
    return any(p.kind == inspect.Parameter.VAR_POSITIONAL
               or p.kind == inspect.Parameter.VAR_KEYWORD
               for p in signature.parameters.values())


def _result_from_payload(config: RunConfig,
                         payload: Dict[str, Any]) -> RunResult:
    from ..io import records_from_dicts

    if "record" in payload:
        record = records_from_dicts([payload["record"]])[0]
        return RunResult(config=config, record=record,
                         elapsed=payload.get("elapsed", 0.0))
    return RunResult(config=config, error=payload.get("error", "unknown error"),
                     exception=payload.get("exception"),
                     elapsed=payload.get("elapsed", 0.0),
                     attempts=max(1, int(payload.get("attempt", 1))))


def _record_dict(record: ExperimentRecord) -> Dict[str, Any]:
    from ..io import records_to_dicts

    return records_to_dicts([record])[0]


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------

def run_sweep(spec: Union[SweepSpec, Sequence[RunConfig]],
              jobs: int = DEFAULT_JOBS,
              cache: PathOrCache = None,
              ledger: PathOrLedger = None,
              resume: bool = False,
              progress: Optional[ProgressFn] = None,
              transport: Any = None,
              max_attempts: Optional[int] = DEFAULT_MAX_ATTEMPTS,
              checkpoint_every: Optional[int] = None,
              checkpoint_dir: Optional[str] = None) -> SweepResult:
    """Execute every config of ``spec``, returning results in spec order.

    ``cache`` / ``ledger`` accept paths or pre-built objects.  ``resume``
    requires a ledger and skips configs it already marks ``done``; failed
    and missing configs re-run, except configs that have already failed
    ``max_attempts`` times, which are *given up* (reported as failures with
    source ``"gave-up"``, without re-running).  ``progress`` is called as
    ``progress(finished_so_far, total, result)`` after every config, from
    the coordinating process, in completion order.

    ``transport`` selects where pending configs execute: ``None`` keeps the
    historical behaviour (in-process for ``jobs<=1``, a local
    ``multiprocessing`` pool otherwise), a name from
    :data:`~repro.orchestrator.transport.TRANSPORTS` forces a backend, and
    a :class:`~repro.orchestrator.queue.QueueTransport` or
    :class:`~repro.orchestrator.net.TcpTransport` instance distributes the
    work to ``python -m repro worker`` daemons.  Whatever the transport and
    completion order, ledger lines are flushed in spec order, so
    distributed sweeps and ``jobs=1`` sweeps write identical ledgers.

    ``checkpoint_every`` / ``checkpoint_dir`` make every executed config
    resumable: each run saves its state to ``checkpoint_dir`` every that
    many scheduler rounds (through :class:`repro.session.Session`), so a
    killed worker's half-done run continues from the last checkpoint
    instead of restarting.  These are execution options, not run identity:
    they never enter the cache digest or the ledger.  Transports that do
    not understand options (custom ``run(items)`` objects) simply run
    without checkpointing.
    """
    configs = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    for config in configs:
        config.validate()
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    if isinstance(ledger, (str, os.PathLike)):
        ledger = RunLedger(ledger)
    if resume and ledger is None:
        raise ValueError("resume=True requires a ledger")
    transport = resolve_transport(transport, jobs=jobs)

    code_version = cache.code_version if cache is not None else None
    if code_version is None:
        from .cache import default_code_version
        code_version = default_code_version()

    from .cache import config_digest
    digests = {config: config_digest(config, code_version)
               for config in configs}

    started = time.perf_counter()
    total = len(configs)
    events = get_event_log()
    events.emit("sweep.begin", total=total, resume=bool(resume), jobs=jobs)
    slots: List[Optional[RunResult]] = [None] * total
    #: Per-slot (result, write_to_ledger) staging for the in-order flush.
    ledger_slots: List[Optional[bool]] = [None] * total
    flushed = 0
    done_count = 0
    prior_failures = ledger.failures() if ledger is not None else {}
    failed_attempts = {digest: entry["attempts"]
                       for digest, entry in prior_failures.items()}

    def flush_ledger() -> None:
        """Append finished slots to the ledger in spec order.

        Results can finish in any order; holding back out-of-order entries
        keeps the ledger byte-comparable across transports, at the cost
        that a crash loses the held-back lines — pair the ledger with a
        result cache (which is written immediately, per completion) to
        make resumes after a coordinator crash cheap.
        """
        nonlocal flushed
        while flushed < total and ledger_slots[flushed] is not None:
            result = slots[flushed]
            if ledger_slots[flushed] and ledger is not None:
                config = result.config
                if result.ok:
                    ledger.append(digests[config], config, "done",
                                  record_dict=_record_dict(result.record),
                                  elapsed=result.elapsed)
                else:
                    attempts = (failed_attempts.get(digests[config], 0)
                                + result.attempts)
                    failed_attempts[digests[config]] = attempts
                    ledger.append(digests[config], config, "failed",
                                  error=result.error, elapsed=result.elapsed,
                                  attempts=attempts)
            flushed += 1

    def finish(index: int, result: RunResult,
               write_ledger: bool = True) -> None:
        nonlocal done_count
        slots[index] = result
        done_count += 1
        if result.ok and cache is not None and result.source == SOURCE_EXECUTED:
            cache.put(result.config, result.record)
        ledger_slots[index] = write_ledger and ledger is not None
        flush_ledger()
        if result.ok:
            _metric("sweep." + result.source.replace("-", "_")).inc()
        else:
            _metric("sweep.failed").inc()
            if result.gave_up:
                _metric("sweep.gave_up").inc()
                _metric("ledger.gave_ups").inc()
        if result.source == SOURCE_RESUMED:
            _metric("ledger.resume_skips").inc()
        events.emit("sweep.config", id=digests[result.config][:12],
                    config=result.config.describe(), source=result.source,
                    ok=result.ok, elapsed=round(result.elapsed, 6),
                    attempts=result.attempts)
        if progress is not None:
            progress(done_count, total, result)

    # Pass 1: resolve from the ledger (resume) and the result cache.
    resumed = ledger.completed() if (resume and ledger is not None) else {}
    pending: List[int] = []
    for index, config in enumerate(configs):
        entry = resumed.get(digests[config])
        if entry is not None and "record" in entry:
            result = _result_from_payload(config, {"record": entry["record"]})
            result.source = SOURCE_RESUMED
            # Already in the ledger — appending again would bloat it.
            finish(index, result, write_ledger=False)
            continue
        if resume and max_attempts is not None:
            failed = prior_failures.get(digests[config])
            if failed is not None and failed["attempts"] >= max_attempts:
                result = RunResult(
                    config=config,
                    error=(f"gave up after {failed['attempts']} failed "
                           f"attempts (max_attempts={max_attempts}); "
                           f"last error:\n{failed.get('error', '(unknown)')}"),
                    source=SOURCE_GAVE_UP)
                # Not re-appended: the attempt count only grows on real runs.
                finish(index, result, write_ledger=False)
                continue
        if cache is not None:
            record = cache.get(config)
            if record is not None:
                finish(index, RunResult(config=config, record=record,
                                        source=SOURCE_CACHED))
                continue
        pending.append(index)

    # Pass 2: execute what remains through the transport.
    if pending:
        items = [(index, configs[index], digests[configs[index]])
                 for index in pending]
        options: Optional[Dict[str, Any]] = None
        if checkpoint_every is not None or checkpoint_dir is not None:
            options = {"checkpoint_every": checkpoint_every,
                       "checkpoint_dir": (str(checkpoint_dir)
                                          if checkpoint_dir else None)}
        if options is not None and _accepts_options(transport):
            results = transport.run(items, options)
        else:
            results = transport.run(items)
        for index, payload in results:
            finish(index, _result_from_payload(configs[index], payload))

    sweep_result = SweepResult(results=list(slots),
                               elapsed=time.perf_counter() - started)
    events.emit("sweep.end", elapsed=round(sweep_result.elapsed, 6),
                **sweep_result.counts())
    return sweep_result
