"""Parallel execution of sweep configs with caching and resumability.

:func:`run_sweep` is the single entry point the CLI, the benchmark harness,
the examples and the thin :mod:`repro.analysis.experiments` front-ends all
share.  It takes a :class:`~repro.orchestrator.spec.SweepSpec` (or an
explicit config list) and, per config, resolves the result from the cheapest
available source:

1. the run ledger, when ``resume`` is set and a previous sweep already
   finished the config,
2. the content-addressed :class:`~repro.orchestrator.cache.ResultCache`,
3. actual execution — in-process for ``jobs=1`` (zero overhead, easiest to
   debug and to monkeypatch in tests), in a ``multiprocessing`` pool
   otherwise.

A run that raises is captured as a failed :class:`RunResult` instead of
killing the sweep; failures are appended to the ledger (so they are retried
on resume) but never cached.  Results always come back in spec order, no
matter which worker finished first, so ``jobs=1`` and ``jobs=8`` produce
byte-identical record lists.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..analysis.experiments import ExperimentRecord, run_experiment
from ..grid.generators import make_shape
from ..grid.metrics import compute_metrics
from .cache import ResultCache
from .spec import RunConfig, SweepSpec
from .store import RunLedger

__all__ = [
    "DEFAULT_JOBS",
    "RunResult",
    "SweepResult",
    "execute_config",
    "run_sweep",
]

#: Shared default for every ``--jobs`` flag.
DEFAULT_JOBS = 1

PathOrCache = Union[str, "os.PathLike[str]", "ResultCache", None]
PathOrLedger = Union[str, "os.PathLike[str]", "RunLedger", None]
ProgressFn = Callable[[int, int, "RunResult"], None]

#: How a result was obtained.
SOURCE_EXECUTED = "executed"
SOURCE_CACHED = "cached"
SOURCE_RESUMED = "resumed"


@dataclass
class RunResult:
    """Outcome of one config: a record, or a captured failure."""

    config: RunConfig
    record: Optional[ExperimentRecord] = None
    error: Optional[str] = None
    source: str = SOURCE_EXECUTED
    elapsed: float = 0.0
    #: The original exception object, available only for in-process
    #: (``jobs=1``) execution — worker-pool failures cross a process
    #: boundary and survive as the ``error`` traceback string only.
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.record is not None and self.error is None


@dataclass
class SweepResult:
    """Everything a sweep produced, in spec order."""

    results: List[RunResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def records(self) -> List[ExperimentRecord]:
        """Successful records, in spec order (failures omitted)."""
        return [r.record for r in self.results if r.ok]

    @property
    def failures(self) -> List[RunResult]:
        return [r for r in self.results if not r.ok]

    def counts(self) -> Dict[str, int]:
        """How each config's result was obtained, plus the failure count."""
        counts = {"total": len(self.results), SOURCE_EXECUTED: 0,
                  SOURCE_CACHED: 0, SOURCE_RESUMED: 0, "failed": 0}
        for result in self.results:
            if result.ok:
                counts[result.source] += 1
            else:
                counts["failed"] += 1
        return counts

    def raise_failures(self) -> "SweepResult":
        """Re-raise the first captured failure (serial-path semantics).

        In-process failures re-raise the original exception object;
        worker-pool failures raise ``RuntimeError`` carrying the worker's
        traceback text.
        """
        for result in self.results:
            if not result.ok:
                if result.exception is not None:
                    raise result.exception
                raise RuntimeError(
                    f"sweep run failed for {result.config.describe()}:\n"
                    f"{result.error}"
                )
        return self


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@lru_cache(maxsize=128)
def _shape_and_metrics(family: str, size: int, seed: int):
    """Shape construction and metrics are pure and shared by every algorithm
    of a sweep on the same (family, size, seed) — build them once per
    process, like the old serial table1 loop did."""
    shape = make_shape(family, size, seed=seed)
    return shape, compute_metrics(shape)


def execute_config(config: RunConfig) -> ExperimentRecord:
    """Run one config from scratch (no cache involved)."""
    shape, metrics = _shape_and_metrics(config.family, config.size,
                                        config.seed)
    return run_experiment(config.algorithm, shape, family=config.family,
                          size=config.size, seed=config.seed,
                          metrics=metrics, order=config.scheduler,
                          engine=config.engine)


def _worker(config_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: executes one config, never raises (must be picklable)."""
    from ..io import records_to_dicts

    started = time.perf_counter()
    try:
        config = RunConfig.from_dict(config_dict)
        record = execute_config(config)
        return {
            "config": config_dict,
            "record": records_to_dicts([record])[0],
            "elapsed": time.perf_counter() - started,
        }
    except Exception:
        return {
            "config": config_dict,
            "error": traceback.format_exc(),
            "elapsed": time.perf_counter() - started,
        }


def _result_from_payload(config: RunConfig,
                         payload: Dict[str, Any]) -> RunResult:
    from ..io import records_from_dicts

    if "record" in payload:
        record = records_from_dicts([payload["record"]])[0]
        return RunResult(config=config, record=record,
                         elapsed=payload.get("elapsed", 0.0))
    return RunResult(config=config, error=payload.get("error", "unknown error"),
                     elapsed=payload.get("elapsed", 0.0))


def _record_dict(record: ExperimentRecord) -> Dict[str, Any]:
    from ..io import records_to_dicts

    return records_to_dicts([record])[0]


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------

def run_sweep(spec: Union[SweepSpec, Sequence[RunConfig]],
              jobs: int = DEFAULT_JOBS,
              cache: PathOrCache = None,
              ledger: PathOrLedger = None,
              resume: bool = False,
              progress: Optional[ProgressFn] = None) -> SweepResult:
    """Execute every config of ``spec``, returning results in spec order.

    ``cache`` / ``ledger`` accept paths or pre-built objects.  ``resume``
    requires a ledger and skips configs it already marks ``done``; failed
    and missing configs re-run.  ``progress`` is called as
    ``progress(finished_so_far, total, result)`` after every config, from
    the coordinating process, in completion order.
    """
    configs = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    for config in configs:
        config.validate()
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    if isinstance(ledger, (str, os.PathLike)):
        ledger = RunLedger(ledger)
    if resume and ledger is None:
        raise ValueError("resume=True requires a ledger")

    code_version = cache.code_version if cache is not None else None
    if code_version is None:
        from .cache import default_code_version
        code_version = default_code_version()

    from .cache import config_digest
    digests = {config: config_digest(config, code_version)
               for config in configs}

    started = time.perf_counter()
    slots: List[Optional[RunResult]] = [None] * len(configs)
    done_count = 0
    total = len(configs)

    def finish(index: int, result: RunResult,
               write_ledger: bool = True) -> None:
        nonlocal done_count
        config = result.config
        slots[index] = result
        done_count += 1
        if result.ok and cache is not None and result.source == SOURCE_EXECUTED:
            cache.put(config, result.record)
        if ledger is not None and write_ledger:
            if result.ok:
                ledger.append(digests[config], config, "done",
                              record_dict=_record_dict(result.record),
                              elapsed=result.elapsed)
            else:
                ledger.append(digests[config], config, "failed",
                              error=result.error, elapsed=result.elapsed)
        if progress is not None:
            progress(done_count, total, result)

    # Pass 1: resolve from the ledger (resume) and the result cache.
    resumed = ledger.completed() if (resume and ledger is not None) else {}
    pending: List[int] = []
    for index, config in enumerate(configs):
        entry = resumed.get(digests[config])
        if entry is not None and "record" in entry:
            result = _result_from_payload(config, {"record": entry["record"]})
            result.source = SOURCE_RESUMED
            # Already in the ledger — appending again would bloat it.
            finish(index, result, write_ledger=False)
            continue
        if cache is not None:
            record = cache.get(config)
            if record is not None:
                finish(index, RunResult(config=config, record=record,
                                        source=SOURCE_CACHED))
                continue
        pending.append(index)

    # Pass 2: execute what remains.
    if pending and jobs <= 1:
        for index in pending:
            config = configs[index]
            run_started = time.perf_counter()
            try:
                record = execute_config(config)
                result = RunResult(config=config, record=record,
                                   elapsed=time.perf_counter() - run_started)
            except Exception as exc:
                result = RunResult(config=config,
                                   error=traceback.format_exc(),
                                   exception=exc,
                                   elapsed=time.perf_counter() - run_started)
            finish(index, result)
    elif pending:
        payloads = [(index, configs[index].to_dict()) for index in pending]
        with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
            jobs_iter = pool.imap_unordered(
                _indexed_worker, payloads, chunksize=1)
            try:
                for index, payload in jobs_iter:
                    finish(index,
                           _result_from_payload(configs[index], payload))
            except KeyboardInterrupt:
                pool.terminate()
                raise

    return SweepResult(results=list(slots),
                       elapsed=time.perf_counter() - started)


def _indexed_worker(item):
    """Pairs each worker payload with the caller's key so results can be
    matched up regardless of completion order."""
    key, config_dict = item
    return key, _worker(config_dict)
