"""Declarative sweep specifications.

A sweep is the cartesian product *algorithms × families × sizes × seeds*
(plus the scheduler order the adversary uses), written down once as a
:class:`SweepSpec` and expanded into a list of hashable :class:`RunConfig`
values.  Every layer of the execution subsystem speaks ``RunConfig``:

* the :mod:`~repro.orchestrator.cache` keys results by a stable digest of
  the config plus the code version,
* the :mod:`~repro.orchestrator.transport` backends ship configs to worker
  processes — and, through the :mod:`~repro.orchestrator.queue` filesystem
  task queue or the :mod:`~repro.orchestrator.net` TCP coordinator, to
  worker daemons on other machines — as plain dictionaries,
* the :mod:`~repro.orchestrator.store` ledger records which configs an
  interrupted sweep already finished.

Configs are pure data — expanding a spec runs nothing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..amoebot.faults import FaultSpec
from ..amoebot.scheduler import ENGINES as _ENGINE_REGISTRY
from ..amoebot.scheduler import SCHEDULER_ORDERS as _SCHEDULER_ORDERS
from ..analysis.experiments import (
    ALGORITHMS,
    FAULT_ALGORITHMS,
    TABLE1_ALGORITHMS,
    TABLE1_FAMILIES,
)
from ..grid.generators import SHAPE_FAMILIES

__all__ = [
    "ENGINES",
    "SCHEDULER_ORDERS",
    "RunConfig",
    "SweepSpec",
    "scaling_spec",
    "table1_spec",
]

#: Activation-order policies the adversary (scheduler) may use; derived
#: from the registry in :mod:`repro.amoebot.scheduler` so new policies are
#: automatically runnable through sweeps and the CLI.
SCHEDULER_ORDERS: Tuple[str, ...] = _SCHEDULER_ORDERS

#: Activation engines, derived from :data:`repro.amoebot.scheduler.ENGINES`:
#: ``sweep`` activates every particle each round, ``event`` parks quiescent
#: particles and re-wakes them on dirty-neighborhood events.  Both produce
#: identical traces and round counts, so the engine only matters for wall
#: clock — but it is still part of the config (and therefore of the cache
#: digest) so that performance experiments comparing engines never alias.
ENGINES: Tuple[str, ...] = tuple(sorted(_ENGINE_REGISTRY))


@dataclass(frozen=True, order=True)
class RunConfig:
    """One fully-determined experiment run.

    A config is hashable and totally ordered, and together with the code
    version it determines the resulting
    :class:`~repro.analysis.experiments.ExperimentRecord` exactly (every
    source of randomness is seeded), which is what makes result caching and
    resumable sweeps sound.
    """

    algorithm: str
    family: str
    size: int
    seed: int
    scheduler: str = "random"
    engine: str = "sweep"
    #: Fault-plan spec string (see :class:`repro.amoebot.faults.FaultSpec`);
    #: "" = no fault injection.  Part of the run's identity: a faulty run
    #: and its fault-free twin never share a cache entry or a checkpoint.
    faults: str = ""

    def validate(self) -> None:
        """Raise ``ValueError`` unless every field names a known entity."""
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        if self.family not in SHAPE_FAMILIES:
            raise ValueError(
                f"unknown shape family {self.family!r}; "
                f"known: {sorted(SHAPE_FAMILIES)}"
            )
        if self.scheduler not in SCHEDULER_ORDERS:
            raise ValueError(
                f"unknown scheduler order {self.scheduler!r}; "
                f"known: {sorted(SCHEDULER_ORDERS)}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown activation engine {self.engine!r}; "
                f"known: {sorted(ENGINES)}"
            )
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")
        if self.faults:
            FaultSpec.parse(self.faults)  # raises on bad syntax
            if self.algorithm not in FAULT_ALGORITHMS:
                raise ValueError(
                    f"algorithm {self.algorithm!r} does not support fault "
                    f"injection; fault-aware: {sorted(FAULT_ALGORITHMS)}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary (the canonical form used for hashing).

        The ``faults`` key is present only when a plan is set, so every
        fault-free config hashes exactly as it did before the fault layer
        existed (cache entries and checkpoint filenames are preserved).
        """
        data = {
            "algorithm": self.algorithm,
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "engine": self.engine,
        }
        if self.faults:
            data["faults"] = self.faults
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            algorithm=str(data["algorithm"]),
            family=str(data["family"]),
            size=int(data["size"]),
            seed=int(data["seed"]),
            scheduler=str(data.get("scheduler", "random")),
            engine=str(data.get("engine", "sweep")),
            faults=str(data.get("faults", "")),
        )

    def describe(self) -> str:
        """Short human-readable label for progress lines and error messages."""
        label = f"{self.algorithm}/{self.family} size={self.size} seed={self.seed}"
        if self.scheduler != "random":
            label += f" sched={self.scheduler}"
        if self.engine != "sweep":
            label += f" engine={self.engine}"
        if self.faults:
            label += f" faults={self.faults}"
        return label


@dataclass
class SweepSpec:
    """A declarative grid of experiment runs.

    ``expand()`` yields configs in a stable nesting order —
    faults → family → size → seed → algorithm — so the resulting record
    list lines up with the layouts the table formatters expect regardless
    of how many workers executed the sweep.  ``faults`` is the outermost
    axis (default: one disabled plan), so robustness grids group all runs
    of one fault intensity together — the layout the survival report
    aggregates over — and fault-free sweeps expand exactly as before.
    """

    algorithms: Sequence[str]
    families: Sequence[str]
    sizes: Sequence[int]
    seeds: Sequence[int] = (0,)
    scheduler: str = "random"
    engine: str = "sweep"
    faults: Sequence[str] = ("",)

    def __post_init__(self) -> None:
        self.algorithms = list(self.algorithms)
        self.families = list(self.families)
        self.sizes = [int(s) for s in self.sizes]
        self.seeds = [int(s) for s in self.seeds]
        self.faults = [str(f) for f in self.faults]
        if not (self.algorithms and self.families and self.sizes
                and self.seeds and self.faults):
            raise ValueError("SweepSpec axes must all be non-empty")

    def __len__(self) -> int:
        return (len(self.algorithms) * len(self.families)
                * len(self.sizes) * len(self.seeds) * len(self.faults))

    def expand(self) -> List[RunConfig]:
        """The full list of configs, validated, in canonical order."""
        configs = [
            RunConfig(algorithm=algorithm, family=family, size=size,
                      seed=seed, scheduler=self.scheduler,
                      engine=self.engine, faults=faults)
            for faults, family, size, seed, algorithm in itertools.product(
                self.faults, self.families, self.sizes, self.seeds,
                self.algorithms)
        ]
        for config in configs:
            config.validate()
        return configs

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary describing the spec.

        Like :meth:`RunConfig.to_dict`, the ``faults`` axis is recorded
        only when it differs from the default single disabled plan.
        """
        data = {
            "kind": "sweep-spec",
            "algorithms": list(self.algorithms),
            "families": list(self.families),
            "sizes": list(self.sizes),
            "seeds": list(self.seeds),
            "scheduler": self.scheduler,
            "engine": self.engine,
        }
        if self.faults != [""]:
            data["faults"] = list(self.faults)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if data.get("kind") != "sweep-spec":
            raise ValueError("not a serialised sweep spec")
        return cls(
            algorithms=data["algorithms"],
            families=data["families"],
            sizes=data["sizes"],
            seeds=data.get("seeds", [0]),
            scheduler=data.get("scheduler", "random"),
            engine=data.get("engine", "sweep"),
            faults=data.get("faults", [""]),
        )


def scaling_spec(algorithm: str, family: str, sizes: Sequence[int],
                 seed: int = 0, scheduler: str = "random",
                 engine: str = "sweep") -> SweepSpec:
    """The spec behind one scaling series (one algorithm, one family)."""
    return SweepSpec(algorithms=[algorithm], families=[family],
                     sizes=list(sizes), seeds=[seed], scheduler=scheduler,
                     engine=engine)


def table1_spec(sizes: Sequence[int] = (2, 3, 4), seed: int = 0,
                families: Sequence[str] = TABLE1_FAMILIES,
                algorithms: Optional[Sequence[str]] = None,
                scheduler: str = "random",
                engine: str = "sweep") -> SweepSpec:
    """The spec behind the Table 1 reproduction (all algorithms × shapes)."""
    selected = list(algorithms) if algorithms is not None else list(TABLE1_ALGORITHMS)
    return SweepSpec(algorithms=selected, families=list(families),
                     sizes=list(sizes), seeds=[seed], scheduler=scheduler,
                     engine=engine)
