"""Aggregation of sweep results back into the analysis pipeline.

A sweep produces a flat, spec-ordered list of records; the artefacts in
EXPERIMENTS.md are tables and fitted scaling series.  This module is the
bridge: it groups sweep output by (algorithm, family) and feeds each group
to the existing :mod:`repro.analysis.tables` / :mod:`repro.analysis.fitting`
formatters, so the orchestrated path and the legacy serial path render
byte-identical reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from ..analysis.experiments import ExperimentRecord
from ..analysis.tables import format_scaling_series, summarize_scaling
from .pool import SweepResult

__all__ = [
    "group_records",
    "format_sweep_scaling",
    "scaling_summaries",
    "format_sweep_summary",
]

GroupKey = Tuple[str, str]  # (algorithm, family)


def group_records(records: Sequence[ExperimentRecord]
                  ) -> "OrderedDict[GroupKey, List[ExperimentRecord]]":
    """Group records by (algorithm, family), preserving first-seen order."""
    groups: "OrderedDict[GroupKey, List[ExperimentRecord]]" = OrderedDict()
    for record in records:
        groups.setdefault((record.algorithm, record.family), []).append(record)
    return groups


def scaling_summaries(records: Sequence[ExperimentRecord],
                      parameter: str) -> Dict[GroupKey, Dict[str, float]]:
    """Per-(algorithm, family) fit summaries of rounds vs ``parameter``."""
    return {
        key: summarize_scaling(group, parameter)
        for key, group in group_records(records).items()
        if len(group) >= 2
    }


def format_sweep_scaling(records: Sequence[ExperimentRecord],
                         parameter: str) -> str:
    """One fitted scaling series per (algorithm, family) group."""
    blocks: List[str] = []
    for (algorithm, family), group in group_records(records).items():
        if len(group) < 2:
            continue
        title = f"{algorithm} rounds vs {parameter} ({family})"
        blocks.append(format_scaling_series(group, parameter, title=title))
    if not blocks:
        return "(not enough data points for a scaling fit)"
    return "\n\n".join(blocks)


def format_sweep_summary(result: SweepResult) -> str:
    """One-line execution summary: where results came from and how long."""
    counts = result.counts()
    parts = [f"{counts['total']} runs",
             f"{counts['executed']} executed",
             f"{counts['cached']} cached",
             f"{counts['resumed']} resumed"]
    if counts["failed"]:
        failed = f"{counts['failed']} FAILED"
        if counts.get("gave-up"):
            failed += f" ({counts['gave-up']} gave up, retry budget spent)"
        parts.append(failed)
    parts.append(f"{result.elapsed:.2f}s")
    return "sweep: " + ", ".join(parts)
