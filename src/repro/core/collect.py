"""Algorithm Collect — reconnecting the system after DLE (Section 4.3).

After Algorithm DLE terminates the particle system may be disconnected, but
by Lemma 19 it is disconnected in a very structured way: when the leader
occupies point ``l``, there is a contracted particle at *every* grid distance
``0..eps_G(l)`` from ``l`` ("breadcrumbs").  Algorithm Collect exploits this
to gather all particles in ``O(D_G)`` rounds: a *stem* of collected particles
anchored at ``l`` repeatedly (1) marches outward (primitive OMP), (2) sweeps
a full rotation around ``l`` like a fan blade, collecting every particle at
grid distance ``k .. 2k-1`` (primitive PRP, six 60-degree rotations), and
(3) returns to ``l`` while doubling its size using the newly collected
particles (primitive SDP).  The algorithm terminates after the first phase
that collects nothing, at which point the collected particles form a
connected configuration.

Fidelity note (see DESIGN.md §4).  The paper implements the three primitives
with token/permit pipelining and "virtual particle" simulation whose
low-level message formats are only sketched.  This module executes the *net
particle movement* of each phase on the real grid — so collection,
connectivity (Lemma 20) and the doubling behaviour (Lemma 21 / Corollary 22)
are genuinely simulated and checked — while the number of rounds of each
primitive is charged analytically from the paper's own pipelining analysis:

* OMP on a stem of size ``k``:   ``OMP_ROUNDS_PER_UNIT * k``   (Lemma 24),
* one 60-degree PRP rotation:    ``PRP_ROUNDS_PER_UNIT * k``   (Lemma 26),
* SDP:                            ``SDP_ROUNDS_PER_UNIT * k``   (Lemma 27).

The constants are explicit so that experiments report a concrete round
count whose growth in ``D_G`` is the quantity the paper's Theorem 23 claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem
from ..grid.coords import Point
from ..grid.packed import (
    pack_point,
    packed_grid_distance,
    packed_ring,
    packed_translate,
)
from ..grid.shape import is_connected

__all__ = [
    "CollectPhase",
    "CollectResult",
    "CollectSimulator",
    "OMP_ROUNDS_PER_UNIT",
    "PRP_ROUNDS_PER_UNIT",
    "SDP_ROUNDS_PER_UNIT",
]

#: Rounds charged per stem particle for the outward-movement primitive OMP:
#: an expansion wave followed by a contraction wave, each pipelined over the
#: stem (proof of Lemma 24 charges O(1) rounds per forwarded permit).
OMP_ROUNDS_PER_UNIT = 4
#: Rounds charged per stem particle for one 60-degree partial rotation (PRP):
#: part (1) moves the stem k points using 2k pipelined messages, part (2)
#: rotates it around its root with the same message structure (Lemma 26).
PRP_ROUNDS_PER_UNIT = 8
#: Rounds charged per stem particle for the stem-doubling primitive SDP
#: (expansion towards l, contraction, then absorption of branch particles;
#: Lemma 27).
SDP_ROUNDS_PER_UNIT = 6
#: Number of 60-degree rotations forming one full sweep around the leader.
ROTATIONS_PER_PHASE = 6


@dataclass
class CollectPhase:
    """Statistics of one phase of Algorithm Collect."""

    index: int
    stem_size: int
    newly_collected: int
    stem_size_after: int
    rounds: int


@dataclass
class CollectResult:
    """Outcome of running Algorithm Collect."""

    rounds: int
    phases: List[CollectPhase] = field(default_factory=list)
    connected: bool = False
    leader_point: Optional[Point] = None

    @property
    def num_phases(self) -> int:
        return len(self.phases)


class CollectSimulator:
    """Structured simulation of Algorithm Collect (Section 4.3.2).

    Parameters
    ----------
    system:
        The particle system, in the configuration left by Algorithm DLE
        (all particles contracted, exactly one leader).
    leader:
        The leader particle (occupying the last eligible point ``l``).
    outward_direction:
        The global direction the leader chooses as the stem direction
        ``v_out`` (the choice is immaterial; direction 0 by default).
    """

    def __init__(self, system: ParticleSystem, leader: Particle,
                 outward_direction: int = 0) -> None:
        if leader.is_expanded:
            raise ValueError("Collect expects a contracted leader")
        if not system.all_contracted():
            raise ValueError("Collect expects all particles contracted")
        self.system = system
        self.leader = leader
        self.leader_point: Point = leader.head
        self.outward_direction = outward_direction
        #: Packed-int mirror of ``leader_point``: all planning geometry
        #: (rays, rings, distances, relocation targets) runs in the packed
        #: domain and only particle-facing APIs see tuple points.
        self._leader_packed: int = pack_point(leader.head)
        self.collected: Set[int] = {leader.particle_id}
        self.phases: List[CollectPhase] = []
        self.rounds = 0

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Explicit quiescence declaration for the event-driven engine.

        Collect is a structured simulation: each phase's net movement is
        applied with :meth:`ParticleSystem.bulk_relocate` and the rounds are
        charged analytically, so no particle performs scheduler-driven work.
        Every particle is vacuously quiescent for the simulator's duration;
        the bulk relocations still publish dirty-neighborhood events, so an
        event-driven stage running afterwards starts from fresh neighbour
        caches and a correctly re-woken configuration.
        """
        return True

    # -- geometry helpers -----------------------------------------------------

    def _ray_point(self, distance: int) -> int:
        """The packed stem point at the given grid distance from the leader."""
        return packed_translate(self._leader_packed, self.outward_direction,
                                distance)

    def _parking_positions(self, max_distance: int) -> List[int]:
        """Off-ray packed positions within ``max_distance`` of the leader,
        listed so that filling them in order keeps the collected set
        connected.

        Ring ``j`` is filled counter-clockwise starting from the neighbour of
        the ray point at distance ``j``; consecutive ring points are adjacent
        and the first one is adjacent to the stem, so every prefix of the
        returned list together with the stem is connected.
        """
        positions: List[int] = []
        for j in range(1, max_distance + 1):
            ring_points = packed_ring(self._leader_packed, j)
            # ring_points[0] is the ray point (the ring starts at
            # center + j * direction); walking the list backwards goes
            # counter-clockwise from it.
            rotated = self._align_ring_to_ray(ring_points, j)
            positions.extend(reversed(rotated[1:]))
        return positions

    def _align_ring_to_ray(self, ring_points: List[int], j: int) -> List[int]:
        """Rotate the ring list so it starts at the ray point at distance j."""
        ray = self._ray_point(j)
        index = ring_points.index(ray)
        return ring_points[index:] + ring_points[:index]

    # -- phase execution ---------------------------------------------------------

    def _uncollected_at_distances(self, low: int, high: int) -> List[int]:
        """Ids of uncollected particles at grid distance in ``[low, high]``."""
        found: List[int] = []
        leader_packed = self._leader_packed
        for particle in self.system.particles():
            if particle.particle_id in self.collected:
                continue
            d = packed_grid_distance(pack_point(particle.head), leader_packed)
            if low <= d <= high:
                found.append(particle.particle_id)
        return found

    def _reposition_collected(self, stem_size: int) -> None:
        """Place the collected particles: the stem on the ray, extras parked
        on the rings nearest the leader (never beyond the stem's reach)."""
        collected_ids = sorted(self.collected)
        stem_targets = [self._ray_point(i) for i in range(stem_size)]
        extras = len(collected_ids) - stem_size
        if extras < 0:
            raise RuntimeError("stem larger than the collected set")
        parking = self._parking_positions(stem_size - 1)
        if extras > len(parking):
            raise RuntimeError(
                "not enough parking positions for the collected particles; "
                "this contradicts the capacity argument of Lemma 21"
            )
        targets = stem_targets + parking[:extras]
        # Keep particles that are already on a target in place, assign the
        # rest greedily; particles are anonymous so any assignment is valid.
        current: Dict[int, int] = {
            pid: pack_point(self.system.get_particle(pid).head)
            for pid in collected_ids
        }
        target_set = set(targets)
        stay = {pid for pid, pt in current.items() if pt in target_set}
        # Make sure two stationary particles do not claim the same target
        # (cannot happen: particles occupy distinct points).
        taken = {current[pid] for pid in stay}
        free_targets = [t for t in targets if t not in taken]
        movers = [pid for pid in collected_ids if pid not in stay]
        assignment = {pid: point for pid, point in zip(movers, free_targets)}
        if assignment:
            self.system.bulk_relocate_packed(assignment)

    def _phase_rounds(self, stem_size: int) -> int:
        """Rounds charged for one phase with the given starting stem size."""
        per_unit = (OMP_ROUNDS_PER_UNIT
                    + ROTATIONS_PER_PHASE * PRP_ROUNDS_PER_UNIT
                    + SDP_ROUNDS_PER_UNIT)
        return per_unit * max(1, stem_size)

    def run_phase(self, index: int, stem_size: int) -> CollectPhase:
        """Execute one phase: sweep distances ``[k, 2k-1]``, collect, double."""
        k = stem_size
        newly = self._uncollected_at_distances(k, 2 * k - 1)
        self.collected.update(newly)
        n_collected = len(self.collected)
        stem_after = min(2 * k, n_collected)
        self._reposition_collected(stem_after)
        rounds = self._phase_rounds(k)
        phase = CollectPhase(
            index=index,
            stem_size=k,
            newly_collected=len(newly),
            stem_size_after=stem_after,
            rounds=rounds,
        )
        self.phases.append(phase)
        self.rounds += rounds
        return phase

    def _final_reconnect(self) -> None:
        """Terminal reconnection step: stretch the stem far enough that every
        parked particle's ring is anchored to a stem point.

        By Lemma 19 there is at least one collected particle per grid
        distance up to the farthest one, so the stem can always be extended
        to cover it; the extra rounds are at most another ``O(D_G)`` and are
        charged below.
        """
        # Reduced straight to max(): iterating the ``collected`` set must
        # never materialise a hash-ordered list (D102) — only the extremum
        # is order-free.
        max_distance = max(
            (packed_grid_distance(
                pack_point(self.system.get_particle(pid).head),
                self._leader_packed)
             for pid in self.collected), default=0)
        needed_stem = max_distance + 1
        if needed_stem > len(self.collected):
            needed_stem = len(self.collected)
        self._reposition_collected(needed_stem)
        self.rounds += SDP_ROUNDS_PER_UNIT * needed_stem

    # -- main entry point -----------------------------------------------------------

    def run(self, max_phases: int = 64) -> CollectResult:
        """Run Algorithm Collect to termination and return its statistics."""
        stem_size = 1
        index = 0
        while index < max_phases:
            index += 1
            phase = self.run_phase(index, stem_size)
            if phase.newly_collected == 0:
                break
            stem_size = phase.stem_size_after
        else:
            raise RuntimeError("Collect did not terminate within max_phases")
        self._final_reconnect()
        connected = is_connected(self.system.occupied_points())
        result = CollectResult(
            rounds=self.rounds,
            phases=list(self.phases),
            connected=connected,
            leader_point=self.leader_point,
        )
        return result
