"""End-to-end leader election pipelines composing the paper's components.

Two pipelines are provided, matching the two rows the paper contributes to
Table 1:

* :func:`elect_leader_known_boundary` — assumes particles initially know
  which ports face the outer boundary (the paper's first result) and runs
  Algorithm DLE followed, optionally, by Algorithm Collect.  Round
  complexity ``O(D_A)`` for election, ``O(D_A + D_G)`` with reconnection.
* :func:`elect_leader` — removes the assumption by running primitive OBD
  first, for ``O(L_out + D)`` rounds overall.

Both return an :class:`ElectionOutcome` bundling the elected leader, the
per-stage round counts and the final configuration facts that the test suite
checks (unique leader, everyone else follower, system connected again when
reconnection was requested).

Both accept an optional ``checkpoint``
(:class:`repro.state.CheckpointContext`): the scheduler-driven DLE stage
then saves resumable state every ``checkpoint.every`` rounds, and the
synchronous OBD stage records its round charge as a completed-stage
summary so a resumed run does not repeat it.  Algorithm Collect is a fast
one-shot simulation downstream of DLE; a run preempted during Collect
resumes from the last DLE checkpoint and re-derives it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..amoebot.scheduler import (
    SchedulerResult,
    canonical_run_kwargs,
    make_scheduler,
)
from ..amoebot.system import ParticleSystem
from ..grid.shape import Shape
from ..state import CheckpointContext, run_checkpointed_stage
from .collect import CollectResult, CollectSimulator
from .dle import DLEAlgorithm, verify_unique_leader
from .obd import OBDResult, OuterBoundaryDetection

__all__ = ["ElectionOutcome", "elect_leader_known_boundary", "elect_leader"]


@dataclass
class ElectionOutcome:
    """Result of an end-to-end leader-election run."""

    total_rounds: int
    dle_rounds: int
    obd_rounds: int = 0
    collect_rounds: int = 0
    leader_point: Optional[tuple] = None
    connected_after: bool = False
    reconnected: bool = False
    #: Underlying per-stage results, for detailed inspection.  ``obd_result``
    #: is None when a resumed run replayed the stage from its checkpointed
    #: summary instead of re-running it.
    dle_result: Optional[SchedulerResult] = None
    obd_result: Optional[OBDResult] = None
    collect_result: Optional[CollectResult] = None

    def stage_rounds(self) -> Dict[str, int]:
        """Round counts per pipeline stage."""
        return {
            "obd": self.obd_rounds,
            "dle": self.dle_rounds,
            "collect": self.collect_rounds,
            "total": self.total_rounds,
        }


def _run_dle(system: ParticleSystem, outer_from_memory: bool,
             order: str, seed: int, max_rounds: int,
             engine: str = "sweep",
             checkpoint: Optional[CheckpointContext] = None,
             ) -> tuple[DLEAlgorithm, SchedulerResult]:
    algorithm = DLEAlgorithm(outer_from_memory=outer_from_memory)
    scheduler = make_scheduler(engine, order=order, seed=seed)
    result = run_checkpointed_stage(checkpoint, "dle", algorithm, system,
                                    scheduler, max_rounds)
    if not result.terminated:
        raise RuntimeError(
            f"Algorithm DLE did not terminate within {max_rounds} rounds"
        )
    return algorithm, result


def _run_collect(system: ParticleSystem) -> CollectResult:
    leader = verify_unique_leader(system)
    simulator = CollectSimulator(system, leader)
    return simulator.run()


def elect_leader_known_boundary(system: ParticleSystem,
                                reconnect: bool = True,
                                order: str = "random",
                                seed: int = 0,
                                max_rounds: int = 1_000_000,
                                engine: str = "sweep",
                                checkpoint: Optional[CheckpointContext] = None,
                                *,
                                scheduler_order: Optional[str] = None,
                                ) -> ElectionOutcome:
    """Leader election under the known-outer-boundary assumption.

    Runs Algorithm DLE (faithful per-activation execution) and, when
    ``reconnect`` is true, Algorithm Collect to restore connectivity.
    ``engine`` selects the activation engine for the DLE stage (``"sweep"``
    or ``"event"``; both produce identical traces and round counts).
    ``scheduler_order=`` is a deprecated alias of ``order=``.
    """
    order, seed = canonical_run_kwargs(order, seed, scheduler_order)
    _, dle_result = _run_dle(system, outer_from_memory=False,
                             order=order, seed=seed,
                             max_rounds=max_rounds, engine=engine,
                             checkpoint=checkpoint)
    leader = verify_unique_leader(system)
    collect_result: Optional[CollectResult] = None
    collect_rounds = 0
    if reconnect:
        collect_result = _run_collect(system)
        collect_rounds = collect_result.rounds
    return ElectionOutcome(
        total_rounds=dle_result.rounds + collect_rounds,
        dle_rounds=dle_result.rounds,
        collect_rounds=collect_rounds,
        leader_point=leader.head,
        connected_after=system.is_connected(),
        reconnected=bool(collect_result and collect_result.connected),
        dle_result=dle_result,
        collect_result=collect_result,
    )


def elect_leader(system: ParticleSystem,
                 reconnect: bool = True,
                 order: str = "random",
                 seed: int = 0,
                 max_rounds: int = 1_000_000,
                 engine: str = "sweep",
                 checkpoint: Optional[CheckpointContext] = None,
                 *,
                 scheduler_order: Optional[str] = None) -> ElectionOutcome:
    """Leader election without the known-boundary assumption.

    Runs primitive OBD first (``O(L_out + D)`` rounds), feeds the detected
    boundary information to Algorithm DLE, and optionally reconnects with
    Algorithm Collect.  ``engine`` selects the activation engine for the
    scheduler-driven DLE stage.  ``scheduler_order=`` is a deprecated alias
    of ``order=``.
    """
    order, seed = canonical_run_kwargs(order, seed, scheduler_order)
    obd_result: Optional[OBDResult] = None
    obd_summary = (checkpoint.completed_stage("obd")
                   if checkpoint is not None else None)
    if obd_summary is not None:
        # A resumed run: the particles' detected-boundary flags live in the
        # restored memories, only the stage's round charge is replayed.
        obd_rounds = int(obd_summary["rounds"])
    else:
        obd = OuterBoundaryDetection(system)
        obd_result = obd.run()
        obd_rounds = obd_result.rounds
        if checkpoint is not None:
            checkpoint.complete_stage("obd", {"rounds": obd_rounds})
    _, dle_result = _run_dle(system, outer_from_memory=True,
                             order=order, seed=seed,
                             max_rounds=max_rounds, engine=engine,
                             checkpoint=checkpoint)
    leader = verify_unique_leader(system)
    collect_result: Optional[CollectResult] = None
    collect_rounds = 0
    if reconnect:
        collect_result = _run_collect(system)
        collect_rounds = collect_result.rounds
    return ElectionOutcome(
        total_rounds=obd_rounds + dle_result.rounds + collect_rounds,
        dle_rounds=dle_result.rounds,
        obd_rounds=obd_rounds,
        collect_rounds=collect_rounds,
        leader_point=leader.head,
        connected_after=system.is_connected(),
        reconnected=bool(collect_result and collect_result.connected),
        dle_result=dle_result,
        obd_result=obd_result,
        collect_result=collect_result,
    )
