"""Algorithm DLE — Disconnecting Leader Election (Section 4.1 of the paper).

This is a faithful, per-activation implementation of the paper's pseudocode
(page 11).  Every particle keeps

* ``outer[0..5]`` — the read-only input stating, for each head port, whether
  the neighbouring point lies on the outer face of the *initial* shape
  (the "boundary known initially" assumption; it is discharged by the OBD
  primitive in :mod:`repro.core.obd`), and
* ``eligible[0..5]`` — whether the point behind each head port is still in
  the eligible set ``S_e``.

The eligible set starts as the area of the initial shape (occupied points
plus hole points) and only shrinks.  An activated, contracted, undecided
particle occupying a strictly-convex-and-erodable (SCE) point of ``S_e``
removes its point from ``S_e`` and, when the removal uncovers an empty
eligible point, expands into it (moving "inwards"); otherwise it becomes a
follower.  The last particle whose point remains eligible becomes the unique
leader.  The particle system may disconnect during the execution — that is
the algorithm's distinguishing feature — and can be reconnected afterwards
by :class:`repro.core.collect.CollectAlgorithm`.

Instrumentation: the algorithm object mirrors ``S_e`` in
:attr:`DLEAlgorithm.eligible_points` (never read by particle code) so tests
can check the invariants of Lemma 11 and Lemma 19 and experiments can report
the erosion progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..amoebot.algorithm import (
    STATUS_FOLLOWER,
    STATUS_KEY,
    STATUS_LEADER,
    STATUS_UNDECIDED,
    AmoebotAlgorithm,
    StatusMixin,
)
from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem
from ..grid.coords import NUM_DIRECTIONS, Point, neighbor
from ..grid.shape import Shape

__all__ = ["DLEAlgorithm", "LeaderElectionError", "verify_unique_leader"]

OUTER_KEY = "outer"
ELIGIBLE_KEY = "eligible"
TERMINATED_KEY = "terminated"
#: Memory key under which the OBD primitive stores the per-port outer-face
#: information it detected; DLE reads it when ``outer_from_memory=True``.
OUTER_INPUT_MEMORY_KEY = "obd_outer"


class LeaderElectionError(RuntimeError):
    """Raised when a leader-election postcondition is violated."""


def verify_unique_leader(system: ParticleSystem) -> Particle:
    """Check the (disconnecting) leader-election predicate and return the
    unique leader.

    Raises :class:`LeaderElectionError` if there is not exactly one leader or
    if some particle is neither leader nor follower.
    """
    leaders = [p for p in system.particles()
               if p.get(STATUS_KEY) == STATUS_LEADER]
    followers = [p for p in system.particles()
                 if p.get(STATUS_KEY) == STATUS_FOLLOWER]
    if len(leaders) != 1:
        raise LeaderElectionError(
            f"expected exactly one leader, found {len(leaders)}"
        )
    if len(leaders) + len(followers) != len(system):
        undecided = len(system) - len(leaders) - len(followers)
        raise LeaderElectionError(
            f"{undecided} particles are neither leader nor follower"
        )
    return leaders[0]


class DLEAlgorithm(AmoebotAlgorithm, StatusMixin):
    """The paper's Algorithm DLE, executed per atomic activation."""

    name = "dle"

    def __init__(self, outer_from_memory: bool = False,
                 strict_checks: bool = True) -> None:
        """``outer_from_memory`` makes setup read the ``outer`` input arrays
        from particle memory (key ``obd_outer``) instead of computing them
        from the initial shape; this is how the OBD primitive discharges the
        known-boundary assumption.  ``strict_checks`` enables internal
        assertions (Claim 10) that are cheap and recommended."""
        self.outer_from_memory = outer_from_memory
        self.strict_checks = strict_checks
        #: Instrumentation mirror of the eligible set ``S_e``.
        self.eligible_points: Set[Point] = set()
        #: The last eligible point (the leader's point ``l``), once known.
        self.leader_point: Optional[Point] = None
        #: Number of points removed from ``S_e`` so far.
        self.erosions = 0

    # -- setup ----------------------------------------------------------------

    def setup(self, system: ParticleSystem) -> None:
        initial_shape = system.shape()
        if not initial_shape.is_connected():
            raise ValueError("DLE requires a connected initial configuration")
        if not system.all_contracted():
            raise ValueError("DLE requires a contracted initial configuration")
        self.eligible_points = set(initial_shape.area_points)
        self.leader_point = None
        self.erosions = 0
        for particle in system.particles():
            outer = self._outer_input(particle, initial_shape)
            particle[OUTER_KEY] = list(outer)
            particle[STATUS_KEY] = STATUS_UNDECIDED
            particle[TERMINATED_KEY] = False
            # Initialization (line 6): eligible iff the neighbour is not on
            # the outer face, i.e. it is occupied or a hole point.
            particle[ELIGIBLE_KEY] = [not flag for flag in outer]

    def _outer_input(self, particle: Particle, shape: Shape) -> List[bool]:
        if self.outer_from_memory:
            stored = particle.get(OUTER_INPUT_MEMORY_KEY)
            if stored is None or len(stored) != NUM_DIRECTIONS:
                raise ValueError(
                    "outer_from_memory=True but particle has no "
                    f"{OUTER_INPUT_MEMORY_KEY!r} array of length 6"
                )
            return [bool(flag) for flag in stored]
        outer = []
        for port in range(NUM_DIRECTIONS):
            point = particle.head_neighbor(port)
            outer.append(shape.point_in_outer_face(point))
        return outer

    # -- termination ------------------------------------------------------------

    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        return bool(particle.get(TERMINATED_KEY, False))

    # -- activation ---------------------------------------------------------------

    def activate(self, particle: Particle, system: ParticleSystem) -> None:
        # Line 9: an expanded particle contracts into its head.
        if particle.is_expanded:
            system.contract_to_head(particle)
            return

        status = particle[STATUS_KEY]
        neighbors_particles = system.neighbors_of(particle)

        # Lines 10-11: a decided particle surrounded by decided particles
        # terminates (vacuously true when it has no neighbours).
        if status != STATUS_UNDECIDED:
            if all(q[STATUS_KEY] != STATUS_UNDECIDED
                   for q in neighbors_particles):
                particle[TERMINATED_KEY] = True
            return

        # Lines 12-28: the particle is contracted, undecided, at point v.
        point = particle.head
        eligible = particle[ELIGIBLE_KEY]

        # eligible[] is indexed by *port*; translate to global directions once
        # so the geometric tests below are direction based.
        eligible_dirs = [d for d in range(NUM_DIRECTIONS)
                         if eligible[particle.direction_to_port(d)]]

        # Lines 14-15: no eligible neighbour left -> become the leader.
        if not eligible_dirs:
            particle[STATUS_KEY] = STATUS_LEADER
            self.leader_point = point
            return

        # Line 16: otherwise the point must be SCE w.r.t. S_e to act.
        if not self._is_sce(eligible_dirs):
            return

        # Lines 17-19: remove v from S_e and fix the neighbours' flags.
        self._mark_ineligible(point, particle, system)

        # Lines 20-26: keep the outer boundary of S_e occupied by expanding
        # into the unique empty eligible neighbour, if one exists.
        empty_eligible = [
            d for d in eligible_dirs
            if not system.is_occupied(neighbor(point, d))
        ]
        if self.strict_checks and len(empty_eligible) > 1:
            raise LeaderElectionError(
                "Claim 10 violated: SCE point has more than one empty "
                f"eligible neighbour at {point}"
            )
        if empty_eligible:
            direction = empty_eligible[0]
            target = neighbor(point, direction)
            # Line 23: the port of the new head that points back to v.
            port_back = (particle.port_between(point, target) + 3) % NUM_DIRECTIONS
            new_eligible = [True] * NUM_DIRECTIONS
            new_eligible[port_back] = False
            particle[ELIGIBLE_KEY] = new_eligible
            system.expand(particle, target)
        else:
            # Line 28: nowhere to go -> the particle becomes a follower.
            particle[STATUS_KEY] = STATUS_FOLLOWER

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _is_sce(eligible_dirs: List[int]) -> bool:
        """SCE test from purely local information.

        The non-eligible directions must form a single contiguous cyclic arc
        (single local boundary; since ``S_e`` stays simply connected, Lemma
        11, that boundary is automatically an outer one) of size at least
        three (strict convexity: boundary count ``|B| - 2 > 0``).
        Equivalently: 1-3 eligible directions forming a contiguous arc.
        """
        k = len(eligible_dirs)
        if k == 0 or k > 3:
            return False
        eligible_set = set(eligible_dirs)
        # The eligible directions form a contiguous cyclic arc iff there is
        # exactly one index d with d eligible and (d - 1) mod 6 not eligible.
        starts = sum(
            1 for d in eligible_set
            if (d - 1) % NUM_DIRECTIONS not in eligible_set
        )
        return starts == 1

    def _mark_ineligible(self, point: Point, particle: Particle,
                         system: ParticleSystem) -> None:
        """Remove ``point`` from ``S_e`` (lines 17-19)."""
        self.eligible_points.discard(point)
        self.erosions += 1
        for q in system.neighbors_of(particle):
            head = q.head
            if head in self._adjacent_points(point):
                q_eligible = q[ELIGIBLE_KEY]
                q_eligible[q.port_between(head, point)] = False

    @staticmethod
    def _adjacent_points(point: Point) -> Set[Point]:
        return {neighbor(point, d) for d in range(NUM_DIRECTIONS)}

    # -- instrumentation --------------------------------------------------------

    def leader(self, system: ParticleSystem) -> Particle:
        """Return the unique leader, verifying the DLE predicate."""
        return verify_unique_leader(system)

    def eligible_set_size(self) -> int:
        """Current size of the instrumented eligible set ``S_e``."""
        return len(self.eligible_points)
