"""Algorithm DLE — Disconnecting Leader Election (Section 4.1 of the paper).

This is a faithful, per-activation implementation of the paper's pseudocode
(page 11).  Every particle keeps

* ``outer[0..5]`` — the read-only input stating, for each head port, whether
  the neighbouring point lies on the outer face of the *initial* shape
  (the "boundary known initially" assumption; it is discharged by the OBD
  primitive in :mod:`repro.core.obd`), and
* ``eligible[0..5]`` — whether the point behind each head port is still in
  the eligible set ``S_e``.

The eligible set starts as the area of the initial shape (occupied points
plus hole points) and only shrinks.  An activated, contracted, undecided
particle occupying a strictly-convex-and-erodable (SCE) point of ``S_e``
removes its point from ``S_e`` and, when the removal uncovers an empty
eligible point, expands into it (moving "inwards"); otherwise it becomes a
follower.  The last particle whose point remains eligible becomes the unique
leader.  The particle system may disconnect during the execution — that is
the algorithm's distinguishing feature — and can be reconnected afterwards
by :class:`repro.core.collect.CollectAlgorithm`.

Instrumentation: the algorithm object mirrors ``S_e`` in
:attr:`DLEAlgorithm.eligible_points` (never read by particle code) so tests
can check the invariants of Lemma 11 and Lemma 19 and experiments can report
the erosion progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..amoebot.algorithm import (
    QUIESCENT,
    STATUS_FOLLOWER,
    STATUS_KEY,
    STATUS_LEADER,
    STATUS_UNDECIDED,
    TERMINATED,
    AmoebotAlgorithm,
    StatusMixin,
    is_sce_flag_arc,
)
from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem
from ..grid.coords import (
    NUM_DIRECTIONS,
    Point,
    neighbor,
    neighbors_interned,
)
from ..grid.packed import pack_point, packed_neighbors
from ..grid.shape import Shape

__all__ = ["DLEAlgorithm", "LeaderElectionError", "verify_unique_leader"]

OUTER_KEY = "outer"
ELIGIBLE_KEY = "eligible"
TERMINATED_KEY = "terminated"
#: Memory key under which the OBD primitive stores the per-port outer-face
#: information it detected; DLE reads it when ``outer_from_memory=True``.
OUTER_INPUT_MEMORY_KEY = "obd_outer"


class LeaderElectionError(RuntimeError):
    """Raised when a leader-election postcondition is violated."""


def verify_unique_leader(system: ParticleSystem) -> Particle:
    """Check the (disconnecting) leader-election predicate and return the
    unique leader.

    Raises :class:`LeaderElectionError` if there is not exactly one leader or
    if some particle is neither leader nor follower.
    """
    leaders = []
    followers = 0
    for p in system._particles.values():
        status = p.memory.get(STATUS_KEY)
        if status == STATUS_LEADER:
            leaders.append(p)
        elif status == STATUS_FOLLOWER:
            followers += 1
    if len(leaders) != 1:
        raise LeaderElectionError(
            f"expected exactly one leader, found {len(leaders)}"
        )
    if len(leaders) + followers != len(system):
        undecided = len(system) - len(leaders) - followers
        raise LeaderElectionError(
            f"{undecided} particles are neither leader nor follower"
        )
    return leaders[0]


#: Per-orientation port -> ring-index tables: ``_ROTATIONS[o][port]`` is
#: ``(port + o) % 6``, precomputed so setup's per-particle loop avoids six
#: modulo operations per particle; ``_INVERSE[o][d]`` is ``(d - o) % 6``,
#: the direction -> port translation used per erosion step.
_ROTATIONS = tuple(
    tuple((port + o) % NUM_DIRECTIONS for port in range(NUM_DIRECTIONS))
    for o in range(NUM_DIRECTIONS)
)
_INVERSE = tuple(
    tuple((d - o) % NUM_DIRECTIONS for d in range(NUM_DIRECTIONS))
    for o in range(NUM_DIRECTIONS)
)


class DLEAlgorithm(AmoebotAlgorithm, StatusMixin):
    """The paper's Algorithm DLE, executed per atomic activation."""

    name = "dle"
    reports_termination = True
    reports_quiescence = True
    #: An expansion next to a parked particle changes no flags and removes
    #: no undecided neighbour, so pure occupancy gains never wake (see the
    #: base-class attribute for the full contract).  DLE performs no
    #: handovers, so the owner-switch caveat does not apply.
    occupancy_gain_wakes = False

    def __init__(self, outer_from_memory: bool = False,
                 strict_checks: bool = True) -> None:
        """``outer_from_memory`` makes setup read the ``outer`` input arrays
        from particle memory (key ``obd_outer``) instead of computing them
        from the initial shape; this is how the OBD primitive discharges the
        known-boundary assumption.  ``strict_checks`` enables internal
        assertions (Claim 10) that are cheap and recommended."""
        self.outer_from_memory = outer_from_memory
        self.strict_checks = strict_checks
        #: Instrumentation mirror of the eligible set ``S_e``.
        self.eligible_points: Set[Point] = set()
        #: The last eligible point (the leader's point ``l``), once known.
        self.leader_point: Optional[Point] = None
        #: Number of points removed from ``S_e`` so far.
        self.erosions = 0
        #: Particles whose ``terminated`` flag is set (termination is
        #: absorbing, so a counter makes ``has_terminated`` O(1)).
        self._terminated_count = 0
        self._population = 0
        #: Ids of the undecided contracted particles whose next activation
        #: provably acts (no eligible ports left, or SCE flags) — the
        #: algorithm-side mirror of the quiescence predicate, maintained at
        #: every flag-write site so :meth:`is_quiescent` is one set probe.
        self._actionable: Set[int] = set()
        #: decided pid -> lower bound on its undecided-neighbour count.
        #: Decremented when an adjacent particle decides; a decided
        #: neighbour is only woken once its count runs out, sparing the
        #: event engine one examine/re-park cycle per early decision.
        #: Never an overcount (initialised from head-adjacency or an exact
        #: scan), so a zero is at worst premature — the examination
        #: re-checks and re-parks; departures of counted neighbours are
        #: caught by the movement wake, which refreshes the count exactly
        #: (:meth:`is_quiescent`).
        self._waiting: Dict[int, int] = {}

    # -- setup ----------------------------------------------------------------

    def setup(self, system: ParticleSystem) -> None:
        initial_shape = system.shape()
        if not initial_shape.is_connected():
            raise ValueError("DLE requires a connected initial configuration")
        if not system.all_contracted():
            raise ValueError("DLE requires a contracted initial configuration")
        self.eligible_points = set(initial_shape.area_points)
        self.leader_point = None
        self.erosions = 0
        self._terminated_count = 0
        self._population = len(system)
        self._waiting = {}
        # An adjacent empty point is on the outer face iff it is neither
        # occupied nor a hole point, i.e. not in the area — a set lookup,
        # much cheaper than six point_in_outer_face calls per particle.
        area = initial_shape.area_points
        self._actionable = actionable = set()
        for particle in system.particles():
            if self.outer_from_memory:
                outer = self._outer_input(particle, initial_shape)
                eligible = [not flag for flag in outer]
                memory = particle.memory
                memory[OUTER_KEY] = outer
                memory[STATUS_KEY] = STATUS_UNDECIDED
                memory[TERMINATED_KEY] = False
                memory[ELIGIBLE_KEY] = eligible
            else:
                adjacent = neighbors_interned(particle.head)
                # Initialization (line 6): eligible iff the neighbour is in
                # the area (occupied or a hole point); computed C-side.
                eligible = list(map(
                    area.__contains__,
                    map(adjacent.__getitem__,
                        _ROTATIONS[particle.orientation])))
                # One dict display replaces four item writes; the memory
                # is fresh from construction, so nothing is clobbered.
                particle.memory = {
                    OUTER_KEY: [not flag for flag in eligible],
                    STATUS_KEY: STATUS_UNDECIDED,
                    TERMINATED_KEY: False,
                    ELIGIBLE_KEY: eligible,
                }
            if True not in eligible or is_sce_flag_arc(eligible):
                actionable.add(particle.particle_id)

    def _outer_input(self, particle: Particle, shape: Shape) -> List[bool]:
        if self.outer_from_memory:
            stored = particle.get(OUTER_INPUT_MEMORY_KEY)
            if stored is None or len(stored) != NUM_DIRECTIONS:
                raise ValueError(
                    "outer_from_memory=True but particle has no "
                    f"{OUTER_INPUT_MEMORY_KEY!r} array of length 6"
                )
            return [bool(flag) for flag in stored]
        outer = []
        for port in range(NUM_DIRECTIONS):
            point = particle.head_neighbor(port)
            outer.append(shape.point_in_outer_face(point))
        return outer

    # -- termination ------------------------------------------------------------

    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        return particle.memory.get(TERMINATED_KEY, False)

    def has_terminated(self, system: ParticleSystem) -> bool:
        # The terminated flag is set in exactly one place and never cleared,
        # so the counter kept there replaces the default O(n) scan.  Fall
        # back to the scan if this system is not the one setup() counted.
        n = len(system)
        if n != self._population:
            return super().has_terminated(system)
        return self._terminated_count >= n

    # -- quiescence (event-driven engine) ---------------------------------------

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Activating the particle is a no-op exactly when it is contracted
        and (a) decided with an undecided neighbour (lines 10-11 wait) or
        (b) undecided, with eligible neighbours left, at a non-SCE point
        (line 16 fails).  Both conditions depend only on the particle's own
        flags and its neighbours' statuses, which can only change when a
        neighbour acts — the wake condition of the event engine."""
        if particle.head != particle.tail:
            return False  # line 9 would contract it
        memory = particle.memory
        if memory[STATUS_KEY] != STATUS_UNDECIDED:
            # Lines 10-11 terminate it unless some neighbour is undecided.
            # While the cached neighbourhood is intact, the wait count is
            # *exact*: the neighbour set cannot have changed (any movement
            # nearby drops the cache entry) and every adjacent decision
            # decremented it — so a positive count answers without a scan.
            pid = particle.particle_id
            count = self._waiting.get(pid)
            if (count is not None and count > 0
                    and system.neighborhood_intact(particle)):
                return True
            undecided = 0
            for q in system.neighbors_of(particle):
                if q.memory[STATUS_KEY] == STATUS_UNDECIDED:
                    undecided += 1
            self._waiting[pid] = undecided
            return undecided > 0
        # Undecided: quiescent unless its flags are actionable (no eligible
        # ports left -> leader, or SCE -> erode).  The predicate is mirrored
        # in ``_actionable`` at every flag-write site, so this is one probe.
        return particle.particle_id not in self._actionable

    def wakes_on_movement(self, particle: Particle,
                          system: ParticleSystem) -> bool:
        """Movement-wake declaration for the event-driven engine.

        A parked *undecided* particle is quiescent because its eligibility
        flags are non-SCE, and those flags are written exclusively by
        ``_mark_ineligible`` — whose acting particle names it in the
        precise wake list — so an occupancy change alone can never end its
        quiescence.  A parked *decided* particle waits on its neighbours'
        statuses, and movement can change who its neighbours are, so it
        keeps the conservative wake."""
        return particle.memory[STATUS_KEY] != STATUS_UNDECIDED

    def initially_active_ids(self, system: ParticleSystem):
        """At setup every particle is contracted and undecided, so the
        particles whose first activation acts are exactly the actionable
        ones (flags empty or SCE) — the mirror setup just built."""
        return self._actionable

    # -- activation ---------------------------------------------------------------

    def activate(self, particle: Particle, system: ParticleSystem) -> object:
        # Returns the visibility hint of the base-class contract: ``False``
        # when the activation wrote nothing a neighbour observes (neighbours
        # only read each other's ``status``) beyond movements the system's
        # dirty-neighborhood events already report, and a precise wake list
        # when the only non-movement writes went to known neighbours.

        # Line 9: an expanded particle contracts into its head.
        if particle.head != particle.tail:
            system.contract_to_head(particle)
            # The contraction event wakes the neighbourhood; the particle
            # itself parks unless its flags are already actionable again.
            if particle.particle_id in self._actionable:
                return False
            return QUIESCENT

        memory = particle.memory
        status = memory[STATUS_KEY]

        # Lines 10-11: a decided particle surrounded by decided particles
        # terminates (vacuously true when it has no neighbours).  The scan
        # counts rather than short-circuits so it doubles as the exact
        # refresh of the wait count (see is_quiescent).
        if status != STATUS_UNDECIDED:
            undecided = 0
            for q in system.neighbors_of(particle):
                if q.memory[STATUS_KEY] == STATUS_UNDECIDED:
                    undecided += 1
            if not undecided:
                memory[TERMINATED_KEY] = True
                self._terminated_count += 1
                # Neither the flag nor the transition is neighbour-visible;
                # the sentinel also retires the particle (reports_termination).
                return TERMINATED
            self._waiting[particle.particle_id] = undecided
            return QUIESCENT  # waiting on an undecided neighbour

        # Lines 12-28: the particle is contracted, undecided, at point v.
        # The actionable mirror answers lines 14-16 in one set probe: it
        # holds exactly the undecided particles whose flags are empty
        # (-> leader) or SCE (-> erode), maintained at every write site.
        if particle.particle_id not in self._actionable:
            return QUIESCENT  # no-op activation (line 16 fails)

        point = particle.head
        eligible = memory[ELIGIBLE_KEY]

        # Lines 14-15: no eligible neighbour left -> become the leader.
        if True not in eligible:
            memory[STATUS_KEY] = STATUS_LEADER
            self.leader_point = point
            self._actionable.discard(particle.particle_id)
            # The status change is only *acted on* by decided neighbours
            # (an undecided particle's next step depends on its own
            # eligibility flags alone), so only those whose wait count
            # runs out need waking; parked particles are always
            # contracted, so head-adjacency suffices.
            return self._decided_transition_wake(
                particle.particle_id, system.head_adjacent_particles(point))

        # eligible[] is indexed by *port*; translate to global directions once
        # so the geometric steps below are direction based.
        orientation = particle.orientation
        ports = _INVERSE[orientation]
        eligible_dirs = [d for d in range(NUM_DIRECTIONS)
                         if eligible[ports[d]]]

        # Lines 17-26 share one occupancy-ring walk (the erosion hot
        # path): remove v from S_e, fix the head-adjacent neighbours'
        # eligibility flags (line 18-19), update the actionable mirror and
        # the decided wait counts at the write site, and record which
        # directions are empty for the expansion step.  ``occupancy_maps``
        # is the system's sanctioned fast path for exactly this walk.
        self.eligible_points.discard(point)
        self.erosions += 1
        occupancy_get, particles = system.occupancy_maps()
        ring = packed_neighbors(pack_point(point))
        actionable = self._actionable
        waiting = self._waiting
        written: List[Particle] = []
        decided: List[Particle] = []
        occupied_mask = 0
        for direction in range(NUM_DIRECTIONS):
            slot = ring[direction]
            pid = occupancy_get(slot)
            if pid is None:
                continue
            occupied_mask |= 1 << direction
            q = particles[pid]
            # Only head ports face v: skip a slot held by a tail.
            if q.head != q.tail and pack_point(q.head) != slot:
                continue
            qmemory = q.memory
            # The head port facing v is the opposite of ``direction``, in
            # q's own port numbering (inlined q.port_between).
            qflags = qmemory[ELIGIBLE_KEY]
            qflags[(direction + 3 - q.orientation) % NUM_DIRECTIONS] = False
            if qmemory[STATUS_KEY] == STATUS_UNDECIDED:
                # Write-site quiescence evaluation: wake the neighbour only
                # when the new flags make it act — elect itself (no
                # eligible ports left) or pass the SCE test; left non-SCE
                # it is exactly as quiescent as before.
                if True not in qflags or is_sce_flag_arc(qflags):
                    actionable.add(pid)
                    written.append(q)
                else:
                    # The write may have broken a previously SCE arc.
                    actionable.discard(pid)
            else:
                decided.append(q)

        empty_eligible = [d for d in eligible_dirs
                          if not occupied_mask >> d & 1]
        if self.strict_checks and len(empty_eligible) > 1:
            raise LeaderElectionError(
                "Claim 10 violated: SCE point has more than one empty "
                f"eligible neighbour at {point}"
            )
        if empty_eligible:
            direction = empty_eligible[0]
            target = neighbor(point, direction)
            # Line 23: the port of the new head that points back to v —
            # the opposite of ``direction``, in the particle's numbering.
            port_back = (direction + 3 - orientation) % NUM_DIRECTIONS
            new_eligible = [True] * NUM_DIRECTIONS
            new_eligible[port_back] = False
            memory[ELIGIBLE_KEY] = new_eligible
            # Five eligible ports is never SCE: the particle leaves the
            # actionable set until a neighbour's erosion writes it back in.
            actionable.discard(particle.particle_id)
            system.expand(particle, target)
            # The eligibility writes above touch exactly the particles
            # whose heads are adjacent to v, which the expansion event
            # (dirty point: the target only) does not cover — wake
            # precisely those; nothing else observed a non-movement change.
            return written
        # Line 28: nowhere to go -> the particle becomes a follower.
        memory[STATUS_KEY] = STATUS_FOLLOWER
        actionable.discard(particle.particle_id)
        # Status change plus the flag writes: the decided neighbours whose
        # wait count runs out re-examine the status (parked ones are
        # contracted, so head-adjacency covers them), and ``written``
        # already holds the undecided neighbours that became actionable.
        undecided_adjacent = len(written)
        for q in decided:
            qid = q.particle_id
            count = waiting.get(qid)
            if count is not None:
                waiting[qid] = count = count - 1
                if count > 0:
                    continue  # still provably waiting on someone else
            written.append(q)
        waiting[particle.particle_id] = undecided_adjacent
        return written

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _is_sce(eligible_dirs: List[int]) -> bool:
        """SCE test from purely local information.

        The non-eligible directions must form a single contiguous cyclic arc
        (single local boundary; since ``S_e`` stays simply connected, Lemma
        11, that boundary is automatically an outer one) of size at least
        three (strict convexity: boundary count ``|B| - 2 > 0``).
        Equivalently: 1-3 eligible directions forming a contiguous arc.
        """
        k = len(eligible_dirs)
        if k == 0 or k > 3:
            return False
        eligible_set = set(eligible_dirs)
        # The eligible directions form a contiguous cyclic arc iff there is
        # exactly one index d with d eligible and (d - 1) mod 6 not eligible.
        starts = sum(
            1 for d in eligible_set
            if (d - 1) % NUM_DIRECTIONS not in eligible_set
        )
        return starts == 1

    def _decided_transition_wake(self, pid: int,
                                 adjacent: List[Tuple[Particle, int]]
                                 ) -> List[Particle]:
        """Bookkeeping for an undecided -> decided transition.

        Initialises the decider's own wait count (a lower bound: the
        undecided particles head-adjacent to it) and decrements the wait
        counts of its decided neighbours; returns the decided neighbours
        whose count ran out — the only ones whose termination check can
        now succeed, which is exactly the wake list the event engine
        needs."""
        waiting = self._waiting
        wake: List[Particle] = []
        undecided = 0
        for q, _ in adjacent:
            if q.memory[STATUS_KEY] == STATUS_UNDECIDED:
                undecided += 1
                continue
            qid = q.particle_id
            count = waiting.get(qid)
            if count is not None:
                waiting[qid] = count = count - 1
                if count > 0:
                    continue  # still provably waiting on someone else
            wake.append(q)
        waiting[pid] = undecided
        return wake


    # -- checkpoint state protocol ----------------------------------------------

    def snapshot_state(self, system: ParticleSystem) -> Dict[str, object]:
        """Algorithm-private state (the parts outside particle memories):
        the ``S_e`` mirror, erosion counters and the actionable/wait-count
        mirrors of the quiescence predicate."""
        return {
            "eligible_points": [list(point)
                                for point in sorted(self.eligible_points)],
            "leader_point": list(self.leader_point)
            if self.leader_point is not None else None,
            "erosions": self.erosions,
            "terminated_count": self._terminated_count,
            "population": self._population,
            "actionable": sorted(self._actionable),
            "waiting": [[pid, count]
                        for pid, count in sorted(self._waiting.items())],
        }

    def restore_state(self, state: Dict[str, object],
                      system: ParticleSystem) -> None:
        self.eligible_points = {tuple(point)
                                for point in state["eligible_points"]}
        leader_point = state["leader_point"]
        self.leader_point = tuple(leader_point) \
            if leader_point is not None else None
        self.erosions = int(state["erosions"])
        self._terminated_count = int(state["terminated_count"])
        self._population = int(state["population"])
        self._actionable = {int(pid) for pid in state["actionable"]}
        # The wait counts were exact relative to the neighbor cache, which
        # restore cleared — ``is_quiescent``'s intact-check fails until the
        # first rescan refreshes them, so stale-but-positive counts cannot
        # mis-park anyone.
        self._waiting = {int(pid): int(count)
                         for pid, count in state["waiting"]}

    # -- instrumentation --------------------------------------------------------

    def leader(self, system: ParticleSystem) -> Particle:
        """Return the unique leader, verifying the DLE predicate."""
        return verify_unique_leader(system)

    def eligible_set_size(self) -> int:
        """Current size of the instrumented eligible set ``S_e``."""
        return len(self.eligible_points)
