"""Algorithm DLE — Disconnecting Leader Election (Section 4.1 of the paper).

This is a faithful, per-activation implementation of the paper's pseudocode
(page 11).  Every particle keeps

* ``outer[0..5]`` — the read-only input stating, for each head port, whether
  the neighbouring point lies on the outer face of the *initial* shape
  (the "boundary known initially" assumption; it is discharged by the OBD
  primitive in :mod:`repro.core.obd`), and
* ``eligible[0..5]`` — whether the point behind each head port is still in
  the eligible set ``S_e``.

The eligible set starts as the area of the initial shape (occupied points
plus hole points) and only shrinks.  An activated, contracted, undecided
particle occupying a strictly-convex-and-erodable (SCE) point of ``S_e``
removes its point from ``S_e`` and, when the removal uncovers an empty
eligible point, expands into it (moving "inwards"); otherwise it becomes a
follower.  The last particle whose point remains eligible becomes the unique
leader.  The particle system may disconnect during the execution — that is
the algorithm's distinguishing feature — and can be reconnected afterwards
by :class:`repro.core.collect.CollectAlgorithm`.

Instrumentation: the algorithm object mirrors ``S_e`` in
:attr:`DLEAlgorithm.eligible_points` (never read by particle code) so tests
can check the invariants of Lemma 11 and Lemma 19 and experiments can report
the erosion progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..amoebot.algorithm import (
    STATUS_FOLLOWER,
    STATUS_KEY,
    STATUS_LEADER,
    STATUS_UNDECIDED,
    AmoebotAlgorithm,
    StatusMixin,
    is_sce_flag_arc,
)
from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem
from ..grid.coords import (
    NUM_DIRECTIONS,
    Point,
    direction_between,
    neighbor,
    neighbors,
)
from ..grid.shape import Shape

__all__ = ["DLEAlgorithm", "LeaderElectionError", "verify_unique_leader"]

OUTER_KEY = "outer"
ELIGIBLE_KEY = "eligible"
TERMINATED_KEY = "terminated"
#: Memory key under which the OBD primitive stores the per-port outer-face
#: information it detected; DLE reads it when ``outer_from_memory=True``.
OUTER_INPUT_MEMORY_KEY = "obd_outer"


class LeaderElectionError(RuntimeError):
    """Raised when a leader-election postcondition is violated."""


def verify_unique_leader(system: ParticleSystem) -> Particle:
    """Check the (disconnecting) leader-election predicate and return the
    unique leader.

    Raises :class:`LeaderElectionError` if there is not exactly one leader or
    if some particle is neither leader nor follower.
    """
    leaders = [p for p in system.particles()
               if p.get(STATUS_KEY) == STATUS_LEADER]
    followers = [p for p in system.particles()
                 if p.get(STATUS_KEY) == STATUS_FOLLOWER]
    if len(leaders) != 1:
        raise LeaderElectionError(
            f"expected exactly one leader, found {len(leaders)}"
        )
    if len(leaders) + len(followers) != len(system):
        undecided = len(system) - len(leaders) - len(followers)
        raise LeaderElectionError(
            f"{undecided} particles are neither leader nor follower"
        )
    return leaders[0]


class DLEAlgorithm(AmoebotAlgorithm, StatusMixin):
    """The paper's Algorithm DLE, executed per atomic activation."""

    name = "dle"

    def __init__(self, outer_from_memory: bool = False,
                 strict_checks: bool = True) -> None:
        """``outer_from_memory`` makes setup read the ``outer`` input arrays
        from particle memory (key ``obd_outer``) instead of computing them
        from the initial shape; this is how the OBD primitive discharges the
        known-boundary assumption.  ``strict_checks`` enables internal
        assertions (Claim 10) that are cheap and recommended."""
        self.outer_from_memory = outer_from_memory
        self.strict_checks = strict_checks
        #: Instrumentation mirror of the eligible set ``S_e``.
        self.eligible_points: Set[Point] = set()
        #: The last eligible point (the leader's point ``l``), once known.
        self.leader_point: Optional[Point] = None
        #: Number of points removed from ``S_e`` so far.
        self.erosions = 0
        #: Particles whose ``terminated`` flag is set (termination is
        #: absorbing, so a counter makes ``has_terminated`` O(1)).
        self._terminated_count = 0
        self._population = 0

    # -- setup ----------------------------------------------------------------

    def setup(self, system: ParticleSystem) -> None:
        initial_shape = system.shape()
        if not initial_shape.is_connected():
            raise ValueError("DLE requires a connected initial configuration")
        if not system.all_contracted():
            raise ValueError("DLE requires a contracted initial configuration")
        self.eligible_points = set(initial_shape.area_points)
        self.leader_point = None
        self.erosions = 0
        self._terminated_count = 0
        self._population = len(system)
        # An adjacent empty point is on the outer face iff it is neither
        # occupied nor a hole point, i.e. not in the area — a set lookup,
        # much cheaper than six point_in_outer_face calls per particle.
        area = initial_shape.area_points
        for particle in system.particles():
            if self.outer_from_memory:
                outer = self._outer_input(particle, initial_shape)
            else:
                adjacent = neighbors(particle.head)
                orientation = particle.orientation
                outer = [adjacent[(port + orientation) % NUM_DIRECTIONS] not in area
                         for port in range(NUM_DIRECTIONS)]
            particle[OUTER_KEY] = list(outer)
            particle[STATUS_KEY] = STATUS_UNDECIDED
            particle[TERMINATED_KEY] = False
            # Initialization (line 6): eligible iff the neighbour is not on
            # the outer face, i.e. it is occupied or a hole point.
            particle[ELIGIBLE_KEY] = [not flag for flag in outer]

    def _outer_input(self, particle: Particle, shape: Shape) -> List[bool]:
        if self.outer_from_memory:
            stored = particle.get(OUTER_INPUT_MEMORY_KEY)
            if stored is None or len(stored) != NUM_DIRECTIONS:
                raise ValueError(
                    "outer_from_memory=True but particle has no "
                    f"{OUTER_INPUT_MEMORY_KEY!r} array of length 6"
                )
            return [bool(flag) for flag in stored]
        outer = []
        for port in range(NUM_DIRECTIONS):
            point = particle.head_neighbor(port)
            outer.append(shape.point_in_outer_face(point))
        return outer

    # -- termination ------------------------------------------------------------

    def is_terminated(self, particle: Particle, system: ParticleSystem) -> bool:
        return bool(particle.get(TERMINATED_KEY, False))

    def has_terminated(self, system: ParticleSystem) -> bool:
        # The terminated flag is set in exactly one place and never cleared,
        # so the counter kept there replaces the default O(n) scan.  Fall
        # back to the scan if this system is not the one setup() counted.
        n = len(system)
        if n != self._population:
            return super().has_terminated(system)
        return self._terminated_count >= n

    # -- quiescence (event-driven engine) ---------------------------------------

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Activating the particle is a no-op exactly when it is contracted
        and (a) decided with an undecided neighbour (lines 10-11 wait) or
        (b) undecided, with eligible neighbours left, at a non-SCE point
        (line 16 fails).  Both conditions depend only on the particle's own
        flags and its neighbours' statuses, which can only change when a
        neighbour acts — the wake condition of the event engine."""
        if particle.head != particle.tail:
            return False  # line 9 would contract it
        memory = particle.memory
        if memory[STATUS_KEY] != STATUS_UNDECIDED:
            # Lines 10-11 terminate it unless some neighbour is undecided.
            for q in system.neighbors_of(particle):
                if q.memory[STATUS_KEY] == STATUS_UNDECIDED:
                    return True
            return False
        flags = memory[ELIGIBLE_KEY]
        if True not in flags:
            return False  # lines 14-15 would elect it leader
        # The SCE test (contiguous cyclic arc of 1-3 eligible neighbours) is
        # rotation invariant, so it can run directly on the port-indexed
        # flags without translating ports to global directions.
        return not is_sce_flag_arc(flags)

    # -- activation ---------------------------------------------------------------

    def activate(self, particle: Particle, system: ParticleSystem) -> object:
        # Returns the visibility hint of the base-class contract: ``False``
        # when the activation wrote nothing a neighbour observes (neighbours
        # only read each other's ``status``) beyond movements the system's
        # dirty-neighborhood events already report.

        # Line 9: an expanded particle contracts into its head.
        if particle.is_expanded:
            system.contract_to_head(particle)
            return False  # the contraction event wakes the neighbourhood

        status = particle[STATUS_KEY]

        # Lines 10-11: a decided particle surrounded by decided particles
        # terminates (vacuously true when it has no neighbours).
        if status != STATUS_UNDECIDED:
            if all(q[STATUS_KEY] != STATUS_UNDECIDED
                   for q in system.neighbors_of(particle)):
                particle[TERMINATED_KEY] = True
                self._terminated_count += 1
            return False  # the terminated flag is not neighbour-visible

        # Lines 12-28: the particle is contracted, undecided, at point v.
        point = particle.head
        eligible = particle[ELIGIBLE_KEY]

        # eligible[] is indexed by *port*; translate to global directions once
        # so the geometric tests below are direction based.
        orientation = particle.orientation
        eligible_dirs = [d for d in range(NUM_DIRECTIONS)
                         if eligible[(d - orientation) % NUM_DIRECTIONS]]

        # Lines 14-15: no eligible neighbour left -> become the leader.
        if not eligible_dirs:
            particle[STATUS_KEY] = STATUS_LEADER
            self.leader_point = point
            return True  # status change: neighbours must re-examine

        # Line 16: otherwise the point must be SCE w.r.t. S_e to act.
        if not self._is_sce(eligible_dirs):
            return False  # no-op activation

        # Lines 17-19: remove v from S_e and fix the neighbours' flags.
        self._mark_ineligible(point, particle, system)

        # Lines 20-26: keep the outer boundary of S_e occupied by expanding
        # into the unique empty eligible neighbour, if one exists.
        empty_eligible = [
            d for d in eligible_dirs
            if not system.is_occupied(neighbor(point, d))
        ]
        if self.strict_checks and len(empty_eligible) > 1:
            raise LeaderElectionError(
                "Claim 10 violated: SCE point has more than one empty "
                f"eligible neighbour at {point}"
            )
        if empty_eligible:
            direction = empty_eligible[0]
            target = neighbor(point, direction)
            # Line 23: the port of the new head that points back to v.
            port_back = (particle.port_between(point, target) + 3) % NUM_DIRECTIONS
            new_eligible = [True] * NUM_DIRECTIONS
            new_eligible[port_back] = False
            particle[ELIGIBLE_KEY] = new_eligible
            system.expand(particle, target)
            # The eligibility writes of _mark_ineligible touch particles
            # adjacent to v, which the expansion event (dirty point: the
            # target only) does not cover — request the neighbour wake.
            return True
        # Line 28: nowhere to go -> the particle becomes a follower.
        particle[STATUS_KEY] = STATUS_FOLLOWER
        return True  # status change: neighbours must re-examine

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _is_sce(eligible_dirs: List[int]) -> bool:
        """SCE test from purely local information.

        The non-eligible directions must form a single contiguous cyclic arc
        (single local boundary; since ``S_e`` stays simply connected, Lemma
        11, that boundary is automatically an outer one) of size at least
        three (strict convexity: boundary count ``|B| - 2 > 0``).
        Equivalently: 1-3 eligible directions forming a contiguous arc.
        """
        k = len(eligible_dirs)
        if k == 0 or k > 3:
            return False
        eligible_set = set(eligible_dirs)
        # The eligible directions form a contiguous cyclic arc iff there is
        # exactly one index d with d eligible and (d - 1) mod 6 not eligible.
        starts = sum(
            1 for d in eligible_set
            if (d - 1) % NUM_DIRECTIONS not in eligible_set
        )
        return starts == 1

    def _mark_ineligible(self, point: Point, particle: Particle,
                         system: ParticleSystem) -> None:
        """Remove ``point`` from ``S_e`` (lines 17-19)."""
        self.eligible_points.discard(point)
        self.erosions += 1
        adjacent = self._adjacent_points(point)
        for q in system.neighbors_of(particle):
            head = q.head
            if head in adjacent:
                # Inlined q.port_between(head, point): q occupies ``head``
                # by construction, so the validation can be skipped.
                port = (direction_between(head, point)
                        - q.orientation) % NUM_DIRECTIONS
                q[ELIGIBLE_KEY][port] = False

    @staticmethod
    def _adjacent_points(point: Point) -> Set[Point]:
        return set(neighbors(point))

    # -- instrumentation --------------------------------------------------------

    def leader(self, system: ParticleSystem) -> Particle:
        """Return the unique leader, verifying the DLE predicate."""
        return verify_unique_leader(system)

    def eligible_set_size(self) -> int:
        """Current size of the instrumented eligible set ``S_e``."""
        return len(self.eligible_points)
