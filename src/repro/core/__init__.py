"""The paper's contribution: DLE, Collect, OBD and their composition."""

from .collect import CollectPhase, CollectResult, CollectSimulator
from .dle import DLEAlgorithm, LeaderElectionError, verify_unique_leader
from .full import ElectionOutcome, elect_leader, elect_leader_known_boundary
from .obd import (
    BoundaryCompetition,
    BoundaryCompetitionResult,
    OBDResult,
    OuterBoundaryDetection,
    Segment,
)

__all__ = [
    "BoundaryCompetition",
    "BoundaryCompetitionResult",
    "CollectPhase",
    "CollectResult",
    "CollectSimulator",
    "DLEAlgorithm",
    "ElectionOutcome",
    "LeaderElectionError",
    "OBDResult",
    "OuterBoundaryDetection",
    "Segment",
    "elect_leader",
    "elect_leader_known_boundary",
    "verify_unique_leader",
]
