"""Primitive OBD — outer-boundary detection (Section 5 of the paper).

The primitive removes Algorithm DLE's assumption that particles initially
know which of their ports face the outer boundary.  No particle moves: the
particles on each global boundary simulate a *virtual ring* of v-nodes (one
v-node per local boundary of each boundary point, Section 2.1).  On each
ring the v-nodes run a segment-competition election, after which the
segments sum the boundary counts of the whole ring; by Observation 4 the sum
is ``+6`` exactly for the outer boundary and ``-6`` for every hole boundary.
The outer boundary then announces termination by flooding the particle
graph, which takes at most ``D`` additional rounds, for ``O(L_out + D)``
rounds overall (Theorem 41).

Fidelity note (see DESIGN.md §4).  The v-node rings, boundary counts,
segment labels, the (size, label) comparison order, the stable-boundary
criterion of Theorem 36 and the final flooding are implemented exactly.  The
pipelined token trains of the lexicographic-comparison primitive (LCP) are
*not* reproduced message-by-message; instead the competition is simulated in
synchronous generations (all surviving segments compare with their
successors concurrently), which determines the final stable segments and
the outer/inner decision.  Because that synchronous schedule serialises
merges the paper's asynchronous pipelining performs concurrently, the
*round charge* of the competition is not taken from the generation count;
it uses the paper's own stabilisation bound (Lemma 35: a boundary of length
``L`` becomes stable within ``(2 k_c + 5) L`` rounds with ``k_c = 10``) plus
the stable-boundary check of Section 5.4.  The reported round count
therefore keeps the ``O(L_out + D)`` shape of Theorem 41 with explicit,
documented constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..amoebot.particle import Particle
from ..amoebot.system import ParticleSystem
from ..grid.coords import NUM_DIRECTIONS, Point, neighbor
from ..grid.metrics import bfs_distances
from ..grid.shape import Shape, VirtualRing, VNode

__all__ = [
    "Segment",
    "BoundaryCompetitionResult",
    "BoundaryCompetition",
    "OBDResult",
    "OuterBoundaryDetection",
    "STABILIZATION_ROUNDS_PER_VNODE",
    "STABILITY_CHECK_ROUNDS_PER_VNODE",
    "OBD_OUTER_MEMORY_KEY",
]

#: Memory key under which OBD stores the detected per-port outer-face flags;
#: matches :data:`repro.core.dle.OUTER_INPUT_MEMORY_KEY`.
OBD_OUTER_MEMORY_KEY = "obd_outer"

#: Rounds charged per v-node of a boundary ring for the whole segment
#: competition to stabilise.  Lemma 35 proves stabilisation within
#: ``(2 k_c + 5) L`` rounds for a boundary of ``L`` v-nodes, with ``k_c = 10``
#: the constant of the lexicographic-comparison primitive (Lemma 31).
STABILIZATION_ROUNDS_PER_VNODE = 25
#: Rounds charged per v-node of a final segment for the stable-boundary check
#: and the segment-sum verification (Section 5.4); the check compares the
#: segment with up to six neighbouring segments of the same size.
STABILITY_CHECK_ROUNDS_PER_VNODE = 6


@dataclass
class Segment:
    """A contiguous run of v-nodes on a virtual ring.

    ``start`` is the index of the segment's tail v-node on the ring and
    ``counts`` the boundary counts of its v-nodes in clockwise order (the
    segment's *label*)."""

    start: int
    counts: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return sum(self.counts)

    def comparison_key(self) -> Tuple[int, Tuple[int, ...]]:
        """The paper's order: shorter segments are smaller; ties are broken
        lexicographically on the label."""
        return (self.size, self.counts)


@dataclass
class BoundaryCompetitionResult:
    """Outcome of the segment competition on one virtual ring."""

    rounds: int
    generations: int
    final_segments: List[Segment]
    ring_length: int
    total_count: int

    @property
    def is_outer(self) -> bool:
        """The decision rule of Observation 4: outer iff the counts sum to 6."""
        return self.total_count == 6

    @property
    def num_final_segments(self) -> int:
        return len(self.final_segments)


class BoundaryCompetition:
    """Segment competition on one virtual ring (Sections 5.2-5.4)."""

    def __init__(self, counts: Sequence[int]):
        if not counts:
            raise ValueError("a virtual ring has at least one v-node")
        self.counts: Tuple[int, ...] = tuple(int(c) for c in counts)

    def run(self) -> BoundaryCompetitionResult:
        ring_length = len(self.counts)
        segments: List[Segment] = [
            Segment(start=i, counts=(c,)) for i, c in enumerate(self.counts)
        ]
        generations = 0
        while True:
            if len(segments) == 1:
                break
            keys = [s.comparison_key() for s in segments]
            m = len(segments)
            killed = [keys[(i - 1) % m] < keys[i] for i in range(m)]
            if not any(killed):
                break
            generations += 1
            survivors_idx = [i for i in range(m) if not killed[i]]
            new_segments: List[Segment] = []
            for pos, i in enumerate(survivors_idx):
                next_survivor = survivors_idx[(pos + 1) % len(survivors_idx)]
                merged_counts: List[int] = list(segments[i].counts)
                j = (i + 1) % m
                # Absorb the (possibly empty) run of killed segments between
                # this survivor and the next one.  With a single survivor the
                # walk wraps all the way around and absorbs everything else.
                while j != next_survivor:
                    merged_counts.extend(segments[j].counts)
                    j = (j + 1) % m
                new_segments.append(
                    Segment(start=segments[i].start, counts=tuple(merged_counts))
                )
            segments = new_segments
        # Round charge (see the module docstring): stabilisation within
        # (2 k_c + 5) L rounds (Lemma 35) plus the stable-boundary check and
        # segment-sum verification over a final segment (Section 5.4).
        final_size = max(s.size for s in segments)
        rounds = (STABILIZATION_ROUNDS_PER_VNODE * ring_length
                  + STABILITY_CHECK_ROUNDS_PER_VNODE * final_size)
        total = sum(s.total for s in segments)
        return BoundaryCompetitionResult(
            rounds=rounds,
            generations=generations,
            final_segments=segments,
            ring_length=ring_length,
            total_count=total,
        )


@dataclass
class OBDResult:
    """Outcome of running the outer-boundary-detection primitive."""

    rounds: int
    competition_rounds: int
    announcement_rounds: int
    flood_rounds: int
    outer_ring_length: int
    num_boundaries: int
    #: Per-boundary competition results (outer boundary first).
    boundary_results: List[BoundaryCompetitionResult] = field(default_factory=list)
    #: Points of the shape lying on the detected outer boundary.
    outer_boundary_points: Set[Point] = field(default_factory=set)


class OuterBoundaryDetection:
    """Runs primitive OBD on a particle system and writes the detected
    per-port outer-face flags into each particle's memory
    (key :data:`OBD_OUTER_MEMORY_KEY`), in the format Algorithm DLE expects
    as its ``outer`` input."""

    name = "obd"

    def __init__(self, system: ParticleSystem):
        if not system.all_contracted():
            raise ValueError("OBD expects a contracted initial configuration")
        self.system = system

    def is_quiescent(self, particle: Particle, system: ParticleSystem) -> bool:
        """Explicit quiescence declaration for the event-driven engine.

        OBD is a synchronous primitive whose rounds are charged analytically
        (see the module docstring): no particle ever performs scheduler-driven
        work, so every particle is vacuously quiescent for the primitive's
        whole duration.  Pipelines that interleave OBD with scheduler-driven
        stages can therefore keep the whole system parked while it runs.
        """
        return True

    # -- main entry point ------------------------------------------------------

    def run(self) -> OBDResult:
        system = self.system
        shape = system.shape()
        if not shape.is_connected():
            raise ValueError("OBD requires a connected configuration")

        if len(shape) == 1:
            return self._run_single_particle()

        rings = shape.virtual_rings()
        boundary_results: List[BoundaryCompetitionResult] = []
        outer_result: Optional[BoundaryCompetitionResult] = None
        outer_ring: Optional[VirtualRing] = None
        for ring in rings:
            competition = BoundaryCompetition([v.count for v in ring.vnodes])
            result = competition.run()
            boundary_results.append(result)
            if result.is_outer:
                if outer_result is not None:
                    raise RuntimeError("OBD detected two outer boundaries")
                outer_result = result
                outer_ring = ring
        if outer_result is None or outer_ring is None:
            raise RuntimeError("OBD failed to detect an outer boundary")

        # Sanity: the Observation 4 decision must agree with the geometric
        # ground truth computed by the Shape substrate.
        if not outer_ring.is_outer:
            raise RuntimeError(
                "Observation 4 decision disagrees with the geometric outer "
                "boundary; this indicates a v-node construction bug"
            )

        outer_points = set(outer_ring.points)
        outer_vnodes: Set[VNode] = set(outer_ring.vnodes)

        # Write each particle's detected outer[] array: a port facing an
        # empty point is flagged outer iff that port's edge belongs to a
        # local boundary whose v-node lies on the outer ring.
        for particle in system.particles():
            flags = [False] * NUM_DIRECTIONS
            point = particle.head
            for vnode in shape.vnodes_of(point):
                if vnode not in outer_vnodes:
                    continue
                for direction in vnode.boundary:
                    flags[particle.direction_to_port(direction)] = True
            particle[OBD_OUTER_MEMORY_KEY] = flags

        # Termination announcement: one outer token travels around the outer
        # boundary (O(L_out) rounds), then the result is flooded through the
        # particle graph (at most D + 1 rounds).
        announcement_rounds = len(outer_ring)
        flood_rounds = self._flood_rounds(outer_points)

        competition_rounds = outer_result.rounds
        total_rounds = competition_rounds + announcement_rounds + flood_rounds
        return OBDResult(
            rounds=total_rounds,
            competition_rounds=competition_rounds,
            announcement_rounds=announcement_rounds,
            flood_rounds=flood_rounds,
            outer_ring_length=len(outer_ring),
            num_boundaries=len(rings),
            boundary_results=boundary_results,
            outer_boundary_points=outer_points,
        )

    # -- helpers ---------------------------------------------------------------

    def _run_single_particle(self) -> OBDResult:
        """A lone particle sees six empty neighbours, all on the outer face."""
        particle = self.system.particles()[0]
        particle[OBD_OUTER_MEMORY_KEY] = [True] * NUM_DIRECTIONS
        return OBDResult(
            rounds=1,
            competition_rounds=0,
            announcement_rounds=0,
            flood_rounds=1,
            outer_ring_length=0,
            num_boundaries=0,
            boundary_results=[],
            outer_boundary_points={particle.head},
        )

    def _flood_rounds(self, sources: Set[Point]) -> int:
        """Rounds needed to flood the termination announcement from the outer
        boundary to every particle (one hop of the particle graph per round)."""
        occupied = self.system.occupied_points()
        best: Dict[Point, int] = {}
        for source in sorted(sources):
            distances = bfs_distances(source, occupied)
            for point, dist in distances.items():
                if point not in best or dist < best[point]:
                    best[point] = dist
        missing = [p for p in occupied if p not in best]
        if missing:
            raise RuntimeError(
                "flooding could not reach every particle; the configuration "
                "is disconnected"
            )
        return max(best.values()) + 1
