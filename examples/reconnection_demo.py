#!/usr/bin/env python3
"""Watch the system disconnect during DLE and reconnect with Collect.

The distinguishing feature of the paper's algorithm is that the particle
system is *allowed to disconnect*: particles bordering holes march inwards,
away from their former neighbours, and the shape can fall apart into several
components.  Lemma 19 guarantees the fragments are left behind like
"breadcrumbs" — one particle at every grid distance from the eventual leader
— which Algorithm Collect then uses to stitch the system back together in
``O(D_G)`` rounds.

This example renders the configuration before DLE, right after DLE (possibly
disconnected) and after Collect (connected again), and prints the breadcrumb
distances so the Lemma 19 structure is visible.

Run with::

    python examples/reconnection_demo.py
"""

from collections import Counter

from repro.api import (
    CollectSimulator,
    DLEAlgorithm,
    ParticleSystem,
    compute_metrics,
    connected_components,
    grid_distance,
    random_holey_blob,
    render_system,
    run_algorithm,
    verify_unique_leader,
)


def component_count(system: ParticleSystem) -> int:
    return len(connected_components(system.occupied_points()))


def main() -> None:
    shape = random_holey_blob(120, hole_fraction=0.25, seed=4)
    metrics = compute_metrics(shape)
    print(f"Initial shape: n={metrics.n}, D={metrics.diameter}, "
          f"D_A={metrics.area_diameter}, holes={metrics.num_holes}")

    system = ParticleSystem.from_shape(shape, orientation_seed=4)
    print("\n--- before DLE (connected):")
    print(render_system(system, show_status=False))

    algorithm = DLEAlgorithm()
    dle_result = run_algorithm(algorithm, system, order="random", seed=4)
    leader = verify_unique_leader(system)
    print(f"\n--- after DLE ({dle_result.rounds} rounds): "
          f"{component_count(system)} connected component(s)")
    print(render_system(system))

    # Lemma 19: one contracted particle at every grid distance up to the
    # leader's eccentricity.
    distances = Counter(
        grid_distance(leader.head, p.head) for p in system.particles()
    )
    eps = max(distances)
    print("\nBreadcrumb histogram (grid distance from leader -> particles):")
    print("  " + ", ".join(f"{d}:{distances[d]}" for d in range(eps + 1)))
    missing = [d for d in range(eps + 1) if distances[d] == 0]
    print("  every distance covered:", not missing)

    collect_result = CollectSimulator(system, leader).run()
    print(f"\n--- after Collect ({collect_result.rounds} charged rounds, "
          f"{collect_result.num_phases} phases): "
          f"{component_count(system)} connected component(s)")
    print(render_system(system))
    print("\nPhases (stem size -> newly collected):")
    for phase in collect_result.phases:
        print(f"  phase {phase.index}: stem {phase.stem_size:>3} -> "
              f"collected {phase.newly_collected:>3}, "
              f"stem after {phase.stem_size_after:>3}")


if __name__ == "__main__":
    main()
