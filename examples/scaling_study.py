#!/usr/bin/env python3
"""Scaling study: verify the paper's asymptotic claims empirically.

The paper's three theorems are asymptotic statements:

* Theorem 18: Algorithm DLE terminates in ``O(D_A)`` rounds,
* Theorem 23: Algorithm Collect terminates in ``O(D_G)`` rounds,
* Theorem 41: primitive OBD terminates in ``O(L_out + D)`` rounds.

This example measures each component on a ladder of growing shapes, prints
the raw series and fits both a linear and a power-law model; the fitted
exponent close to 1 (and the stable rounds-per-parameter ratio) is the
empirical signature of linear scaling.

Each ladder runs through :mod:`repro.orchestrator` — the same sweep engine
behind ``python -m repro sweep`` — so the runs can be spread over worker
processes (``REPRO_JOBS=4``) and reuse cached results (``REPRO_CACHE_DIR``).

Run with::

    python examples/scaling_study.py                 # default ladder
    python examples/scaling_study.py 2 4 6 8         # custom ladder
    REPRO_JOBS=4 python examples/scaling_study.py    # 4 worker processes
"""

import os
import sys

from repro.api import format_scaling_series, run_sweep, scaling_spec

JOBS = int(os.environ.get("REPRO_JOBS", "1"))
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def measure(algorithm, family, sizes):
    spec = scaling_spec(algorithm, family, sizes, seed=0)
    result = run_sweep(spec, jobs=JOBS, cache=CACHE_DIR)
    return result.raise_failures().records


def study(title, algorithm, family, sizes, parameter):
    records = measure(algorithm, family, sizes)
    print(format_scaling_series(records, parameter, title=title))
    print()
    return records


def combined_parameter_series(records, title):
    """OBD's bound is in L_out + D, which is not a single stored metric, so
    print that series explicitly."""
    print(title)
    for record in records:
        row = record.as_row()
        combined = row["L_out"] + row["D"]
        print(f"  size {row['size']:>2}: L_out + D = {combined:>4}, "
              f"rounds = {row['rounds']:>5}, "
              f"ratio = {row['rounds'] / combined:.2f}")
    print()


def main() -> None:
    sizes = tuple(int(arg) for arg in sys.argv[1:]) or (2, 3, 4, 6, 8)

    print("=" * 72)
    print("Theorem 18 — DLE rounds vs the area diameter D_A")
    print("=" * 72)
    study("DLE on hexagons", "dle", "hexagon", sizes, "D_A")
    study("DLE on hexagons with holes", "dle", "holey", sizes, "D_A")
    study("DLE on thin annuli (D_A << D)", "dle", "annulus", sizes, "D_A")

    print("=" * 72)
    print("Theorem 23 — Collect rounds vs the grid diameter D_G")
    print("=" * 72)
    study("Collect after DLE on hexagons", "collect", "hexagon", sizes, "D_G")

    print("=" * 72)
    print("Theorem 41 — OBD rounds vs L_out + D")
    print("=" * 72)
    obd_records = measure("obd", "spiral", sizes)
    combined_parameter_series(obd_records, "OBD on spirals (long boundary)")
    obd_blob = measure("obd", "holey", sizes)
    combined_parameter_series(obd_blob, "OBD on hexagons with holes")


if __name__ == "__main__":
    main()
