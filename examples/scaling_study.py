#!/usr/bin/env python3
"""Scaling study: verify the paper's asymptotic claims empirically.

The paper's three theorems are asymptotic statements:

* Theorem 18: Algorithm DLE terminates in ``O(D_A)`` rounds,
* Theorem 23: Algorithm Collect terminates in ``O(D_G)`` rounds,
* Theorem 41: primitive OBD terminates in ``O(L_out + D)`` rounds.

This example measures each component on a ladder of growing shapes, prints
the raw series and fits both a linear and a power-law model; the fitted
exponent close to 1 (and the stable rounds-per-parameter ratio) is the
empirical signature of linear scaling.

Run with::

    python examples/scaling_study.py                 # default ladder
    python examples/scaling_study.py 2 4 6 8         # custom ladder
"""

import sys

from repro import format_scaling_series, run_scaling_experiment
from repro.analysis.experiments import ExperimentRecord


def study(title, algorithm, family, sizes, parameter):
    records = run_scaling_experiment(algorithm, family, sizes, seed=0)
    print(format_scaling_series(records, parameter, title=title))
    print()
    return records


def combined_parameter_series(records, title):
    """OBD's bound is in L_out + D, which is not a single stored metric, so
    print that series explicitly."""
    print(title)
    for record in records:
        row = record.as_row()
        combined = row["L_out"] + row["D"]
        print(f"  size {row['size']:>2}: L_out + D = {combined:>4}, "
              f"rounds = {row['rounds']:>5}, "
              f"ratio = {row['rounds'] / combined:.2f}")
    print()


def main() -> None:
    sizes = tuple(int(arg) for arg in sys.argv[1:]) or (2, 3, 4, 6, 8)

    print("=" * 72)
    print("Theorem 18 — DLE rounds vs the area diameter D_A")
    print("=" * 72)
    study("DLE on hexagons", "dle", "hexagon", sizes, "D_A")
    study("DLE on hexagons with holes", "dle", "holey", sizes, "D_A")
    study("DLE on thin annuli (D_A << D)", "dle", "annulus", sizes, "D_A")

    print("=" * 72)
    print("Theorem 23 — Collect rounds vs the grid diameter D_G")
    print("=" * 72)
    study("Collect after DLE on hexagons", "collect", "hexagon", sizes, "D_G")

    print("=" * 72)
    print("Theorem 41 — OBD rounds vs L_out + D")
    print("=" * 72)
    obd_records = run_scaling_experiment("obd", "spiral", sizes, seed=0)
    combined_parameter_series(obd_records, "OBD on spirals (long boundary)")
    obd_blob = run_scaling_experiment("obd", "holey", sizes, seed=0)
    combined_parameter_series(obd_blob, "OBD on hexagons with holes")


if __name__ == "__main__":
    main()
