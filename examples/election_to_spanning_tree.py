#!/usr/bin/env python3
"""Using the elected leader: build a spanning tree of the particle system.

The paper's introduction motivates leader election as the module other
programmable-matter algorithms (coating, shape formation, bridging) build
on.  This example shows the composition end to end:

1. primitive OBD detects the outer boundary,
2. Algorithm DLE elects the unique leader (system may disconnect),
3. Algorithm Collect reconnects the system around the leader,
4. a leader-rooted spanning tree is grown in ``O(D)`` additional rounds —
   the structure that convergecast, counting and shape-formation algorithms
   use next.

Run with::

    python examples/election_to_spanning_tree.py
"""

from collections import Counter

from repro.api import (
    ParticleSystem,
    SpanningTreeAlgorithm,
    elect_leader,
    random_holey_blob,
    run_algorithm,
    verify_spanning_tree,
)


def main() -> None:
    shape = random_holey_blob(110, hole_fraction=0.2, seed=7)
    system = ParticleSystem.from_shape(shape, orientation_seed=7)

    outcome = elect_leader(system, reconnect=True, seed=7)
    print("election rounds per stage:", outcome.stage_rounds())
    print("leader at:", outcome.leader_point)

    tree_result = run_algorithm(SpanningTreeAlgorithm(), system,
                                order="random", seed=7)
    parents = verify_spanning_tree(system)
    print(f"\nspanning tree built in {tree_result.rounds} additional rounds")

    # Tree statistics: children histogram and depth of the deepest particle.
    children = Counter(parent for parent in parents.values() if parent is not None)
    def depth(pid):
        d = 0
        while parents[pid] is not None:
            pid = parents[pid]
            d += 1
        return d

    depths = [depth(pid) for pid in parents]
    print(f"particles: {len(parents)}")
    print(f"tree depth: {max(depths)}")
    print(f"max fan-out: {max(children.values())}")
    print(f"leaves: {sum(1 for pid in parents if pid not in children)}")


if __name__ == "__main__":
    main()
