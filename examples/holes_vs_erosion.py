#!/usr/bin/env python3
"""Why movement (and temporary disconnection) matters: holes.

The paper's motivation (Section 1, Table 1): previous *deterministic*
leader-election algorithms either assumed the initial shape has no holes
(erosion-only algorithms, [22]/[27]) or paid a quadratic-in-``n`` round cost.
Algorithm DLE handles holes in ``O(D_A)`` rounds by letting particles move
inwards and temporarily disconnect.

This example runs the erosion-only baseline and Algorithm DLE side by side
on:

* a solid hexagon (no holes)          — both succeed,
* a thin annulus (one big hole)       — erosion stalls, DLE succeeds, and
  DLE's round count tracks ``D_A`` (cutting across the hole), which is much
  smaller than the shape diameter ``D`` (walking around it).

Run with::

    python examples/holes_vs_erosion.py
"""

from repro.api import (
    DLEAlgorithm,
    ParticleSystem,
    annulus,
    compute_metrics,
    hexagon,
    run_algorithm,
    run_erosion_election,
    verify_unique_leader,
)


def run_dle(shape, seed=0):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    algorithm = DLEAlgorithm()
    result = run_algorithm(algorithm, system, order="random", seed=seed)
    verify_unique_leader(system)
    return result.rounds


def describe(name, shape):
    metrics = compute_metrics(shape)
    print(f"\n=== {name}  (n={metrics.n}, D={metrics.diameter}, "
          f"D_A={metrics.area_diameter}, holes={metrics.num_holes})")

    erosion_system = ParticleSystem.from_shape(shape, orientation_seed=0)
    erosion = run_erosion_election(erosion_system, seed=0)
    if erosion.succeeded:
        print(f"  erosion baseline : unique leader in {erosion.rounds} rounds")
    else:
        status = "stalled" if erosion.stalled else "failed"
        print(f"  erosion baseline : {status} after {erosion.rounds} rounds "
              f"({erosion.num_leaders} leaders) — cannot handle holes")

    dle_rounds = run_dle(shape, seed=0)
    print(f"  Algorithm DLE    : unique leader in {dle_rounds} rounds "
          f"(bound O(D_A) = O({metrics.area_diameter}))")


def main() -> None:
    describe("solid hexagon, radius 6", hexagon(6))
    describe("thin annulus, radii 9..11", annulus(11, 8))
    describe("thin annulus, radii 13..15", annulus(15, 12))

    print(
        "\nNote how on the annuli the erosion baseline cannot elect a leader"
        "\nat all, while DLE terminates in a number of rounds that tracks the"
        "\nsmall area diameter D_A rather than the large shape diameter D."
    )


if __name__ == "__main__":
    main()
