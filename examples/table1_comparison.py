#!/usr/bin/env python3
"""Reproduce the paper's Table 1 comparison empirically.

Table 1 of the paper compares leader-election algorithms for the amoebot
model by their round complexity and their assumptions.  This example runs
the algorithm classes implemented in this repository on a common suite of
shapes and prints the measured rounds next to the bound each paper row
claims:

* randomized boundary election (Derakhshandeh et al. [19] / Daymude et al.
  [10, 11]) — ``O(L_max)`` expected / ``O(L_out + D)`` w.h.p.,
* erosion-only deterministic election (Di Luna et al. [22] / Gastineau et
  al. [27]) — ``O(n)``, requires hole-free shapes,
* this paper's Algorithm DLE with the known-boundary assumption — ``O(D_A)``,
* this paper's full pipeline (OBD + DLE + Collect) — ``O(L_out + D)``.

The whole grid runs through :mod:`repro.orchestrator` — the engine behind
``python -m repro sweep`` — so it parallelises (``REPRO_JOBS=4``) and can
reuse cached results (``REPRO_CACHE_DIR``).

Run with::

    python examples/table1_comparison.py            # default sizes
    python examples/table1_comparison.py 2 3 4 5    # custom size ladder
    REPRO_JOBS=4 python examples/table1_comparison.py
"""

import os
import sys

from repro.api import format_table1, run_sweep, table1_spec


def main() -> None:
    sizes = tuple(int(arg) for arg in sys.argv[1:]) or (2, 3, 4)
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    print(f"Running the Table 1 suite on sizes {sizes} "
          "(families: hexagon, blob, holey)...\n")
    result = run_sweep(table1_spec(sizes=sizes, seed=0), jobs=jobs,
                       cache=cache_dir)
    records = result.raise_failures().records
    print(format_table1(records))
    print(
        "\nReading guide: 'ok = no' rows for the erosion baseline on the"
        "\n'holey' family reproduce its documented no-holes restriction;"
        "\nDLE's rounds track D_A, and the full pipeline's rounds track"
        "\nL_out + D, matching the paper's two contributed rows."
    )


if __name__ == "__main__":
    main()
