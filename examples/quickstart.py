#!/usr/bin/env python3
"""Quickstart: elect a leader on a particle system with holes.

This is the smallest end-to-end use of the library:

1. build a shape (here: a hexagon with holes punched into it),
2. place one contracted particle on every point,
3. run the full pipeline of the paper — outer-boundary detection (OBD),
   disconnecting leader election (DLE) and reconnection (Collect),
4. inspect the outcome: the unique leader, the per-stage round counts and
   the final (re-connected) configuration.

Run with::

    python examples/quickstart.py
"""

from repro.api import (
    ParticleSystem,
    compute_metrics,
    elect_leader,
    hexagon_with_holes,
    render_system,
    verify_unique_leader,
)


def main() -> None:
    # A hexagon of radius 7 with small holes punched out: 148 particles.
    shape = hexagon_with_holes(radius=7)
    metrics = compute_metrics(shape)
    print("Initial shape parameters:")
    for key, value in metrics.as_dict().items():
        print(f"  {key:>6} = {value}")

    # One contracted particle per point; orientations differ per particle but
    # all share clockwise chirality (the paper's assumption).
    system = ParticleSystem.from_shape(shape, orientation_seed=1)

    # Full pipeline: OBD -> DLE -> Collect.
    outcome = elect_leader(system, reconnect=True, seed=1)

    leader = verify_unique_leader(system)
    print("\nLeader elected at grid point:", leader.head)
    print("Rounds per stage:")
    for stage, rounds in outcome.stage_rounds().items():
        print(f"  {stage:>8}: {rounds}")
    print("\nPaper's bounds for comparison:")
    print(f"  OBD     = O(L_out + D) = O({metrics.l_out} + {metrics.diameter})")
    print(f"  DLE     = O(D_A)       = O({metrics.area_diameter})")
    print(f"  Collect = O(D_G)       = O({metrics.grid_diam})")
    print("\nSystem connected after reconnection:", outcome.connected_after)

    print("\nFinal configuration (L = leader, . = follower):")
    print(render_system(system))


if __name__ == "__main__":
    main()
