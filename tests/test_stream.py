"""Tests for the streaming ledger analytics layer.

The bounded-memory test at the bottom is the module's defining contract:
aggregating a ~100k-line ledger must peak at essentially the same memory
as aggregating a ~1k-line one, because every statistic is single-pass
with state proportional to the number of *groups*.
"""

import json
import statistics
import tracemalloc

import pytest

from repro.analysis.stream import (
    DEFAULT_GROUP_BY,
    LedgerAggregator,
    StreamStat,
    aggregate_entries,
    aggregate_ledger,
    compare_cohorts,
    compare_ledgers,
    entry_field,
    follow_entries,
    sort_key,
)
from repro.orchestrator import RunConfig
from repro.orchestrator.store import LEDGER_KIND, LedgerReader, RunLedger

METRICS = {"n": 7, "n_A": 7, "D": 2, "D_A": 2, "D_G": 2,
           "L_out": 6, "L_max": 6, "holes": 0}


def make_record(config, rounds, succeeded=True, terminated=None):
    details = {"terminated": succeeded if terminated is None else terminated}
    return {
        "algorithm": config.algorithm,
        "family": config.family,
        "size": config.size,
        "seed": config.seed,
        "rounds": rounds,
        "succeeded": succeeded,
        "metrics": METRICS,
        "details": details,
    }


def append_run(ledger, config, rounds, status="done", succeeded=True,
               terminated=None, elapsed=0.25):
    record = (make_record(config, rounds, succeeded, terminated)
              if status == "done" else None)
    ledger.append(f"{config.algorithm}-{config.family}-"
                  f"{config.size}-{config.seed}-{config.faults}",
                  config, status, record_dict=record,
                  error=None if status == "done" else "boom",
                  elapsed=elapsed)


def seed_ledger(path):
    """A small two-algorithm, two-size ledger with one failure."""
    ledger = RunLedger(path)
    for seed in range(3):
        append_run(ledger, RunConfig("dle", "hexagon", 2, seed), 40 + seed)
        append_run(ledger, RunConfig("dle", "hexagon", 3, seed), 90 + seed)
        append_run(ledger, RunConfig("erosion", "hexagon", 2, seed),
                   60 + seed)
    append_run(ledger, RunConfig("dle", "hexagon", 2, 99), 0, status="failed")
    return ledger


# ---------------------------------------------------------------------------
# LedgerReader: streaming, torn tails, offset resume
# ---------------------------------------------------------------------------

class TestLedgerReader:
    def test_streams_entries_in_order(self, tmp_path):
        ledger = seed_ledger(tmp_path / "runs.jsonl")
        entries = list(ledger.iter_entries())
        assert len(entries) == 10
        assert all(entry["kind"] == LEDGER_KIND for entry in entries)
        assert entries[0]["config"]["size"] == 2

    def test_torn_tail_left_unread_then_resumed(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        append_run(ledger, RunConfig("dle", "hexagon", 2, 0), 40)
        whole = (json.dumps({"kind": LEDGER_KIND, "digest": "x",
                             "status": "done", "elapsed": 0.1,
                             "config": {"algorithm": "dle"}}) + "\n")
        torn_at = len(whole) // 2
        with open(path, "ab") as handle:
            handle.write(whole[:torn_at].encode())
        reader = ledger.iter_entries()
        assert len(list(reader)) == 1  # the torn line is not consumed
        resume_offset = reader.offset
        with open(path, "ab") as handle:
            handle.write(whole[torn_at:].encode())
        # Re-iterating the SAME reader resumes at the stored offset and
        # now sees the healed line whole.
        healed = list(reader)
        assert [entry["digest"] for entry in healed] == ["x"]
        assert reader.offset == resume_offset + len(whole)

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(LedgerReader(tmp_path / "absent.jsonl")) == []

    def test_foreign_kind_and_garbage_advance_offset(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "other-tool"}) + "\n")
            handle.write("not json at all\n")
            handle.write("\n")
        ledger = RunLedger(path)
        append_run(ledger, RunConfig("dle", "hexagon", 2, 0), 40)
        reader = ledger.iter_entries()
        entries = list(reader)
        assert len(entries) == 1
        assert reader.offset == path.stat().st_size

    def test_reading_methods_route_through_streaming_reader(self, tmp_path):
        ledger = seed_ledger(tmp_path / "runs.jsonl")
        assert len(ledger) == 10
        assert len(ledger.completed()) == 9
        assert set(ledger.failures()) == {"dle-hexagon-2-99-"}
        records = ledger.records()
        assert len(records) == 9
        assert {record.algorithm for record in records} == {"dle", "erosion"}


# ---------------------------------------------------------------------------
# StreamStat: Welford + histogram percentiles
# ---------------------------------------------------------------------------

class TestStreamStat:
    def test_matches_exact_mean_and_stdev(self):
        values = [3.0, 1.5, 4.25, 9.0, 2.0, 7.75, 0.5]
        stat = StreamStat(buckets=(1.0, 2.0, 5.0, 10.0))
        for value in values:
            stat.add(value)
        assert stat.count == len(values)
        assert stat.mean == pytest.approx(statistics.mean(values))
        assert stat.std == pytest.approx(statistics.stdev(values))
        assert stat.min == 0.5 and stat.max == 9.0

    def test_quantiles_bounded_by_observations(self):
        stat = StreamStat(buckets=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0):
            stat.add(value)
        for q in (0.0, 0.5, 1.0):
            assert 5.0 <= stat.quantile(q) <= 500.0

    def test_summary_is_json_ready(self):
        stat = StreamStat()
        stat.add(1.0)
        summary = stat.summary()
        assert summary["count"] == 1
        assert {"mean", "std", "min", "max", "p50", "p90", "p99"} \
            <= set(summary)
        json.dumps(summary)  # must serialise


# ---------------------------------------------------------------------------
# LedgerAggregator: grouping, outcomes, determinism
# ---------------------------------------------------------------------------

class TestLedgerAggregator:
    def test_groups_and_outcomes(self, tmp_path):
        seed_ledger(tmp_path / "runs.jsonl")
        agg = aggregate_ledger(tmp_path / "runs.jsonl")
        assert agg.entries == 10
        assert agg.group_by == DEFAULT_GROUP_BY
        keys = [cell.key for cell in agg.cells()]
        assert keys == [("dle", "hexagon", 2), ("dle", "hexagon", 3),
                        ("erosion", "hexagon", 2)]
        cell = agg.cell(("dle", "hexagon", 2))
        assert cell.runs == 4 and cell.done == 3 and cell.failed == 1
        assert cell.succeeded == 3 and cell.violations == 0
        rounds = cell.stat("rounds")
        assert rounds.count == 3 and rounds.mean == pytest.approx(41.0)
        total = agg.total
        assert total.runs == 10 and total.failed == 1

    def test_violation_counts_terminated_but_wrong(self):
        config = RunConfig("dle", "hexagon", 2, 0)
        entry = {"kind": LEDGER_KIND, "status": "done",
                 "config": config.to_dict(),
                 "record": make_record(config, 10, succeeded=False,
                                       terminated=True)}
        agg = aggregate_entries([entry])
        assert agg.total.terminated == 1
        assert agg.total.succeeded == 0
        assert agg.total.violations == 1

    def test_fault_plans_collected(self):
        faulty = RunConfig("dle", "hexagon", 2, 0,
                           faults="crash:rate=0.1;seed=1")
        clean = RunConfig("dle", "hexagon", 2, 0)
        entries = [
            {"kind": LEDGER_KIND, "status": "done",
             "config": config.to_dict(),
             "record": make_record(config, 10)}
            for config in (clean, faulty)]
        agg = aggregate_entries(entries)
        assert agg.fault_plans == {"crash:rate=0.1;seed=1"}

    def test_custom_group_by_and_numeric_sort(self):
        entries = []
        for size in (10, 2, 100):
            config = RunConfig("dle", "hexagon", size, 0)
            entries.append({"kind": LEDGER_KIND, "status": "done",
                            "config": config.to_dict(),
                            "record": make_record(config, size)})
        agg = aggregate_entries(entries, group_by=("size",))
        assert [cell.key for cell in agg.cells()] == [(2,), (10,), (100,)]

    def test_sort_key_orders_numbers_before_strings(self):
        keys = [("b",), (10,), ("a",), (2,)]
        assert sorted(keys, key=sort_key) == [(2,), (10,), ("a",), ("b",)]

    def test_as_dict_round_trips_through_json(self, tmp_path):
        seed_ledger(tmp_path / "runs.jsonl")
        agg = aggregate_ledger(tmp_path / "runs.jsonl")
        doc = json.loads(json.dumps(agg.as_dict()))
        assert doc["kind"] == "ledger-aggregate"
        assert doc["entries"] == 10
        assert len(doc["groups"]) == 3
        assert doc["groups"][0]["fields"]["rounds"]["count"] == 3

    def test_entry_field_resolution_order(self):
        config = RunConfig("dle", "hexagon", 2, 0)
        entry = {"kind": LEDGER_KIND, "status": "done", "elapsed": 1.5,
                 "config": config.to_dict(),
                 "record": make_record(config, 10)}
        assert entry_field(entry, "algorithm") == "dle"  # config wins
        assert entry_field(entry, "status") == "done"  # then the entry
        assert entry_field(entry, "rounds") == 10  # then the record
        assert entry_field(entry, "n") == 7  # then its shape metrics
        assert entry_field(entry, "terminated") is True  # then details
        assert entry_field(entry, "faults") == ""  # omitted key reads ""
        assert entry_field(entry, "nope") is None


# ---------------------------------------------------------------------------
# follow_entries: the live tail
# ---------------------------------------------------------------------------

class TestFollowEntries:
    def test_delivers_appends_then_stops_after_final_drain(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        append_run(ledger, RunConfig("dle", "hexagon", 2, 0), 40)
        state = {"polls": 0}

        def sleep(_interval):
            state["polls"] += 1
            # New data lands while the follower sleeps; stop after it.
            append_run(ledger, RunConfig("dle", "hexagon", 2, state["polls"]),
                       40 + state["polls"])

        def stop():
            return state["polls"] >= 2

        seeds = [entry["config"]["seed"]
                 for entry in follow_entries(path, poll=0.01, stop=stop,
                                             sleep=sleep)]
        # The entry appended during the final sleep is still delivered:
        # stop() is only honoured after a full drain.
        assert seeds == [0, 1, 2]

    def test_torn_tail_healed_across_polls(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        whole = (json.dumps({"kind": LEDGER_KIND, "digest": "t",
                             "status": "done",
                             "config": {"algorithm": "dle"}}) + "\n")
        with open(path, "w") as handle:
            handle.write(whole[:10])
        state = {"healed": False}

        def sleep(_interval):
            if not state["healed"]:
                state["healed"] = True
                with open(path, "a") as handle:
                    handle.write(whole[10:])

        digests = [entry["digest"]
                   for entry in follow_entries(path, poll=0.01,
                                               stop=lambda: state["healed"],
                                               sleep=sleep)]
        assert digests == ["t"]

    def test_idle_timeout_ends_the_follow(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunLedger(path)  # never written
        naps = []
        entries = list(follow_entries(path, poll=0.5, idle_timeout=1.0,
                                      sleep=naps.append))
        assert entries == []
        assert naps == [0.5, 0.5]  # two idle polls, then give up


# ---------------------------------------------------------------------------
# Cohort comparison
# ---------------------------------------------------------------------------

class TestCompareCohorts:
    def _agg(self, rounds_by_size):
        entries = []
        for size, rounds_list in rounds_by_size.items():
            for seed, rounds in enumerate(rounds_list):
                config = RunConfig("dle", "hexagon", size, seed)
                entries.append({"kind": LEDGER_KIND, "status": "done",
                                "config": config.to_dict(),
                                "record": make_record(config, rounds)})
        return aggregate_entries(entries)

    def test_identical_cohorts_are_insignificant(self):
        base = self._agg({2: [40, 42], 3: [90, 92]})
        deltas = compare_cohorts(base, self._agg({2: [40, 42],
                                                  3: [90, 92]}))
        assert [delta.ratio for delta in deltas] == [1.0, 1.0]
        assert all(delta.significant is False for delta in deltas)
        assert all(delta.delta == 0.0 for delta in deltas)

    def test_inflation_beyond_noise_margin_is_significant(self):
        base = self._agg({2: [100, 100]})
        worse = self._agg({2: [130, 130]})  # +30% > the 25% margin
        slower = compare_cohorts(base, worse, noise=0.25)
        assert slower[0].ratio == pytest.approx(1.3)
        assert slower[0].significant is True
        within = compare_cohorts(base, self._agg({2: [110, 110]}),
                                 noise=0.25)
        assert within[0].significant is False
        # The band is symmetric in ratio: 1/1.3 is just as significant.
        faster = compare_cohorts(worse, base, noise=0.25)
        assert faster[0].significant is True

    def test_missing_cells_reported_not_dropped(self):
        base = self._agg({2: [40]})
        other = self._agg({3: [90]})
        deltas = compare_cohorts(base, other)
        assert len(deltas) == 2
        grown = next(d for d in deltas if d.key == ("dle", "hexagon", 3))
        assert grown.base_mean is None and grown.other_mean == 90.0
        assert grown.ratio is None and grown.significant is None
        assert grown.base_runs == 0 and grown.other_runs == 1

    def test_mismatched_grouping_raises(self):
        base = LedgerAggregator(group_by=("algorithm",))
        other = LedgerAggregator(group_by=("size",))
        with pytest.raises(ValueError, match="group differently"):
            compare_cohorts(base, other)

    def test_compare_ledgers_end_to_end(self, tmp_path):
        seed_ledger(tmp_path / "base.jsonl")
        seed_ledger(tmp_path / "other.jsonl")
        deltas = compare_ledgers(tmp_path / "base.jsonl",
                                 tmp_path / "other.jsonl")
        assert len(deltas) == 3
        assert all(delta.significant is False for delta in deltas)
        for delta in deltas:
            json.dumps(delta.as_dict(DEFAULT_GROUP_BY))


# ---------------------------------------------------------------------------
# Bounded memory: the whole point of the module
# ---------------------------------------------------------------------------

def _write_synthetic_ledger(path, lines):
    """Write ``lines`` ledger entries quickly (bypassing per-append fsync)."""
    config = RunConfig("dle", "hexagon", 2, 0)
    with open(path, "w") as handle:
        for index in range(lines):
            entry = {
                "kind": LEDGER_KIND,
                "digest": f"d{index}",
                "config": dict(config.to_dict(), seed=index),
                "status": "done",
                "elapsed": 0.001 * (index % 97),
                "record": make_record(config, 40 + index % 13),
            }
            handle.write(json.dumps(entry) + "\n")


def _peak_aggregating(path):
    tracemalloc.start()
    try:
        agg = aggregate_ledger(path)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return agg, peak


@pytest.mark.slow
def test_aggregation_memory_is_independent_of_ledger_size(tmp_path):
    small_path = tmp_path / "small.jsonl"
    big_path = tmp_path / "big.jsonl"
    _write_synthetic_ledger(small_path, 1_000)
    _write_synthetic_ledger(big_path, 100_000)
    small_agg, small_peak = _peak_aggregating(small_path)
    big_agg, big_peak = _peak_aggregating(big_path)
    assert small_agg.entries == 1_000 and big_agg.entries == 100_000
    assert len(big_agg) == 1  # everything lands in one group
    # 100x the lines must NOT cost 100x the memory: the peak is one
    # in-flight entry plus O(groups) state, so allow only a constant
    # slack over the small run, far below any per-line growth.
    assert big_peak < small_peak + 256 * 1024
