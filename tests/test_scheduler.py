"""Tests for the strong scheduler: rounds, fairness, activation orders."""

import pytest

from repro.amoebot.algorithm import AmoebotAlgorithm
from repro.amoebot.scheduler import Scheduler, run_algorithm
from repro.amoebot.system import ParticleSystem
from repro.grid.generators import hexagon, line_shape


class CountdownAlgorithm(AmoebotAlgorithm):
    """Each particle decrements a counter once per activation and terminates
    at zero.  With all counters equal to ``k`` the run takes exactly ``k``
    rounds regardless of the activation order, which pins down the round
    accounting of the scheduler."""

    name = "countdown"

    def __init__(self, start: int):
        self.start = start
        self.activation_log = []

    def setup(self, system):
        for particle in system.particles():
            particle["count"] = self.start

    def activate(self, particle, system):
        self.activation_log.append(particle.particle_id)
        if particle["count"] > 0:
            particle["count"] -= 1

    def is_terminated(self, particle, system):
        return particle["count"] == 0


class NeverTerminates(AmoebotAlgorithm):
    name = "never"

    def setup(self, system):
        pass

    def activate(self, particle, system):
        pass

    def is_terminated(self, particle, system):
        return False


class TestRounds:
    @pytest.mark.parametrize("order", ["round_robin", "random", "reversed"])
    def test_round_count_independent_of_order(self, order):
        system = ParticleSystem.from_shape(hexagon(1))
        result = run_algorithm(CountdownAlgorithm(4), system, order=order, seed=1)
        assert result.terminated
        assert result.rounds == 4

    def test_activations_count(self):
        system = ParticleSystem.from_shape(hexagon(1))
        result = run_algorithm(CountdownAlgorithm(3), system)
        # Every particle is activated exactly once per round while not final.
        assert result.activations == 3 * len(system)

    def test_zero_rounds_when_already_terminated(self):
        system = ParticleSystem.from_shape(line_shape(3))
        result = run_algorithm(CountdownAlgorithm(0), system)
        assert result.rounds == 0
        assert result.activations == 0
        assert result.terminated

    def test_max_rounds_reached_reports_not_terminated(self):
        system = ParticleSystem.from_shape(line_shape(3))
        result = run_algorithm(NeverTerminates(), system, max_rounds=7)
        assert not result.terminated
        assert result.rounds == 7

    def test_moves_counter_starts_at_zero(self):
        system = ParticleSystem.from_shape(line_shape(3))
        result = run_algorithm(CountdownAlgorithm(2), system)
        assert result.moves == 0


class TestOrders:
    def test_round_robin_activates_in_id_order(self):
        system = ParticleSystem.from_shape(line_shape(4))
        algorithm = CountdownAlgorithm(1)
        run_algorithm(algorithm, system, order="round_robin")
        assert algorithm.activation_log == system.particle_ids()

    def test_reversed_order(self):
        system = ParticleSystem.from_shape(line_shape(4))
        algorithm = CountdownAlgorithm(1)
        run_algorithm(algorithm, system, order="reversed")
        assert algorithm.activation_log == list(reversed(system.particle_ids()))

    def test_random_order_is_seed_deterministic(self):
        logs = []
        for _ in range(2):
            system = ParticleSystem.from_shape(line_shape(6))
            algorithm = CountdownAlgorithm(2)
            run_algorithm(algorithm, system, order="random", seed=42)
            logs.append(algorithm.activation_log)
        assert logs[0] == logs[1]

    def test_random_order_differs_across_seeds(self):
        logs = []
        for seed in (1, 2):
            system = ParticleSystem.from_shape(line_shape(8))
            algorithm = CountdownAlgorithm(2)
            run_algorithm(algorithm, system, order="random", seed=seed)
            logs.append(algorithm.activation_log)
        assert logs[0] != logs[1]

    def test_custom_order_policy(self):
        def rotate(round_index, ids, rng):
            shift = round_index % len(ids)
            return ids[shift:] + ids[:shift]

        system = ParticleSystem.from_shape(line_shape(5))
        result = run_algorithm(CountdownAlgorithm(3), system, order=rotate)
        assert result.terminated
        assert result.rounds == 3

    def test_invalid_order_name(self):
        with pytest.raises(ValueError):
            Scheduler(order="chaotic")

    def test_order_policy_must_cover_all_particles(self):
        def broken(round_index, ids, rng):
            return ids[:-1]

        system = ParticleSystem.from_shape(line_shape(4))
        with pytest.raises(ValueError):
            run_algorithm(CountdownAlgorithm(1), system, order=broken)

    def test_round_hook_called_each_round(self):
        system = ParticleSystem.from_shape(line_shape(3))
        seen = []
        Scheduler(order="round_robin").run(
            CountdownAlgorithm(3), system,
            round_hook=lambda r, s: seen.append(r),
        )
        assert seen == [1, 2, 3]


class TestUniformKeyStream:
    """The bulk key stream must be float-identical to the stdlib draws —
    this is what makes traces independent of whether numpy is installed."""

    def test_matches_stdlib_stream(self):
        import random as _random

        from repro.amoebot.scheduler import _UniformKeyStream

        for seed in (0, 1, 7, 12345):
            reference = _random.Random(seed)
            expected = [reference.random() for _ in range(700)]
            stream = _UniformKeyStream(_random.Random(seed))
            got = list(stream.draw(250)) + list(stream.draw(450))
            assert got == expected

    def test_raw_draw_matches_converted_draw(self):
        import random as _random

        from repro.amoebot.scheduler import _UniformKeyStream

        a = _UniformKeyStream(_random.Random(3))
        b = _UniformKeyStream(_random.Random(3))
        assert list(a.draw(100)) == [float(x) for x in b.draw_raw(100)]
