"""Tests for the ASCII rendering helpers."""

from repro.amoebot.algorithm import STATUS_FOLLOWER, STATUS_KEY, STATUS_LEADER
from repro.amoebot.system import ParticleSystem
from repro.grid.generators import annulus, hexagon, line_shape
from repro.grid.shape import Shape
from repro.viz.ascii_art import render_points, render_shape, render_system


class TestRenderPoints:
    def test_empty_mapping(self):
        assert render_points({}) == "(empty)"

    def test_single_point(self):
        assert render_points({(0, 0): "X"}).strip() == "X"

    def test_rows_are_offset(self):
        text = render_points({(0, 0): "A", (0, 1): "B"})
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].startswith(" ")

    def test_all_glyphs_present(self):
        cells = {(0, 0): "A", (1, 0): "B", (0, 1): "C"}
        text = render_points(cells)
        for glyph in "ABC":
            assert glyph in text


class TestRenderShape:
    def test_occupied_glyphs_count(self):
        shape = hexagon(1)
        text = render_shape(shape)
        assert text.count("o") == len(shape)

    def test_holes_marked(self):
        shape = annulus(3, 1)
        text = render_shape(shape, show_holes=True)
        assert text.count("*") == len(shape.hole_points)

    def test_holes_hidden_when_disabled(self):
        shape = annulus(3, 1)
        assert "*" not in render_shape(shape, show_holes=False)

    def test_custom_glyphs(self):
        shape = line_shape(3)
        text = render_shape(shape, glyphs={"occupied": "#"})
        assert text.count("#") == 3


class TestRenderSystem:
    def test_statuses_rendered(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0), (2, 0)]))
        particles = system.particles()
        particles[0][STATUS_KEY] = STATUS_LEADER
        particles[1][STATUS_KEY] = STATUS_FOLLOWER
        text = render_system(system)
        assert "L" in text
        assert "." in text
        assert "o" in text

    def test_statuses_ignored_when_disabled(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        system.particles()[0][STATUS_KEY] = STATUS_LEADER
        text = render_system(system, show_status=False)
        assert "L" not in text

    def test_expanded_particle_glyphs(self):
        system = ParticleSystem.from_shape(Shape([(0, 0)]))
        particle = system.particles()[0]
        system.expand(particle, (1, 0))
        text = render_system(system)
        assert "O" in text
        assert "~" in text
