"""Tests for Algorithm Collect: reconnection, phase doubling, round bounds."""

import pytest

from repro.amoebot.scheduler import Scheduler
from repro.amoebot.system import ParticleSystem
from repro.core.collect import (
    CollectSimulator,
    OMP_ROUNDS_PER_UNIT,
    PRP_ROUNDS_PER_UNIT,
    ROTATIONS_PER_PHASE,
    SDP_ROUNDS_PER_UNIT,
)
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.grid.coords import grid_distance
from repro.grid.generators import (
    annulus,
    hexagon,
    hexagon_with_holes,
    line_shape,
    random_blob,
    random_holey_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics, grid_eccentricity
from repro.grid.shape import Shape

PER_PHASE_UNIT = (OMP_ROUNDS_PER_UNIT
                  + ROTATIONS_PER_PHASE * PRP_ROUNDS_PER_UNIT
                  + SDP_ROUNDS_PER_UNIT)

SHAPES = {
    "hexagon3": hexagon(3),
    "hexagon5": hexagon(5),
    "line12": line_shape(12),
    "annulus": annulus(6, 3),
    "holey_hexagon": hexagon_with_holes(7),
    "blob": random_blob(80, seed=2),
    "holey_blob": random_holey_blob(90, seed=4),
    "spiral": spiral(4, 3),
    "pair": Shape([(0, 0), (1, 0)]),
    "single": Shape([(0, 0)]),
}


def run_dle_then_collect(shape, seed=0):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    algorithm = DLEAlgorithm()
    Scheduler(order="random", seed=seed).run(algorithm, system)
    leader = verify_unique_leader(system)
    simulator = CollectSimulator(system, leader)
    result = simulator.run()
    return system, leader, result


class TestReconnection:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_system_connected_after_collect(self, name):
        system, _, result = run_dle_then_collect(SHAPES[name], seed=1)
        assert result.connected
        assert system.is_connected()

    @pytest.mark.parametrize("seed", range(4))
    def test_reconnects_disconnected_dle_output(self, seed):
        # The holey blob is the shape family where DLE actually leaves the
        # system disconnected; Collect must repair it.
        shape = SHAPES["holey_blob"]
        system = ParticleSystem.from_shape(shape, orientation_seed=seed)
        algorithm = DLEAlgorithm()
        Scheduler(order="random", seed=seed).run(algorithm, system)
        leader = verify_unique_leader(system)
        was_connected = system.is_connected()
        result = CollectSimulator(system, leader).run()
        assert result.connected
        assert system.is_connected()
        if not was_connected:
            assert result.num_phases >= 1

    def test_particle_count_preserved(self):
        shape = SHAPES["annulus"]
        system, _, _ = run_dle_then_collect(shape, seed=3)
        assert len(system) == len(shape)
        assert len(system.occupied_points()) == len(shape)
        assert system.all_contracted()

    def test_leader_stays_at_its_point(self):
        shape = SHAPES["hexagon3"]
        system, leader, result = run_dle_then_collect(shape, seed=2)
        assert leader.head == result.leader_point


class TestPhases:
    def test_stem_doubles_each_phase(self):
        # Corollary 22: at the start of phase i the stem has size 2^(i-1),
        # as long as particles remain to be collected.
        shape = SHAPES["hexagon5"]
        _, _, result = run_dle_then_collect(shape, seed=1)
        collecting = [p for p in result.phases if p.newly_collected > 0]
        for i, phase in enumerate(collecting):
            assert phase.stem_size == 2 ** i

    def test_phase_collects_annulus_of_distances(self):
        # Lemma 21: the phase with stem size k collects every particle at
        # grid distance k..2k-1, so afterwards none remain uncollected there.
        shape = SHAPES["hexagon3"]
        system = ParticleSystem.from_shape(shape, orientation_seed=5)
        algorithm = DLEAlgorithm()
        Scheduler(order="random", seed=5).run(algorithm, system)
        leader = verify_unique_leader(system)
        simulator = CollectSimulator(system, leader)
        phase = simulator.run_phase(1, 1)
        assert phase.stem_size == 1
        remaining = simulator._uncollected_at_distances(1, 1)
        assert remaining == []

    def test_last_phase_collects_nothing(self):
        _, _, result = run_dle_then_collect(SHAPES["blob"], seed=2)
        assert result.phases[-1].newly_collected == 0
        assert all(p.newly_collected > 0 for p in result.phases[:-1])

    def test_number_of_phases_logarithmic(self):
        import math
        shape = SHAPES["hexagon5"]
        system, leader, result = run_dle_then_collect(shape, seed=1)
        eps = grid_eccentricity(result.leader_point, shape.area_points)
        assert result.num_phases <= math.floor(math.log2(max(1, eps))) + 3

    def test_single_particle_terminates_immediately(self):
        system = ParticleSystem.from_shape(SHAPES["single"])
        algorithm = DLEAlgorithm()
        Scheduler().run(algorithm, system)
        leader = verify_unique_leader(system)
        result = CollectSimulator(system, leader).run()
        assert result.connected
        assert result.num_phases == 1
        assert result.phases[0].newly_collected == 0


class TestRoundCharging:
    def test_phase_rounds_formula(self):
        shape = SHAPES["hexagon3"]
        _, _, result = run_dle_then_collect(shape, seed=0)
        for phase in result.phases:
            assert phase.rounds == PER_PHASE_UNIT * max(1, phase.stem_size)

    @pytest.mark.parametrize("name", ["hexagon3", "hexagon5", "annulus",
                                      "holey_hexagon", "blob", "line12"])
    def test_theorem23_rounds_linear_in_grid_diameter(self, name):
        shape = SHAPES[name]
        metrics = compute_metrics(shape)
        _, _, result = run_dle_then_collect(shape, seed=1)
        # Phase sizes 1, 2, 4, ..., <= 2 D_G sum to < 4 D_G; adding the empty
        # final phase and the reconnection pass keeps the total within
        # 5 * PER_PHASE_UNIT * D_G + a small constant.
        bound = 5 * PER_PHASE_UNIT * max(1, metrics.grid_diam) + 2 * PER_PHASE_UNIT
        assert result.rounds <= bound

    def test_rounds_grow_with_eccentricity(self):
        small = run_dle_then_collect(hexagon(2), seed=0)[2].rounds
        large = run_dle_then_collect(hexagon(6), seed=0)[2].rounds
        assert large > small


class TestValidation:
    def test_rejects_expanded_leader(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        leader = system.particle_at((0, 0))
        system.expand(leader, (0, -1))
        with pytest.raises(ValueError):
            CollectSimulator(system, leader)

    def test_rejects_expanded_particles(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0), (2, 0)]))
        leader = system.particle_at((0, 0))
        other = system.particle_at((2, 0))
        system.expand(other, (3, 0))
        with pytest.raises(ValueError):
            CollectSimulator(system, leader)

    def test_collected_configuration_contains_all_particles(self):
        shape = SHAPES["annulus"]
        system, leader, result = run_dle_then_collect(shape, seed=4)
        simulator_points = system.occupied_points()
        # Everything ends within the eccentricity of the leader.
        eps = max(grid_distance(leader.head, p) for p in simulator_points)
        for point in simulator_points:
            assert grid_distance(leader.head, point) <= eps


class _TupleReferenceSimulator(CollectSimulator):
    """Reference planner in the tuple-point domain.

    Re-implements the planning geometry exactly as it was before the
    packed-coordinate routing (PR 5) using the public tuple-world helpers,
    so the packed planner can be checked against it step for step.
    """

    def _ray_point(self, distance):
        from repro.grid.coords import translate
        from repro.grid.packed import pack_point
        return pack_point(
            translate(self.leader_point, self.outward_direction, distance))

    def _parking_positions(self, max_distance):
        from repro.grid.coords import ring
        from repro.grid.packed import pack_point
        positions = []
        for j in range(1, max_distance + 1):
            ring_points = [pack_point(p)
                           for p in ring(self.leader_point, j)]
            rotated = self._align_ring_to_ray(ring_points, j)
            positions.extend(reversed(rotated[1:]))
        return positions

    def _uncollected_at_distances(self, low, high):
        found = []
        for particle in self.system.particles():
            if particle.particle_id in self.collected:
                continue
            d = grid_distance(particle.head, self.leader_point)
            if low <= d <= high:
                found.append(particle.particle_id)
        return found


class TestPackedPlanningEquivalence:
    """Routing the planner through packed coordinates must not change a
    single placement, phase statistic or round count (the perf follow-up's
    engine-equivalence guarantee)."""

    @pytest.mark.parametrize("name", sorted(SHAPES))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_outcome_and_placements(self, name, seed):
        def run(simulator_cls):
            shape = SHAPES[name]
            system = ParticleSystem.from_shape(shape, orientation_seed=seed)
            algorithm = DLEAlgorithm()
            Scheduler(order="random", seed=seed).run(algorithm, system)
            leader = verify_unique_leader(system)
            simulator = simulator_cls(system, leader)
            result = simulator.run()
            return result, system.snapshot()

        packed_result, packed_snapshot = run(CollectSimulator)
        ref_result, ref_snapshot = run(_TupleReferenceSimulator)
        assert packed_snapshot == ref_snapshot
        assert packed_result.rounds == ref_result.rounds
        assert packed_result.connected == ref_result.connected
        assert packed_result.leader_point == ref_result.leader_point
        assert ([
            (p.index, p.stem_size, p.newly_collected, p.stem_size_after,
             p.rounds) for p in packed_result.phases
        ] == [
            (p.index, p.stem_size, p.newly_collected, p.stem_size_after,
             p.rounds) for p in ref_result.phases
        ])
