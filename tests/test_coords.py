"""Unit tests for the triangular-grid coordinate helpers."""

import math

import pytest

from repro.grid.coords import (
    DIRECTIONS,
    DIRECTION_NAMES,
    NUM_DIRECTIONS,
    are_adjacent,
    bounding_box,
    direction_between,
    direction_index,
    disk,
    grid_distance,
    line,
    neighbor,
    neighbors,
    normalize,
    opposite_direction,
    ring,
    rotate_ccw,
    rotate_cw,
    to_cartesian,
    translate,
)


class TestDirections:
    def test_six_directions(self):
        assert len(DIRECTIONS) == 6
        assert len(DIRECTION_NAMES) == 6
        assert NUM_DIRECTIONS == 6

    def test_directions_are_distinct(self):
        assert len(set(DIRECTIONS)) == 6

    def test_directions_sum_to_zero(self):
        # Opposite pairs cancel, so the six offsets sum to the origin.
        total = (sum(d[0] for d in DIRECTIONS), sum(d[1] for d in DIRECTIONS))
        assert total == (0, 0)

    def test_direction_index_by_name(self):
        assert direction_index("E") == 0
        assert direction_index("w") == 3

    def test_direction_index_by_int(self):
        for i in range(6):
            assert direction_index(i) == i

    def test_direction_index_invalid_name(self):
        with pytest.raises(ValueError):
            direction_index("NORTH")

    def test_direction_index_out_of_range(self):
        with pytest.raises(ValueError):
            direction_index(6)

    def test_opposite_direction(self):
        for i in range(6):
            assert opposite_direction(i) == (i + 3) % 6
            # Geometrically the offsets must cancel.
            d = DIRECTIONS[i]
            o = DIRECTIONS[opposite_direction(i)]
            assert (d[0] + o[0], d[1] + o[1]) == (0, 0)

    def test_rotate_cw_full_turn_is_identity(self):
        for i in range(6):
            assert rotate_cw(i, 6) == i

    def test_rotate_ccw_inverts_cw(self):
        for i in range(6):
            for steps in range(6):
                assert rotate_ccw(rotate_cw(i, steps), steps) == i

    def test_directions_listed_clockwise(self):
        # In the planar embedding with y pointing down, clockwise successor
        # directions differ by +60 degrees of screen angle.
        angles = []
        for d in DIRECTIONS:
            x, y = to_cartesian(d)
            angles.append(math.atan2(y, x))
        for i in range(6):
            delta = (angles[(i + 1) % 6] - angles[i]) % (2 * math.pi)
            assert delta == pytest.approx(math.pi / 3)


class TestNeighbors:
    def test_neighbors_count_and_distance(self):
        point = (3, -2)
        ns = neighbors(point)
        assert len(ns) == 6
        assert all(grid_distance(point, u) == 1 for u in ns)

    def test_neighbor_direction_roundtrip(self):
        point = (0, 0)
        for d in range(6):
            u = neighbor(point, d)
            assert direction_between(point, u) == d

    def test_direction_between_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (2, 0))

    def test_are_adjacent(self):
        assert are_adjacent((0, 0), (1, 0))
        assert are_adjacent((0, 0), (0, -1))
        assert not are_adjacent((0, 0), (0, 0))
        assert not are_adjacent((0, 0), (2, -1))

    def test_adjacency_is_symmetric(self):
        for d in range(6):
            u = neighbor((5, 7), d)
            assert are_adjacent((5, 7), u)
            assert are_adjacent(u, (5, 7))


class TestGridDistance:
    def test_distance_to_self_is_zero(self):
        assert grid_distance((4, -1), (4, -1)) == 0

    def test_distance_symmetry(self):
        assert grid_distance((0, 0), (3, -5)) == grid_distance((3, -5), (0, 0))

    def test_distance_along_axes(self):
        for d in range(6):
            p = translate((0, 0), d, 7)
            assert grid_distance((0, 0), p) == 7

    def test_triangle_inequality_samples(self):
        points = [(0, 0), (3, -2), (-1, 4), (5, 5), (-3, -3)]
        for a in points:
            for b in points:
                for c in points:
                    assert (grid_distance(a, c)
                            <= grid_distance(a, b) + grid_distance(b, c))

    def test_distance_matches_cartesian_order(self):
        # Farther in grid distance implies (weakly) farther in the plane for
        # points along a straight axis.
        origin = (0, 0)
        previous = 0.0
        for k in range(1, 6):
            x, y = to_cartesian(translate(origin, 1, k))
            dist = math.hypot(x, y)
            assert dist > previous
            previous = dist


class TestLinesRingsDisks:
    def test_line_length_and_spacing(self):
        pts = line((2, 2), 0, 5)
        assert len(pts) == 5
        assert pts[0] == (2, 2)
        for a, b in zip(pts, pts[1:]):
            assert are_adjacent(a, b)

    def test_line_zero_length(self):
        assert line((0, 0), 0, 0) == []

    def test_line_negative_length_raises(self):
        with pytest.raises(ValueError):
            line((0, 0), 0, -1)

    def test_ring_radius_zero(self):
        assert ring((1, 1), 0) == [(1, 1)]

    @pytest.mark.parametrize("radius", [1, 2, 3, 5, 8])
    def test_ring_size(self, radius):
        points = ring((0, 0), radius)
        assert len(points) == 6 * radius
        assert len(set(points)) == 6 * radius

    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_ring_points_at_exact_distance(self, radius):
        center = (2, -3)
        for p in ring(center, radius):
            assert grid_distance(center, p) == radius

    def test_ring_consecutive_points_adjacent(self):
        points = ring((0, 0), 4)
        for a, b in zip(points, points[1:] + points[:1]):
            assert are_adjacent(a, b)

    def test_ring_negative_radius_raises(self):
        with pytest.raises(ValueError):
            ring((0, 0), -1)

    @pytest.mark.parametrize("radius", [0, 1, 2, 3, 6])
    def test_disk_size(self, radius):
        # |disk(r)| = 1 + 3 r (r + 1), the centred hexagonal numbers.
        points = disk((0, 0), radius)
        assert len(points) == 1 + 3 * radius * (radius + 1)
        assert len(set(points)) == len(points)

    def test_disk_contains_all_closer_points(self):
        center = (0, 0)
        d = set(disk(center, 3))
        for p in disk(center, 3):
            assert grid_distance(center, p) <= 3
        assert set(disk(center, 2)) <= d

    def test_translate_repeated_matches_line(self):
        start = (1, -1)
        assert translate(start, 2, 4) == line(start, 2, 5)[-1]


class TestBoundingBoxNormalize:
    def test_bounding_box_simple(self):
        assert bounding_box([(0, 0), (2, -1), (1, 3)]) == (0, -1, 2, 3)

    def test_bounding_box_single_point(self):
        assert bounding_box([(4, 5)]) == (4, 5, 4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_normalize_translation_invariance(self):
        pts = [(0, 0), (1, 0), (0, 1)]
        shifted = [(q + 7, r - 4) for q, r in pts]
        assert normalize(pts) == normalize(shifted)

    def test_normalize_empty(self):
        assert normalize([]) == []
