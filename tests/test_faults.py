"""The seeded fault-injection adversary.

Four properties anchor the layer:

* a *disabled* fault plan is bit-identical to a run without one — the
  fault hooks must be a true no-op on the hot path;
* faults are deterministic: the same plan and seed reproduce the same
  crash/delay/perturbation schedule, on either engine, with identical
  per-round traces;
* fault state checkpoints: a SIGKILLed faulty run resumed from its
  checkpoint equals the uninterrupted run, record for record;
* the survival report folds a sweep ledger into the guarantee table.
"""

import random

import pytest

from repro.amoebot.faults import (
    DEFAULT_FAULT_CAP,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    charged_fault_overlay,
)
from repro.amoebot.scheduler import make_scheduler
from repro.amoebot.system import ParticleSystem
from repro.analysis.experiments import FAULT_ALGORITHMS, run_experiment
from repro.analysis.robustness import (
    format_robustness_table,
    robustness_rows,
)
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.grid.generators import hexagon, make_shape
from repro.io import records_to_dicts
from repro.session import Session
from repro.telemetry.names import is_known_metric


class Kill(Exception):
    """Simulated SIGKILL raised from the on_checkpoint callback."""


def _bomb(rounds, path):
    raise Kill(f"killed at round {rounds}")


# ---------------------------------------------------------------------------
# FaultSpec parsing and canonical form
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_empty_spec_is_disabled(self):
        spec = FaultSpec.parse("")
        assert not spec.enabled
        assert spec.to_string() == ""

    def test_parse_round_trips_canonically(self):
        text = "crash:rate=0.05,rounds=30;delay:rate=0.5,max=3;shape:rate=0.02;seed=7;cap=20000"
        spec = FaultSpec.parse(text)
        assert spec.crash_rate == 0.05
        assert spec.crash_rounds == 30
        assert spec.delay_rate == 0.5
        assert spec.delay_max == 3
        assert spec.shape_rate == 0.02
        assert spec.seed == 7
        assert spec.cap == 20000
        assert FaultSpec.parse(spec.to_string()) == spec

    def test_parse_is_idempotent_on_spec_instances(self):
        spec = FaultSpec.parse("crash:rate=0.1;seed=1")
        assert FaultSpec.parse(spec) is spec

    def test_fault_plan_is_an_alias(self):
        assert FaultPlan is FaultSpec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("crash:rate=0.1,typo=3")
        with pytest.raises(ValueError):
            FaultSpec.parse("quake:rate=0.1")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("crash:rate=1.5")
        with pytest.raises(ValueError):
            FaultSpec.parse("delay:rate=-0.1")

    def test_cap_bounds_requested_rounds(self):
        enabled = FaultSpec.parse("crash:rate=0.5")
        assert enabled.max_rounds(10 ** 9) == DEFAULT_FAULT_CAP
        assert enabled.max_rounds(50) == 50
        disabled = FaultSpec.parse("")
        assert disabled.max_rounds(10 ** 9) == 10 ** 9


# ---------------------------------------------------------------------------
# Disabled plan == no plan, bit for bit
# ---------------------------------------------------------------------------

def _run_traced(shape, engine, seed, faults="", order="random",
                max_rounds=5000):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    trace = []
    scheduler = make_scheduler(engine, order=order, seed=seed, faults=faults)
    result = scheduler.run(
        DLEAlgorithm(), system, max_rounds=max_rounds,
        round_hook=lambda r, s: trace.append((r, s.snapshot())))
    return {
        "rounds": result.rounds,
        "moves": result.moves,
        "activations": result.activations,
        "terminated": result.terminated,
        "trace": trace,
        "final": sorted((p.particle_id, dict(p.memory))
                        for p in system.particles()),
    }


class TestDisabledPlanIsIdentity:
    @pytest.mark.parametrize("engine", ["sweep", "event"])
    @pytest.mark.parametrize("order", ["random", "round_robin", "reversed"])
    def test_empty_plan_matches_no_plan(self, engine, order):
        shape = make_shape("holey", 3, seed=1)
        bare = _run_traced(shape, engine, 2, faults=None, order=order)
        empty = _run_traced(shape, engine, 2, faults="", order=order)
        assert empty == bare

    def test_zero_rate_plan_matches_no_plan(self):
        shape = hexagon(3)
        bare = _run_traced(shape, "sweep", 0, faults=None)
        zero = _run_traced(shape, "sweep", 0,
                           faults="crash:rate=0;delay:rate=0;shape:rate=0")
        assert zero == bare


# ---------------------------------------------------------------------------
# Determinism and engine equivalence under live faults
# ---------------------------------------------------------------------------

PLANS = [
    "crash:rate=0.05,rounds=10;seed=3",
    "crash:rate=0.03;seed=3",  # permanent crashes
    "delay:rate=0.5,max=3;seed=4",
    "shape:rate=0.3;seed=5",
    "crash:rate=0.04,rounds=6;delay:rate=0.3,max=2;seed=8",
]


class TestFaultyRunsAreDeterministic:
    @pytest.mark.parametrize("plan", PLANS)
    @pytest.mark.parametrize("engine", ["sweep", "event"])
    def test_same_plan_same_run(self, plan, engine):
        shape = hexagon(3)
        first = _run_traced(shape, engine, 1, faults=plan, max_rounds=200)
        second = _run_traced(shape, engine, 1, faults=plan, max_rounds=200)
        assert first == second

    @pytest.mark.parametrize("plan", PLANS)
    def test_sweep_and_event_agree_under_faults(self, plan):
        shape = hexagon(3)
        sweep = _run_traced(shape, "sweep", 1, faults=plan, max_rounds=300)
        event = _run_traced(shape, "event", 1, faults=plan, max_rounds=300)
        assert event["rounds"] == sweep["rounds"]
        assert event["moves"] == sweep["moves"]
        assert event["trace"] == sweep["trace"]
        assert event["final"] == sweep["final"]

    def test_different_fault_seeds_differ(self):
        shape = hexagon(3)
        a = _run_traced(shape, "sweep", 1,
                        faults="crash:rate=0.15,rounds=5;seed=1",
                        max_rounds=300)
        b = _run_traced(shape, "sweep", 1,
                        faults="crash:rate=0.15,rounds=5;seed=2",
                        max_rounds=300)
        assert a["trace"] != b["trace"]


# ---------------------------------------------------------------------------
# Per-family behaviour
# ---------------------------------------------------------------------------

class _Hooks:
    """Recording hook receiver for driving the injector directly."""

    def __init__(self):
        self.events = []

    def crash(self, pid):
        self.events.append(("crash", pid))

    def revive(self, pid):
        self.events.append(("revive", pid))

    def wake(self, pids):
        self.events.append(("wake", tuple(sorted(pids))))

    def remove(self, pid):
        self.events.append(("remove", pid))


class TestCrashFamily:
    def test_crash_and_revive_fire_and_count(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        injector = FaultInjector(FaultSpec.parse("crash:rate=0.2,rounds=2;seed=1"))
        hooks = _Hooks()
        for round_index in range(30):
            injector.begin_round(round_index, system, hooks)
        injector.finish(system)
        crashes = [e for e in hooks.events if e[0] == "crash"]
        revives = [e for e in hooks.events if e[0] == "revive"]
        assert crashes and revives
        assert injector.counters["crashes"] == len(crashes)
        assert injector.counters["revives"] == len(revives)

    def test_crashed_point_stays_occupied(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        occupied_before = set(system.occupied_points())
        injector = FaultInjector(FaultSpec.parse("crash:rate=0.5;seed=1"))
        hooks = _Hooks()
        injector.begin_round(0, system, hooks)
        assert injector.crashed  # rate 0.5 over 19 particles
        assert set(system.occupied_points()) == occupied_before

    def test_permanent_crash_blocks_termination(self):
        # A permanently crashed particle never terminates, so DLE runs
        # into the fault cap instead of electing.
        shape = hexagon(2)
        run = _run_traced(shape, "sweep", 0, faults="crash:rate=0.3;seed=1;cap=60",
                          max_rounds=5000)
        assert not run["terminated"]
        assert run["rounds"] == 60

    def test_transient_crash_only_delays_election(self):
        shape = hexagon(3)
        clean = _run_traced(shape, "sweep", 1)
        faulty = _run_traced(shape, "sweep", 1,
                             faults="crash:rate=0.1,rounds=8;seed=2",
                             max_rounds=2000)
        assert faulty["terminated"]
        assert faulty["rounds"] >= clean["rounds"]


class TestDelayFamily:
    def test_stale_views_read_old_neighborhood(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        particle = system.particles()[0]
        live = system.live_neighbors_of(particle)
        frozen = tuple(live)
        system.set_stale_views({particle.particle_id: frozen})
        assert system.neighbors_of(particle) == frozen
        assert tuple(system.live_neighbors_of(particle)) == tuple(live)
        system.set_stale_views(None)
        assert tuple(system.neighbors_of(particle)) == tuple(live)

    def test_delay_counts_refreshes_and_still_elects(self):
        run = _run_traced(hexagon(3), "event", 1,
                          faults="delay:rate=0.8,max=4;seed=9", max_rounds=2000)
        assert run["terminated"]


class TestShapeFamily:
    def test_perturbation_preserves_connectivity_every_round(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        injector = FaultInjector(FaultSpec.parse("shape:rate=1.0;seed=3"))
        hooks = _Hooks()
        from repro.grid.shape import is_connected
        for round_index in range(40):
            injector.begin_round(round_index, system, hooks)
            assert is_connected(set(system.occupied_points()))
        total = (injector.counters["shape_adds"]
                 + injector.counters["shape_removes"])
        assert total > 0

    def test_articulation_chain_removals_never_cut_bridges(self):
        # Every bridge point of the chain is a cut vertex, so the
        # connectivity-preserving remove step can never fire on one.
        shape = make_shape("chain", 2, seed=0)
        system = ParticleSystem.from_shape(shape, orientation_seed=0)
        injector = FaultInjector(FaultSpec.parse("shape:rate=1.0;seed=1"))
        hooks = _Hooks()
        from repro.grid.shape import is_connected
        for round_index in range(60):
            injector.begin_round(round_index, system, hooks)
            assert is_connected(set(system.occupied_points()))


# ---------------------------------------------------------------------------
# System-level mutation primitives
# ---------------------------------------------------------------------------

class TestRemoveParticle:
    def test_remove_frees_point_and_updates_neighbors(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        boundary = system.shape().boundary_points
        victim = system.particle_at(sorted(boundary)[0])
        point = victim.head
        before = len(system)
        system.remove_particle(victim.particle_id)
        assert len(system) == before - 1
        assert not system.is_occupied(point)
        assert victim.particle_id not in system.particle_ids()


# ---------------------------------------------------------------------------
# Configs, sweeps and caches
# ---------------------------------------------------------------------------

class TestFaultSpecInConfigs:
    def test_run_config_digest_unchanged_without_faults(self):
        from repro.orchestrator.spec import RunConfig
        config = RunConfig(algorithm="dle", family="hexagon", size=3, seed=0)
        assert "faults" not in config.to_dict()

    def test_run_config_round_trips_faults(self):
        from repro.orchestrator.spec import RunConfig
        config = RunConfig(algorithm="dle", family="hexagon", size=3, seed=0,
                           faults="crash:rate=0.1;seed=1")
        config.validate()
        data = config.to_dict()
        assert data["faults"] == "crash:rate=0.1;seed=1"
        assert RunConfig.from_dict(data) == config

    def test_non_fault_algorithms_reject_plans(self):
        from repro.orchestrator.spec import RunConfig
        config = RunConfig(algorithm="obd+dle+collect", family="hexagon",
                           size=3, seed=0, faults="crash:rate=0.1")
        with pytest.raises(ValueError):
            config.validate()
        shape = make_shape("hexagon", 2, seed=0)
        with pytest.raises(ValueError):
            run_experiment("obd+dle+collect", shape, family="hexagon",
                           size=2, seed=0, faults="crash:rate=0.1")

    def test_sweep_spec_fault_axis(self):
        from repro.orchestrator.spec import SweepSpec
        spec = SweepSpec(algorithms=["dle"], families=["hexagon"],
                         sizes=[3], seeds=[0, 1],
                         faults=["", "crash:rate=0.1;seed=1"])
        configs = spec.expand()
        assert len(configs) == len(spec) == 4
        assert sorted({c.faults for c in configs}) == \
            ["", "crash:rate=0.1;seed=1"]
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_fault_algorithms_is_the_driver_subset(self):
        assert FAULT_ALGORITHMS == {"dle", "erosion", "randomized"}


# ---------------------------------------------------------------------------
# Checkpoint fuzz: restore == continue over (algorithm, family, engine)
# ---------------------------------------------------------------------------

# ≥8 (algorithm, fault-family, engine) configurations, covering all three
# fault families, both engines and both scheduler-driven fault algorithms.
FAULT_FUZZ = [
    ("dle", "hexagon", 3, 0, "sweep", "crash:rate=0.05,rounds=10;seed=3"),
    ("dle", "hexagon", 3, 1, "event", "crash:rate=0.05,rounds=10;seed=3"),
    ("dle", "holey", 3, 2, "sweep", "delay:rate=0.5,max=3;seed=4"),
    ("dle", "hexagon", 4, 0, "event", "delay:rate=0.5,max=3;seed=4"),
    ("dle", "hexagon", 3, 1, "sweep", "shape:rate=0.2;seed=5"),
    ("erosion", "hexagon", 3, 0, "event", "shape:rate=0.2;seed=5"),
    ("erosion", "hexagon", 3, 1, "sweep", "crash:rate=0.05,rounds=8;seed=6"),
    ("erosion", "hexagon", 3, 0, "event", "delay:rate=0.4,max=2;seed=7"),
    ("dle", "hexagon", 3, 2, "event",
     "crash:rate=0.04,rounds=6;delay:rate=0.3,max=2;seed=8"),
]


@pytest.mark.parametrize("algorithm,family,size,seed,engine,faults",
                         FAULT_FUZZ)
def test_faulty_session_resume_equals_uninterrupted(tmp_path, algorithm,
                                                    family, size, seed,
                                                    engine, faults):
    config = {"algorithm": algorithm, "family": family, "size": size,
              "seed": seed, "scheduler": "random", "engine": engine,
              "faults": faults}

    reference = Session.run(dict(config))
    assert reference.resumed_round is None

    with pytest.raises(Kill):
        Session.run(dict(config), checkpoint_every=2,
                    checkpoint_dir=tmp_path, on_checkpoint=_bomb)
    files = list(tmp_path.glob("checkpoint-*.json"))
    assert len(files) == 1

    resumed = Session.run(dict(config), checkpoint_every=2,
                          checkpoint_dir=tmp_path)
    assert resumed.resumed_round is not None
    assert records_to_dicts([resumed.record]) == \
        records_to_dicts([reference.record])
    assert not files[0].exists()


def test_resume_rejects_fault_plan_mismatch(tmp_path):
    config = {"algorithm": "dle", "family": "hexagon", "size": 3, "seed": 0,
              "scheduler": "random", "engine": "sweep",
              "faults": "crash:rate=0.05,rounds=10;seed=3"}
    shape = make_shape("hexagon", 3, seed=0)
    from repro.state import CheckpointContext, run_checkpointed_stage
    path = tmp_path / "ck.json"
    system = ParticleSystem.from_shape(shape, orientation_seed=0)
    context = CheckpointContext(path, 2, config, on_checkpoint=_bomb)
    with pytest.raises(Kill):
        run_checkpointed_stage(
            context, "dle", DLEAlgorithm(), system,
            make_scheduler("sweep", order="random", seed=0,
                           faults=config["faults"]), 5000)
    system = ParticleSystem.from_shape(shape, orientation_seed=0)
    with pytest.raises(ValueError, match="written under fault plan"):
        run_checkpointed_stage(
            CheckpointContext(path, 2, config), "dle", DLEAlgorithm(),
            system,
            make_scheduler("sweep", order="random", seed=0,
                           faults="crash:rate=0.9;seed=1"), 5000)


# ---------------------------------------------------------------------------
# The charged overlay for the analytic randomized baseline
# ---------------------------------------------------------------------------

class TestChargedOverlay:
    def test_disabled_spec_charges_nothing(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        overlay = charged_fault_overlay(FaultSpec.parse(""), system)
        assert overlay["extra_rounds"] == 0
        assert not overlay["stalled"]

    def test_permanent_ring_crash_stalls(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        overlay = charged_fault_overlay(
            FaultSpec.parse("crash:rate=0.9;seed=1"), system)
        assert overlay["stalled"]

    def test_randomized_driver_applies_overlay(self):
        shape = make_shape("hexagon", 3, seed=0)
        clean = run_experiment("randomized", shape, family="hexagon",
                               size=3, seed=0)
        faulty = run_experiment("randomized", shape, family="hexagon",
                                size=3, seed=0,
                                faults="delay:rate=0.5,max=3;seed=2")
        assert faulty.details["fault_overlay"]["extra_rounds"] >= 0
        assert faulty.rounds >= clean.rounds


# ---------------------------------------------------------------------------
# Telemetry names
# ---------------------------------------------------------------------------

def test_fault_counters_are_declared_metrics():
    system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
    injector = FaultInjector(FaultSpec.parse("crash:rate=0.2,rounds=2;seed=1"))
    for name in injector.counters:
        assert is_known_metric("fault." + name)


# ---------------------------------------------------------------------------
# The survival report
# ---------------------------------------------------------------------------

def _entry(digest, algorithm, faults, *, status="done", succeeded=True,
           terminated=None, rounds=10, seed=0):
    config = {"algorithm": algorithm, "family": "hexagon", "size": 3,
              "seed": seed, "scheduler": "random", "engine": "sweep"}
    if faults:
        config["faults"] = faults
    entry = {"kind": "run", "digest": digest, "config": config,
             "status": status}
    if status == "done":
        details = {}
        if terminated is not None:
            details["terminated"] = terminated
        entry["record"] = {"algorithm": algorithm, "family": "hexagon",
                           "size": 3, "seed": seed, "rounds": rounds,
                           "succeeded": succeeded, "details": details}
    else:
        entry["error"] = "boom"
    return entry


class TestRobustnessReport:
    PLAN = "crash:rate=0.1;seed=1"

    def entries(self):
        return [
            _entry("a0", "dle", "", rounds=10, seed=0),
            _entry("a1", "dle", "", rounds=12, seed=1),
            _entry("b0", "dle", self.PLAN, rounds=20, seed=0,
                   terminated=True),
            _entry("b1", "dle", self.PLAN, rounds=30, seed=1,
                   succeeded=False, terminated=True),  # safety violation
            _entry("c0", "erosion", self.PLAN, status="failed", seed=0),
        ]

    def test_cells_fold_terminations_violations_and_errors(self):
        cells = {(c.algorithm, c.faults): c
                 for c in robustness_rows(self.entries())}
        baseline = cells[("dle", "")]
        assert (baseline.runs, baseline.terminated, baseline.succeeded) == \
            (2, 2, 2)
        faulty = cells[("dle", self.PLAN)]
        assert faulty.runs == 2
        assert faulty.terminated == 2
        assert faulty.succeeded == 1
        assert faulty.violations == 1
        # pairwise inflation: 20/10 and 30/12
        assert faulty.mean_inflation == pytest.approx((2.0 + 2.5) / 2)
        failed = cells[("erosion", self.PLAN)]
        assert failed.errors == 1

    def test_dedupe_keeps_latest_entry_per_digest(self):
        entries = self.entries()
        entries.append(_entry("b0", "dle", self.PLAN, rounds=40, seed=0,
                              terminated=True))
        cells = {(c.algorithm, c.faults): c
                 for c in robustness_rows(entries)}
        faulty = cells[("dle", self.PLAN)]
        assert faulty.runs == 2  # retried digest counted once
        assert 40 in faulty.rounds and 20 not in faulty.rounds

    def test_baselines_sort_first_and_table_renders(self):
        cells = robustness_rows(self.entries())
        assert cells[0].faults == ""
        table = format_robustness_table(cells)
        assert "(none)" in table
        assert "1/2" in table  # the faulty dle success share
        assert "2.25x" in table

    def test_report_reads_a_real_ledger(self, tmp_path):
        from repro.orchestrator.pool import run_sweep
        from repro.analysis.robustness import robustness_report
        from repro.orchestrator.spec import SweepSpec
        spec = SweepSpec(algorithms=["dle"], families=["hexagon"],
                         sizes=[3], seeds=[0],
                         faults=["", "crash:rate=0.05,rounds=10;seed=3"])
        ledger = tmp_path / "ledger.jsonl"
        run_sweep(spec, ledger=ledger, progress=None)
        cells, table = robustness_report(ledger)
        assert len(cells) == 2
        assert all(c.runs == 1 for c in cells)
        faulty = [c for c in cells if c.faults][0]
        assert faulty.inflations  # paired with its fault-free twin
        assert "dle" in table


# ---------------------------------------------------------------------------
# Fault metrics surface in run records
# ---------------------------------------------------------------------------

def test_faulty_run_reports_terminated_flag():
    shape = make_shape("hexagon", 3, seed=0)
    record = run_experiment("dle", shape, family="hexagon", size=3, seed=0,
                            faults="crash:rate=0.05,rounds=10;seed=3")
    assert record.details["terminated"] is True
    assert record.succeeded
    clean = run_experiment("dle", shape, family="hexagon", size=3, seed=0)
    assert clean.details["terminated"] is True
