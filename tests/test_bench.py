"""Tests for the micro-benchmark harness behind ``python -m repro bench``."""

import json

import pytest

from repro.analysis.bench import (
    BENCH_KIND,
    BenchEntry,
    BenchReport,
    FULL_GRID,
    QUICK_GRID,
    compare_to_baseline,
    load_report,
    run_bench,
)

#: A grid small enough for unit tests (milliseconds of simulation).
MICRO_GRID = (
    ("dle", "hexagon", 2, ("sweep", "event")),
    ("obd", "hexagon", 2, ("sweep",)),
)


def _entry(key_parts, normalized, seconds=0.01):
    algorithm, family, size, engine = key_parts
    return BenchEntry(algorithm=algorithm, family=family, size=int(size),
                      engine=engine, seconds=seconds, normalized=normalized,
                      rounds=5, succeeded=True, repeats=1)


def _report(entries):
    return BenchReport(rev="test", quick=True, repeats=1,
                       calibration_seconds=0.01, entries=list(entries))


class TestGrids:
    def test_quick_grid_is_a_prefix_of_full(self):
        assert FULL_GRID[:len(QUICK_GRID)] == QUICK_GRID

    def test_quick_grid_pairs_engines_on_dle(self):
        paired = [entry for entry in QUICK_GRID
                  if entry[0] == "dle" and set(entry[3]) == {"sweep", "event"}]
        assert paired, "quick grid must compare engines on DLE"

    def test_quick_grid_covers_the_acceptance_size(self):
        # The event-engine speedup claim is anchored at hexagon side >= 20.
        sizes = [size for algorithm, family, size, _ in QUICK_GRID
                 if algorithm == "dle" and family == "hexagon"]
        assert any(size >= 20 for size in sizes)


class TestRunBench:
    def test_micro_grid_produces_paired_entries(self):
        report = run_bench(MICRO_GRID, repeats=1)
        keys = [entry.key for entry in report.entries]
        assert keys == ["dle/hexagon/2/sweep", "dle/hexagon/2/event",
                        "obd/hexagon/2/sweep"]
        assert all(entry.seconds > 0 for entry in report.entries)
        assert all(entry.succeeded for entry in report.entries)
        assert report.calibration_seconds > 0
        # Both engines ran the same simulation.
        sweep, event = report.entries[0], report.entries[1]
        assert sweep.rounds == event.rounds
        assert "dle/hexagon/2" in report.speedups

    def test_only_filter(self):
        report = run_bench(MICRO_GRID, repeats=1, only="obd")
        assert [entry.key for entry in report.entries] == ["obd/hexagon/2/sweep"]

    def test_progress_callback(self):
        seen = []
        run_bench(MICRO_GRID[:1], repeats=1,
                  progress=lambda key, entry: seen.append(key))
        assert seen == ["dle/hexagon/2/sweep", "dle/hexagon/2/event"]

    def test_report_round_trip(self, tmp_path):
        report = run_bench(MICRO_GRID, repeats=1, quick=True)
        path = report.save(tmp_path / "bench.json")
        loaded = load_report(path)
        assert loaded.rev == report.rev
        assert [e.to_dict() for e in loaded.entries] == [
            e.to_dict() for e in report.entries]
        data = json.loads(path.read_text())
        assert data["kind"] == BENCH_KIND
        assert data["quick"] is True

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_report(path)


class TestBaselineComparison:
    KEY = ("dle", "hexagon", "2", "sweep")

    def test_no_regression_within_threshold(self):
        current = _report([_entry(self.KEY, normalized=1.1)])
        baseline = _report([_entry(self.KEY, normalized=1.0)])
        comparison = compare_to_baseline(current, baseline, max_regression=0.25)
        assert comparison.ok
        assert not comparison.regressions

    def test_regression_beyond_threshold_fails(self):
        current = _report([_entry(self.KEY, normalized=1.6)])
        baseline = _report([_entry(self.KEY, normalized=1.0)])
        comparison = compare_to_baseline(current, baseline, max_regression=0.25)
        assert not comparison.ok
        key, cur, base, ratio = comparison.regressions[0]
        assert key == "dle/hexagon/2/sweep"
        assert ratio == pytest.approx(1.6)

    def test_improvement_is_reported_not_failed(self):
        current = _report([_entry(self.KEY, normalized=0.5)])
        baseline = _report([_entry(self.KEY, normalized=1.0)])
        comparison = compare_to_baseline(current, baseline, max_regression=0.25)
        assert comparison.ok
        assert comparison.improvements

    def test_grid_growth_does_not_fail_the_gate(self):
        new_key = ("dle", "hexagon", "4", "event")
        current = _report([_entry(self.KEY, normalized=1.0),
                           _entry(new_key, normalized=9.9)])
        baseline = _report([_entry(self.KEY, normalized=1.0)])
        comparison = compare_to_baseline(current, baseline)
        assert comparison.ok
        assert comparison.new_entries == ["dle/hexagon/4/event"]

    def test_missing_entries_are_listed(self):
        current = _report([])
        baseline = _report([_entry(self.KEY, normalized=1.0)])
        comparison = compare_to_baseline(current, baseline)
        assert comparison.ok  # nothing measured regressed
        assert comparison.missing == ["dle/hexagon/2/sweep"]


class TestCommittedBaseline:
    def test_committed_baseline_matches_the_quick_grid(self):
        """BENCH_baseline.json must stay in sync with QUICK_GRID so the CI
        gate compares every measured entry."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
        baseline = load_report(baseline_path)
        expected = {
            f"{algorithm}/{family}/{size}/{engine}"
            for algorithm, family, size, engines in QUICK_GRID
            for engine in engines
        }
        assert {entry.key for entry in baseline.entries} == expected
