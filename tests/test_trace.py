"""Tests for the execution-trace helpers."""

from repro.amoebot.system import ParticleSystem
from repro.amoebot.trace import ROUND_OBSERVERS, Trace, observe_round
from repro.grid.generators import hexagon
from repro.grid.shape import Shape


class TestTrace:
    def test_record_and_len(self):
        trace = Trace()
        trace.record(round=1, eligible=10)
        trace.record(round=2, eligible=8)
        assert len(trace) == 2
        assert trace.last() == {"round": 2, "eligible": 8}

    def test_column_extraction_skips_missing(self):
        trace = Trace()
        trace.record(a=1, b=2)
        trace.record(a=3)
        assert trace.column("a") == [1, 3]
        assert trace.column("b") == [2]

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(x=1)
        assert len(trace) == 0
        assert trace.last() is None


class TestObservers:
    def test_observe_round_all(self):
        system = ParticleSystem.from_shape(hexagon(1))
        observation = observe_round(system)
        assert observation["n_points"] == 7
        assert observation["expanded"] == 0
        assert observation["connected"] is True

    def test_observe_round_selected(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (5, 5)]))
        observation = observe_round(system, observers=["connectivity"])
        assert observation == {"connected": False}

    def test_expanded_counted(self):
        system = ParticleSystem.from_shape(Shape([(0, 0)]))
        system.expand(system.particles()[0], (1, 0))
        observation = observe_round(system, observers=["occupancy"])
        assert observation["expanded"] == 1
        assert observation["n_points"] == 2

    def test_registry_names(self):
        assert {"occupancy", "connectivity"} <= set(ROUND_OBSERVERS)
