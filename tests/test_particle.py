"""Unit tests for the Particle abstraction (ports, chirality, memory)."""

import pytest

from repro.amoebot.particle import Particle
from repro.grid.coords import neighbor


class TestOccupancy:
    def test_new_particle_is_contracted(self):
        p = Particle(0, (2, 3))
        assert p.is_contracted
        assert not p.is_expanded
        assert p.head == p.tail == (2, 3)
        assert p.occupied_points == ((2, 3),)

    def test_occupies(self):
        p = Particle(0, (0, 0))
        assert p.occupies((0, 0))
        assert not p.occupies((1, 0))

    def test_expanded_occupies_two_points(self):
        p = Particle(0, (0, 0))
        p.tail = (0, 0)
        p.head = (1, 0)
        assert p.is_expanded
        assert set(p.occupied_points) == {(0, 0), (1, 0)}

    def test_invalid_orientation(self):
        with pytest.raises(ValueError):
            Particle(0, (0, 0), orientation=6)


class TestPorts:
    def test_port_direction_roundtrip(self):
        for orientation in range(6):
            p = Particle(0, (0, 0), orientation=orientation)
            for port in range(6):
                assert p.direction_to_port(p.port_to_direction(port)) == port

    def test_orientation_zero_ports_equal_directions(self):
        p = Particle(0, (0, 0), orientation=0)
        for d in range(6):
            assert p.port_to_direction(d) == d

    def test_orientation_offsets_ports(self):
        p = Particle(0, (0, 0), orientation=2)
        assert p.port_to_direction(0) == 2
        assert p.direction_to_port(2) == 0

    def test_port_out_of_range(self):
        p = Particle(0, (0, 0))
        with pytest.raises(ValueError):
            p.port_to_direction(6)

    def test_port_between_neighbouring_points(self):
        p = Particle(0, (0, 0), orientation=1)
        target = neighbor((0, 0), 4)
        port = p.port_between((0, 0), target)
        assert p.neighbor_point((0, 0), port) == target

    def test_port_between_requires_occupied_origin(self):
        p = Particle(0, (0, 0))
        with pytest.raises(ValueError):
            p.port_between((5, 5), (6, 5))

    def test_head_neighbor(self):
        p = Particle(0, (1, 1), orientation=0)
        assert p.head_neighbor(0) == neighbor((1, 1), 0)

    def test_common_chirality_port_arithmetic(self):
        # With common chirality, the port of q for the reverse edge is the
        # paper's "port + 3 mod 6" rule expressed in global directions:
        # direction(p->q) and direction(q->p) are opposite.
        p = Particle(0, (0, 0), orientation=3)
        q_point = neighbor((0, 0), 1)
        q = Particle(1, q_point, orientation=5)
        d_pq = p.port_to_direction(p.port_between((0, 0), q_point))
        d_qp = q.port_to_direction(q.port_between(q_point, (0, 0)))
        assert (d_pq + 3) % 6 == d_qp


class TestMemory:
    def test_get_set_item(self):
        p = Particle(0, (0, 0))
        p["flag"] = True
        assert p["flag"] is True
        assert "flag" in p
        assert "other" not in p

    def test_get_with_default(self):
        p = Particle(0, (0, 0))
        assert p.get("missing") is None
        assert p.get("missing", 7) == 7

    def test_repr_mentions_state(self):
        p = Particle(3, (1, 2))
        assert "contracted" in repr(p)
