"""The ``repro profile`` phase profiler and its CLI surface."""

import json

import pytest

from repro.analysis.profile import (
    PHASES,
    SMOKE_CONFIG,
    ProfileReport,
    classify_path,
    run_profile,
)
from repro.cli import main


class TestClassification:
    @pytest.mark.parametrize("path,phase", [
        ("/x/src/repro/grid/shape.py", "geometry"),
        ("/x/src/repro/grid/packed.py", "geometry"),
        ("/x/src/repro/amoebot/scheduler.py", "activation"),
        ("/x/src/repro/amoebot/system.py", "activation"),
        ("/x/src/repro/core/dle.py", "algorithm"),
        ("/x/src/repro/baselines/erosion.py", "algorithm"),
        ("/usr/lib/python3.11/random.py", "other"),
        ("~", "other"),
    ])
    def test_phase_buckets(self, path, phase):
        assert classify_path(path) == phase

    def test_windows_separators(self):
        assert classify_path(r"C:\x\repro\grid\coords.py") == "geometry"


class TestRunProfile:
    @pytest.fixture(scope="class")
    def report(self):
        return run_profile(algorithm="dle", family="hexagon", size=8,
                           seed=0, engine="event")

    def test_run_metadata(self, report):
        assert report.succeeded
        assert report.rounds > 0
        assert report.seconds > 0

    def test_every_phase_reported(self, report):
        expected = {phase for phase, _ in PHASES} | {"other"}
        assert set(report.phases) == expected
        # The three repro phases must all have observed real work.
        assert report.phases["geometry"] > 0
        assert report.phases["activation"] > 0
        assert report.phases["algorithm"] > 0

    def test_fractions_sum_to_one(self, report):
        assert sum(report.phase_fractions().values()) == pytest.approx(1.0)

    def test_top_functions_sorted_by_self_time(self, report):
        times = [row[3] for row in report.top]
        assert times == sorted(times, reverse=True)
        assert len(report.top) <= 15

    def test_json_round_trip(self, report, tmp_path):
        path = report.save(tmp_path / "profile.json")
        clone = ProfileReport.from_dict(json.loads(path.read_text()))
        assert clone.phases == {k: round(v, 6)
                                for k, v in report.phases.items()}
        assert clone.rounds == report.rounds
        assert clone.engine == report.engine

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_profile(algorithm="nope")

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            ProfileReport.from_dict({"kind": "something-else"})


class TestProfileCli:
    def test_profile_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        code = main(["profile", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "6", "--engine", "sweep",
                     "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "repro-profile"
        assert payload["engine"] == "sweep"
        captured = capsys.readouterr().out
        assert "geometry" in captured and "activation" in captured

    def test_smoke_mode_uses_fixed_config(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = main(["profile", "--smoke", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["algorithm"] == SMOKE_CONFIG["algorithm"]
        assert payload["size"] == SMOKE_CONFIG["size"]
        assert payload["succeeded"] is True
