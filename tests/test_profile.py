"""The ``repro profile`` phase profiler and its CLI surface."""

import json
from pathlib import Path

import pytest

from repro.analysis.profile import (
    GATED_PHASES,
    MIN_GATED_NORMALIZED,
    PHASES,
    SMOKE_CONFIG,
    ProfileReport,
    classify_path,
    compare_profile_to_baseline,
    load_profile,
    run_profile,
)
from repro.cli import main


class TestClassification:
    @pytest.mark.parametrize("path,phase", [
        ("/x/src/repro/grid/shape.py", "geometry"),
        ("/x/src/repro/grid/packed.py", "geometry"),
        ("/x/src/repro/amoebot/scheduler.py", "activation"),
        ("/x/src/repro/amoebot/system.py", "activation"),
        ("/x/src/repro/core/dle.py", "algorithm"),
        ("/x/src/repro/baselines/erosion.py", "algorithm"),
        ("/usr/lib/python3.11/random.py", "other"),
        ("~", "other"),
    ])
    def test_phase_buckets(self, path, phase):
        assert classify_path(path) == phase

    def test_windows_separators(self):
        assert classify_path(r"C:\x\repro\grid\coords.py") == "geometry"


class TestRunProfile:
    @pytest.fixture(scope="class")
    def report(self):
        return run_profile(algorithm="dle", family="hexagon", size=8,
                           seed=0, engine="event")

    def test_run_metadata(self, report):
        assert report.succeeded
        assert report.rounds > 0
        assert report.seconds > 0

    def test_every_phase_reported(self, report):
        expected = {phase for phase, _ in PHASES} | {"other"}
        assert set(report.phases) == expected
        # The three repro phases must all have observed real work.
        assert report.phases["geometry"] > 0
        assert report.phases["activation"] > 0
        assert report.phases["algorithm"] > 0

    def test_fractions_sum_to_one(self, report):
        assert sum(report.phase_fractions().values()) == pytest.approx(1.0)

    def test_top_functions_sorted_by_self_time(self, report):
        times = [row[3] for row in report.top]
        assert times == sorted(times, reverse=True)
        assert len(report.top) <= 15

    def test_json_round_trip(self, report, tmp_path):
        path = report.save(tmp_path / "profile.json")
        clone = ProfileReport.from_dict(json.loads(path.read_text()))
        assert clone.phases == {k: round(v, 6)
                                for k, v in report.phases.items()}
        assert clone.rounds == report.rounds
        assert clone.engine == report.engine

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_profile(algorithm="nope")

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            ProfileReport.from_dict({"kind": "something-else"})


class TestProfileCli:
    def test_profile_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        code = main(["profile", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "6", "--engine", "sweep",
                     "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "repro-profile"
        assert payload["engine"] == "sweep"
        captured = capsys.readouterr().out
        assert "geometry" in captured and "activation" in captured

    def test_smoke_mode_uses_fixed_config(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = main(["profile", "--smoke", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["algorithm"] == SMOKE_CONFIG["algorithm"]
        assert payload["size"] == SMOKE_CONFIG["size"]
        assert payload["succeeded"] is True


class TestBaselineGate:
    def _report(self, geometry=0.10, activation=0.20, algorithm=0.30,
                other=0.05, calibration=0.01):
        return ProfileReport(
            algorithm="dle", family="hexagon", size=16, seed=0,
            engine="event", order="random", seconds=1.0, rounds=10,
            succeeded=True,
            phases={"geometry": geometry, "activation": activation,
                    "algorithm": algorithm, "other": other},
            calibration_seconds=calibration)

    def test_normalized_phases_are_machine_independent(self):
        fast = self._report(calibration=0.01)
        # The same workload on a machine twice as slow: every raw time
        # doubles, and so does the calibration denominator.
        slow = self._report(geometry=0.20, activation=0.40, algorithm=0.60,
                            other=0.10, calibration=0.02)
        assert fast.normalized_phases() == pytest.approx(
            slow.normalized_phases())

    def test_uncalibrated_report_has_no_normalized_phases(self):
        assert self._report(calibration=0.0).normalized_phases() == {}

    def test_within_margin_passes(self):
        baseline = self._report()
        current = self._report(algorithm=0.30 * 1.30)  # +30% < 35%
        comparison = compare_profile_to_baseline(current, baseline)
        assert comparison.ok and not comparison.regressions

    def test_regression_fails_and_names_the_phase(self):
        baseline = self._report()
        current = self._report(activation=0.20 * 1.5)  # +50% > 35%
        comparison = compare_profile_to_baseline(current, baseline)
        assert not comparison.ok
        (phase, cur, base, ratio), = comparison.regressions
        assert phase == "activation"
        assert ratio == pytest.approx(1.5)

    def test_other_phase_is_never_gated(self):
        baseline = self._report()
        current = self._report(other=5.0)
        assert compare_profile_to_baseline(current, baseline).ok

    def test_tiny_baseline_phases_are_skipped_not_gated(self):
        # geometry baseline normalized = 0.0004/0.01 = 0.04 < the 0.05
        # noise floor: a huge ratio on a tiny time must not fail CI.
        baseline = self._report(geometry=0.0004)
        current = self._report(geometry=0.004)
        comparison = compare_profile_to_baseline(current, baseline)
        assert comparison.ok
        assert "geometry" in comparison.skipped

    def test_improvements_are_reported_not_failed(self):
        baseline = self._report()
        current = self._report(algorithm=0.30 * 0.5)
        comparison = compare_profile_to_baseline(current, baseline)
        assert comparison.ok
        assert [row[0] for row in comparison.improvements] == ["algorithm"]

    def test_round_trip_keeps_the_calibration(self, tmp_path):
        path = self._report().save(tmp_path / "p.json")
        clone = load_profile(path)
        assert clone.calibration_seconds == pytest.approx(0.01)
        assert clone.normalized_phases() == pytest.approx(
            self._report().normalized_phases())

    def test_cli_gate_passes_against_identical_baseline(self, tmp_path,
                                                        capsys):
        baseline = tmp_path / "baseline.json"
        self._report().save(baseline)
        # A fresh run compared against its own saved report: identical.
        out = tmp_path / "out.json"
        code = main(["profile", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "8", "--json", str(out)])
        assert code == 0
        code = main(["profile", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "8", "--baseline", str(out),
                     "--max-regression", "10.0"])
        assert code == 0
        assert "profile baseline check ok" in capsys.readouterr().out

    def test_cli_gate_fails_on_regression(self, tmp_path, capsys):
        # A baseline claiming the phases used to be ~free: any real run
        # regresses far beyond the margin and the command must fail.
        baseline = self._report(geometry=0.001, activation=0.001,
                                algorithm=0.001, calibration=0.01)
        # Keep the phases above the noise floor so they are really gated.
        baseline.phases = {k: v if k == "other" else 0.002
                           for k, v in baseline.phases.items()}
        path = tmp_path / "baseline.json"
        baseline.save(path)
        code = main(["profile", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "8", "--baseline", str(path)])
        assert code == 1
        assert "regressed more than" in capsys.readouterr().err

    def test_committed_baseline_is_loadable_and_gateable(self):
        repo_root = Path(__file__).resolve().parents[1]
        report = load_profile(repo_root / "PROFILE_baseline.json")
        assert report.algorithm == SMOKE_CONFIG["algorithm"]
        assert report.calibration_seconds > 0
        normalized = report.normalized_phases()
        for phase in GATED_PHASES:
            assert normalized[phase] >= MIN_GATED_NORMALIZED
